//! # ftbfs — Fault Tolerant BFS Structures: A Reinforcement–Backup Tradeoff
//!
//! Facade crate re-exporting the whole reproduction suite of
//! Parter & Peleg, *Fault Tolerant BFS Structures: A Reinforcement-Backup
//! Tradeoff* (SPAA 2015):
//!
//! * [`graph`] — the CSR graph substrate,
//! * [`par`] — scoped-thread data-parallel helpers,
//! * [`sp`] — unique shortest paths, BFS trees, replacement distances,
//! * [`tree`] — LCA, heavy-path decomposition, path segmentation,
//! * [`rp`] — Algorithm `Pcons` and interference analysis,
//! * [`core`] — builders, the fault-query engine, the verifier, the cost
//!   model and multi-source structures,
//! * [`lower_bounds`] — the Theorem 5.1 / 5.4 lower-bound families,
//! * [`workloads`] — deterministic experiment workloads.
//!
//! # Building a structure
//!
//! Every construction strategy implements [`StructureBuilder`]; pick one,
//! configure it fluently, and build:
//!
//! ```
//! use ftbfs::graph::{generators, VertexId};
//! use ftbfs::{Sources, StructureBuilder, TradeoffBuilder};
//!
//! let g = generators::hypercube(4);
//! let structure = TradeoffBuilder::new(0.3)
//!     .with_config(|c| c.with_seed(7))
//!     .build(&g, &Sources::single(VertexId(0)))
//!     .expect("hypercube input is valid");
//! assert_eq!(
//!     structure.num_backup() + structure.num_reinforced(),
//!     structure.num_edges()
//! );
//! ```
//!
//! Invalid input surfaces as a typed [`FtbfsError`] instead of a panic:
//!
//! ```
//! use ftbfs::graph::{generators, VertexId};
//! use ftbfs::{FtbfsError, Sources, StructureBuilder, TradeoffBuilder};
//!
//! let g = generators::hypercube(3);
//! let err = TradeoffBuilder::new(1.5)
//!     .build(&g, &Sources::single(VertexId(0)))
//!     .unwrap_err();
//! assert!(matches!(err, FtbfsError::InvalidEps { .. }));
//! ```
//!
//! # Serving queries
//!
//! Preprocess once into a [`FaultQueryEngine`], then answer many
//! post-failure distance/path queries with no per-query allocation:
//!
//! ```
//! use ftbfs::graph::{generators, VertexId};
//! use ftbfs::{FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
//!
//! let g = generators::cycle(8);
//! let structure = TradeoffBuilder::new(0.3)
//!     .build(&g, &Sources::single(VertexId(0)))
//!     .expect("valid input");
//! let mut engine = FaultQueryEngine::new(&g, structure).expect("matching graph");
//! for e in g.edge_ids() {
//!     // a single failure never disconnects a cycle
//!     assert!(engine.dist_after_fault(VertexId(4), e).unwrap().is_some());
//! }
//! ```
//!
//! # Migrating from the 0.1 free functions
//!
//! The original free functions remain available but are deprecated:
//!
//! | deprecated                | replacement                                      |
//! |---------------------------|--------------------------------------------------|
//! | `build_ft_bfs`            | [`TradeoffBuilder`] / [`core::try_build_ft_bfs`] |
//! | `build_ft_bfs_with_eps`   | [`TradeoffBuilder::new`]                         |
//! | `build_baseline_ftbfs`    | [`BaselineBuilder`]                              |
//! | `build_reinforced_tree`   | [`ReinforcedTreeBuilder`]                        |
//! | `build_ft_mbfs`           | [`MultiSourceBuilder`]                           |
//!
//! The shims call the checked `try_*` functions and turn every error into a
//! panic. Note that validation is stricter than in 0.1: inputs the old code
//! silently tolerated (e.g. `eps = 2.0`, which ran the baseline branch) now
//! panic through the shims — migrate to the builders to handle them as
//! [`FtbfsError`] values instead:
//!
//! ```
//! use ftbfs::{build_ft_bfs, BuildConfig};
//! use ftbfs::graph::{generators, VertexId};
//!
//! let g = generators::hypercube(4);
//! #[allow(deprecated)]
//! let structure = build_ft_bfs(&g, VertexId(0), &BuildConfig::new(0.3));
//! assert!(structure.num_backup() + structure.num_reinforced() == structure.num_edges());
//! ```

#![forbid(unsafe_code)]

pub use ftb_core as core;
pub use ftb_graph as graph;
pub use ftb_lower_bounds as lower_bounds;
pub use ftb_obs as obs;
pub use ftb_par as par;
pub use ftb_rp as rp;
pub use ftb_sp as sp;
pub use ftb_tree as tree;
pub use ftb_workloads as workloads;

pub use ftb_core::{
    build_augmented_structure, build_structure, cross_check_fault_sets, dist_after_faults_brute,
    verify_structure, AugmentCoverage, AugmentStats, AugmentedStructure, BaselineBuilder,
    BuildConfig, BuildPlan, BuildStats, CostModel, EngineCore, EngineOptions, Fault,
    FaultQueryEngine, FaultSet, FaultSetMismatch, FtBfsAugmenter, FtBfsStructure, FtbfsError,
    MultiSourceBuilder, MultiSourceEngine, MultiSourceStructure, QueryContext, QueryStats,
    ReinforcedTreeBuilder, Sources, StructureBuilder, TierCounters, TradeoffBuilder,
    FORCE_FULL_SWEEP_ENV,
};

pub use ftb_core::EngineObs;

pub use ftb_core::{
    try_build_baseline_ftbfs, try_build_ft_bfs, try_build_ft_mbfs, try_build_reinforced_tree,
};

pub use ftb_core::{SnapshotError, SnapshotStore, SNAPSHOT_FORMAT_VERSION};

#[allow(deprecated)]
pub use ftb_core::{
    build_baseline_ftbfs, build_ft_bfs, build_ft_bfs_with_eps, build_ft_mbfs, build_reinforced_tree,
};
