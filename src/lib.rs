//! # ftbfs — Fault Tolerant BFS Structures: A Reinforcement–Backup Tradeoff
//!
//! Facade crate re-exporting the whole reproduction suite of
//! Parter & Peleg, *Fault Tolerant BFS Structures: A Reinforcement-Backup
//! Tradeoff* (SPAA 2015):
//!
//! * [`graph`] — the CSR graph substrate,
//! * [`par`] — crossbeam-based data-parallel helpers,
//! * [`sp`] — unique shortest paths, BFS trees, replacement distances,
//! * [`tree`] — LCA, heavy-path decomposition, path segmentation,
//! * [`rp`] — Algorithm `Pcons` and interference analysis,
//! * [`core`] — the `(b, r)` FT-BFS construction, baselines, verifier,
//!   multi-source structures and the cost model,
//! * [`lower_bounds`] — the Theorem 5.1 / 5.4 lower-bound families,
//! * [`workloads`] — deterministic experiment workloads.
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use ftbfs::{build_ft_bfs, BuildConfig};
//! use ftbfs::graph::{generators, VertexId};
//!
//! let g = generators::hypercube(4);
//! let structure = build_ft_bfs(&g, VertexId(0), &BuildConfig::new(0.3));
//! assert!(structure.num_backup() + structure.num_reinforced() == structure.num_edges());
//! ```

#![forbid(unsafe_code)]

pub use ftb_core as core;
pub use ftb_graph as graph;
pub use ftb_lower_bounds as lower_bounds;
pub use ftb_par as par;
pub use ftb_rp as rp;
pub use ftb_sp as sp;
pub use ftb_tree as tree;
pub use ftb_workloads as workloads;

pub use ftb_core::{
    build_baseline_ftbfs, build_ft_bfs, build_ft_bfs_with_eps, build_ft_mbfs,
    build_reinforced_tree, verify_structure, BuildConfig, CostModel, FtBfsStructure,
    MultiSourceStructure,
};
