//! The Theorem 5.1 lower-bound family in action.
//!
//! Builds the paper's hard instance `G(ε)`, checks the forcing argument
//! (Claim 5.3) empirically, and runs the upper-bound construction on it to
//! show that the measured structure size indeed sits above the certified
//! lower bound.
//!
//! ```bash
//! cargo run --release --example lower_bound_demo
//! ```

use ftbfs::graph::VertexId;
use ftbfs::lower_bounds::{
    certified_backup_lower_bound, single_source_lower_bound, verify_forcing,
};
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::{verify_structure, Sources, StructureBuilder, TradeoffBuilder};

fn main() {
    let n = 900;
    let eps = 0.3;
    let lb = single_source_lower_bound(n, eps);
    println!(
        "G(eps={eps}) with ~{n} vertices: k = {} copies, path length d = {}, |X_i| = {}",
        lb.num_copies, lb.path_len, lb.x_size
    );
    println!(
        "n = {}, m = {}, costly path edges |Pi| = {}, bipartite edges |B| = {}",
        lb.graph.num_vertices(),
        lb.graph.num_edges(),
        lb.num_pi_edges(),
        lb.num_bipartite_edges()
    );

    // Empirically confirm the forcing argument on a sample.
    let forcing = verify_forcing(&lb, 60);
    println!(
        "forcing check: {}/{} sampled bipartite edges are indispensable",
        forcing.confirmed, forcing.samples
    );

    // The theorem's reinforcement budget and the implied backup lower bound.
    let budget = lb.reinforcement_budget();
    let certified = certified_backup_lower_bound(&lb, budget);
    println!(
        "with at most {budget} reinforced edges, any structure needs >= {certified} backup edges"
    );

    // Run the upper-bound construction on the hard instance and compare.
    let builder = TradeoffBuilder::new(eps).with_config(|c| c.with_seed(1));
    let structure = builder
        .build(&lb.graph, &Sources::single(lb.source))
        .expect("the lower-bound instance is valid input");
    println!(
        "constructed structure: b = {}, r = {}",
        structure.num_backup(),
        structure.num_reinforced()
    );
    let weights = TieBreakWeights::generate(&lb.graph, builder.config().seed);
    let tree = ShortestPathTree::build(&lb.graph, &weights, lb.source);
    let report = verify_structure(
        &lb.graph,
        &tree,
        &structure,
        &builder.config().parallel,
        false,
    );
    assert!(report.is_valid());
    let effective_certified = certified_backup_lower_bound(&lb, structure.num_reinforced());
    println!(
        "with the {} edges the construction actually reinforced, the certified bound is {} backup edges; measured b = {} (>= bound: {})",
        structure.num_reinforced(),
        effective_certified,
        structure.num_backup(),
        structure.num_backup() >= effective_certified
    );
    if VertexId(0) != lb.source {
        println!("(source vertex is {:?})", lb.source);
    }
}
