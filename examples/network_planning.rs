//! Network planning with the backup/reinforcement cost model.
//!
//! A network operator has an existing topology and two catalogue prices: a
//! cheap fault-prone link (backup, price `B`) and an expensive fault-immune
//! link (reinforced, price `R`). The paper's corollary says the sweet spot of
//! the tradeoff is `ε ≈ log(R/B) / log n`; this example sweeps ε through the
//! [`BuildPlan`] interface, prices each resulting structure and compares
//! against the two extremes (reinforce the whole BFS tree vs. buy the full
//! ESA'13 backup structure).
//!
//! ```bash
//! cargo run --release --example network_planning
//! ```

use ftbfs::graph::VertexId;
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{build_structure, BuildConfig, BuildPlan, CostModel, Sources};

fn main() {
    let workload = Workload::new(WorkloadFamily::LayeredDeep, 600, 7);
    let graph = workload.generate();
    let sources = Sources::single(VertexId(0));
    let n = graph.num_vertices();
    let config = BuildConfig::new(0.0).with_seed(7);
    println!(
        "topology {}: n = {n}, m = {}",
        workload.label(),
        graph.num_edges()
    );

    for ratio in [1.0, 10.0, 100.0, 1000.0] {
        let prices = CostModel::new(1.0, ratio);
        let suggested = prices.optimal_eps(n);
        println!("\n== price ratio R/B = {ratio} -> suggested eps = {suggested:.3} ==");
        println!(
            "{:>6} | {:>9} | {:>9} | {:>12}",
            "eps", "backup b", "reinf. r", "total cost"
        );
        let mut best: Option<(f64, f64)> = None;
        for &eps in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, suggested] {
            let plan = BuildPlan::Tradeoff { eps };
            let structure = build_structure(&graph, &sources, plan, &config)
                .expect("a connected workload with source 0 is valid input");
            let cost = prices.cost_of(&structure);
            println!(
                "{eps:>6.2} | {:>9} | {:>9} | {cost:>12.1}",
                structure.num_backup(),
                structure.num_reinforced()
            );
            if best.map(|(_, c)| cost < c).unwrap_or(true) {
                best = Some((eps, cost));
            }
        }
        let (best_eps, best_cost) = best.unwrap();
        println!(
            "cheapest measured point: eps = {best_eps:.2} at cost {best_cost:.1} (suggested {suggested:.3})"
        );
    }
}
