//! Quickstart: build a `(b, r)` FT-BFS structure and verify it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ftbfs::graph::VertexId;
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{build_ft_bfs, verify_structure, BuildConfig};

fn main() {
    // A reproducible random workload: an Erdős–Rényi graph with ~500 vertices.
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 500, 42);
    let graph = workload.generate();
    let source = VertexId(0);
    println!(
        "workload {} : n = {}, m = {}",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // Build the structure for a mid-range tradeoff point.
    let eps = 0.3;
    let config = BuildConfig::new(eps).with_seed(42);
    let structure = build_ft_bfs(&graph, source, &config);
    println!(
        "eps = {eps}: |E(H)| = {}, backup b = {}, reinforced r = {}",
        structure.num_edges(),
        structure.num_backup(),
        structure.num_reinforced()
    );
    println!(
        "phase S1 added {} edges, phase S2 added {} (+{} for glue edges), construction took {:.1} ms",
        structure.stats().s1_added_edges,
        structure.stats().s2_added_edges,
        structure.stats().s2_glue_added_edges,
        structure.stats().construction_ms
    );

    // Verify the defining guarantee from scratch: for every vertex v and
    // every non-reinforced tree edge e, dist(s,v,H\{e}) <= dist(s,v,G\{e}).
    let weights = TieBreakWeights::generate(&graph, config.seed);
    let tree = ShortestPathTree::build(&graph, &weights, source);
    let report = verify_structure(&graph, &tree, &structure, &config.parallel, false);
    println!(
        "verification: {} failing edges checked, {} violations, fault-free distances preserved: {}",
        report.checked_edges,
        report.violations.len(),
        report.fault_free_ok
    );
    assert!(report.is_valid(), "the constructed structure must verify");
    println!("OK: the structure is a valid (b, r) FT-BFS structure.");
}
