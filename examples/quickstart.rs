//! Quickstart: build a `(b, r)` FT-BFS structure, verify it, and serve
//! post-failure queries from it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ftbfs::graph::VertexId;
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{
    verify_structure, EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder,
};

fn main() {
    // A reproducible random workload: an Erdős–Rényi graph with ~500 vertices.
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 500, 42);
    let graph = workload.generate();
    let source = VertexId(0);
    println!(
        "workload {} : n = {}, m = {}",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges()
    );

    // Build the structure for a mid-range tradeoff point.
    let eps = 0.3;
    let builder = TradeoffBuilder::new(eps).with_config(|c| c.with_seed(42));
    let structure = builder
        .build(&graph, &Sources::single(source))
        .expect("a connected workload with source 0 is valid input");
    println!(
        "eps = {eps}: |E(H)| = {}, backup b = {}, reinforced r = {}",
        structure.num_edges(),
        structure.num_backup(),
        structure.num_reinforced()
    );
    println!(
        "phase S1 added {} edges, phase S2 added {} (+{} for glue edges), construction took {:.1} ms",
        structure.stats().s1_added_edges,
        structure.stats().s2_added_edges,
        structure.stats().s2_glue_added_edges,
        structure.stats().construction_ms
    );

    // Verify the defining guarantee from scratch: for every vertex v and
    // every non-reinforced tree edge e, dist(s,v,H\{e}) <= dist(s,v,G\{e}).
    let weights = TieBreakWeights::generate(&graph, builder.config().seed);
    let tree = ShortestPathTree::build(&graph, &weights, source);
    let report = verify_structure(&graph, &tree, &structure, &builder.config().parallel, false);
    println!(
        "verification: {} failing edges checked, {} violations, fault-free distances preserved: {}",
        report.checked_edges,
        report.violations.len(),
        report.fault_free_ok
    );
    assert!(report.is_valid(), "the constructed structure must verify");

    // Preprocess once, query many: the engine answers post-failure distances
    // out of the sparse structure with no per-query allocation. Serving
    // knobs (per-context LRU rows, batch-sharding threads) are lifted from
    // the build configuration; see the concurrent_serving example for
    // serving one shared EngineCore from many threads.
    let options = EngineOptions::from_build_config(builder.config());
    let mut engine =
        FaultQueryEngine::with_options(&graph, structure, options).expect("matching graph");
    let far = VertexId((graph.num_vertices() - 1) as u32);
    let probes: Vec<_> = graph.edge_ids().take(64).map(|e| (far, e)).collect();
    let answers = engine.query_many(&probes).expect("probes are in range");
    let worst = answers.iter().flatten().max();
    println!(
        "served {} queries ({} BFS sweeps inside H, {} cache hits); worst probed distance: {:?}",
        answers.len(),
        engine.query_stats().structure_bfs_runs,
        engine.query_stats().cached_answers,
        worst
    );
    println!("OK: the structure is a valid (b, r) FT-BFS structure.");
}
