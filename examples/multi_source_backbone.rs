//! Multi-source FT-MBFS: protecting several gateways at once.
//!
//! A campus network has a handful of gateway routers; operations wants exact
//! post-failure shortest paths from *every* gateway. This example builds an
//! ε FT-MBFS structure for a set of gateway sources via [`MultiSourceBuilder`]
//! and reports how the cost grows with the number of sources, mirroring the
//! σ-dependence of Theorem 5.4.
//!
//! ```bash
//! cargo run --release --example multi_source_backbone
//! ```

use ftbfs::graph::VertexId;
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{MultiSourceBuilder, Sources};

fn main() {
    let workload = Workload::new(WorkloadFamily::GridChords, 400, 3);
    let graph = workload.generate();
    println!(
        "backbone {}: n = {}, m = {}",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges()
    );

    let eps = 0.3;
    let builder = MultiSourceBuilder::new(eps).with_config(|c| c.with_seed(3));
    // Gateways spread across the id space.
    let all_gateways: Vec<VertexId> = (0..8)
        .map(|i| VertexId::new(i * graph.num_vertices() / 8))
        .collect();

    println!(
        "{:>9} | {:>9} | {:>9} | {:>9}",
        "gateways", "|E(H)|", "backup", "reinforced"
    );
    for count in [1usize, 2, 4, 8] {
        let sources = Sources::multi(all_gateways[..count].to_vec());
        let mbfs = builder
            .build_multi(&graph, &sources)
            .expect("gateways are valid sources");
        println!(
            "{count:>9} | {:>9} | {:>9} | {:>9}",
            mbfs.num_edges(),
            mbfs.num_backup(),
            mbfs.num_reinforced()
        );
    }
    println!("\nper-source detail for the 4-gateway design:");
    let mbfs = builder
        .build_multi(&graph, &Sources::multi(all_gateways[..4].to_vec()))
        .expect("gateways are valid sources");
    for (s, st) in mbfs.sources().iter().zip(mbfs.per_source()) {
        println!(
            "  source {s:?}: b = {}, r = {}, construction {:.1} ms",
            st.num_backup(),
            st.num_reinforced(),
            st.stats().construction_ms
        );
    }
}
