//! The paper's introductory example: one reinforced edge goes a long way.
//!
//! The graph is a single source attached by a pendant edge to an
//! `(n-1)`-vertex clique. Keeping every existing edge still leaves edge
//! connectivity 1; in the mixed model it suffices to reinforce the pendant
//! edge, after which only a thin backup structure inside the clique is
//! needed. This example quantifies that gap.
//!
//! ```bash
//! cargo run --release --example reinforce_one_edge
//! ```

use ftbfs::graph::{generators, VertexId};
use ftbfs::sp::{ShortestPathTree, TieBreakWeights};
use ftbfs::{verify_structure, BaselineBuilder, Sources, StructureBuilder, TradeoffBuilder};

fn main() {
    println!(
        "{:>6} | {:>8} | {:>14} | {:>14} | {:>10}",
        "n", "m", "mixed (b, r)", "baseline b", "savings"
    );
    for n in [50usize, 100, 200, 400] {
        let graph = generators::clique_with_pendant(n);
        let sources = Sources::single(VertexId(0));

        // Mixed model: a small ε gives a tiny reinforcement budget, which the
        // construction spends on the pendant bottleneck edge.
        let mixed_builder = TradeoffBuilder::new(0.2).with_config(|c| c.with_seed(5));
        let mixed = mixed_builder
            .build(&graph, &sources)
            .expect("the intro example is valid input");
        let weights = TieBreakWeights::generate(&graph, mixed_builder.config().seed);
        let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
        assert!(verify_structure(
            &graph,
            &tree,
            &mixed,
            &mixed_builder.config().parallel,
            false
        )
        .is_valid());

        // Pure backup (the ESA'13 structure, no reinforcement allowed).
        let baseline = BaselineBuilder::new()
            .with_config(|c| c.with_seed(5))
            .build(&graph, &sources)
            .expect("the intro example is valid input");

        let savings =
            100.0 * (1.0 - (mixed.num_edges() as f64) / (baseline.num_edges().max(1) as f64));
        println!(
            "{n:>6} | {:>8} | ({:>5}, {:>3}) | {:>14} | {savings:>9.1}%",
            graph.num_edges(),
            mixed.num_backup(),
            mixed.num_reinforced(),
            baseline.num_edges()
        );
    }
    println!("\n(the pendant edge disconnects the source, so it needs no backup protection;");
    println!(" the mixed structure reinforces a handful of tree edges inside the clique instead");
    println!(" of buying the clique-sized backup set the pure-backup baseline needs.)");
}
