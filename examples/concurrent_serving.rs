//! Concurrent fault-query serving: one shared `EngineCore`, one
//! `QueryContext` per worker thread.
//!
//! The engine core is immutable and `Send + Sync`, so preprocessing happens
//! once and any number of threads answer post-failure queries from the same
//! `Arc<EngineCore>` — each with its own cheap context (scratch buffers plus
//! a small LRU of recently computed distance rows). This is the pattern a
//! serving process uses: preprocess at startup, then give every request
//! worker a context.
//!
//! ```bash
//! cargo run --release --example concurrent_serving
//! ```

use ftbfs::graph::{EdgeId, VertexId};
use ftbfs::workloads::{Workload, WorkloadFamily};
use ftbfs::{EngineCore, EngineOptions, Sources, StructureBuilder, TradeoffBuilder};
use std::sync::Arc;

fn main() {
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 800, 7);
    let graph = workload.generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(7))
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("a connected workload with source 0 is valid input");
    println!(
        "workload {}: n = {}, m = {}, |E(H)| = {}",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges(),
        structure.num_edges()
    );

    // Preprocess once into a shareable core. The core owns everything it
    // needs, so the Arc moves freely into spawned threads.
    let options = EngineOptions::new().with_lru_rows(16);
    let core = Arc::new(
        EngineCore::build_with(&graph, structure, options).expect("structure matches its graph"),
    );

    // Fan out: each worker serves a disjoint slice of failure scenarios with
    // its own context. No locks, no channels — the core is read-only.
    let edges: Vec<EdgeId> = graph.edge_ids().collect();
    let far = VertexId((graph.num_vertices() - 1) as u32);
    let workers = 4usize;
    let mut handles = Vec::new();
    for w in 0..workers {
        let core = Arc::clone(&core);
        let shard: Vec<EdgeId> = edges.iter().copied().skip(w).step_by(workers).collect();
        handles.push(std::thread::spawn(move || {
            let mut ctx = core.new_context();
            let mut worst: Option<u32> = None;
            let mut disconnected = 0usize;
            for &e in &shard {
                match ctx
                    .dist_after_fault(&core, far, e)
                    .expect("shard queries are in range")
                {
                    Some(d) => worst = Some(worst.map_or(d, |w| w.max(d))),
                    None => disconnected += 1,
                }
            }
            (shard.len(), worst, disconnected, ctx.stats())
        }));
    }

    let mut total = 0usize;
    let mut worst: Option<u32> = None;
    let mut disconnected = 0usize;
    for (w, handle) in handles.into_iter().enumerate() {
        let (served, shard_worst, shard_disc, stats) = handle.join().expect("worker panicked");
        println!(
            "worker {w}: {served} failures served, {} BFS sweeps in H, {} cache/fault-free hits",
            stats.structure_bfs_runs + stats.full_graph_bfs_runs,
            stats.cached_answers
        );
        total += served;
        disconnected += shard_disc;
        worst = match (worst, shard_worst) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
    println!(
        "served {total} single-failure scenarios against vertex {far:?}: worst distance {worst:?}, \
         {disconnected} disconnecting failures"
    );
    assert_eq!(total, edges.len());
    println!("OK: every failure scenario answered from one shared core.");
}
