//! Surviving a correlated outage: vertex + edge faults in one query.
//!
//! A metro fibre ring with cross-links loses a whole street cabinet (a
//! vertex: the node and every attached fibre) at the same time as an
//! unrelated backhoe cuts one link (an edge). The operator wants, for each
//! customer site, the new distance from the head-end and a concrete
//! detour — one engine, one `FaultSet`, no rebuild.
//!
//! Run with `cargo run --example multi_fault_outage`.

use ftbfs::graph::{Fault, FaultSet, GraphBuilder, VertexId};
use ftbfs::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-node ring (head-end = 0) with a few cross-town chords.
    let n = 12;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(VertexId::new(i), VertexId::new((i + 1) % n));
    }
    for (u, v) in [(0, 4), (2, 7), (5, 10), (3, 9)] {
        b.add_edge(VertexId(u), VertexId(v));
    }
    let graph = b.build();
    let head_end = VertexId(0);

    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(7))
        .build(&graph, &Sources::single(head_end))?;
    println!(
        "ring: n = {}, m = {}; structure keeps {} edges ({} reinforced)",
        graph.num_vertices(),
        graph.num_edges(),
        structure.num_edges(),
        structure.num_reinforced()
    );

    let mut engine = FaultQueryEngine::with_options(
        &graph,
        structure,
        // default cap is 2 simultaneous faults; this outage needs exactly 2
        EngineOptions::new().with_max_faults(2),
    )?;

    // The outage: cabinet 7 is dark, and the 5–10 chord is cut.
    let cut = graph
        .find_edge(VertexId(5), VertexId(10))
        .expect("the chord exists");
    let outage: FaultSet = [Fault::Vertex(VertexId(7)), Fault::Edge(cut)]
        .into_iter()
        .collect();
    println!("outage {outage}: cabinet 7 dark, chord 5-10 cut\n");

    println!("site | before | after | detour");
    println!("---- | ------ | ----- | ------");
    for v in graph.vertices().filter(|&v| v != head_end) {
        let before = engine.fault_free_dist(v)?.expect("ring is connected");
        match engine.dist_after_faults(v, &outage)? {
            Some(after) => {
                let path = engine
                    .path_after_faults(v, &outage)?
                    .expect("reachable sites have witness paths");
                let hops: Vec<String> = path.vertices().iter().map(|w| w.to_string()).collect();
                println!("{v:>4} | {before:>6} | {after:>5} | {}", hops.join("→"));
            }
            None => println!("{v:>4} | {before:>6} |  dark | (cabinet offline)"),
        }
    }

    let stats = engine.query_stats();
    println!(
        "\n{} queries; {} cached, {} structure sweeps, {} full-graph sweeps",
        stats.queries, stats.cached_answers, stats.structure_bfs_runs, stats.full_graph_bfs_runs
    );
    println!(
        "(vertex faults sit outside the paper's single-edge guarantee, so the\n\
         engine answers them with exact recomputed rows — one full-graph BFS\n\
         per distinct fault set, then served from the LRU.)"
    );
    Ok(())
}
