//! Retiring the full-graph fallback: augmented structures end to end.
//!
//! A regional backbone serves post-failure distance queries from one
//! head-end. Vertex outages and double failures used to cost a full-graph
//! BFS per distinct fault set; the replacement-path augmentation
//! (`ftb_core::ftbfs`) precomputes a sparse `H⁺` once, offline, and the
//! same queries become sparse-subgraph searches — observable through the
//! engine's per-tier counters.
//!
//! Run with `cargo run --example augmented_structures`.

use ftbfs::graph::{Fault, FaultSet, VertexId};
use ftbfs::workloads::families;
use ftbfs::{
    build_augmented_structure, AugmentCoverage, BuildConfig, BuildPlan, FaultQueryEngine, Sources,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense-ish regional backbone: 200 sites, 2000 links.
    let graph = families::erdos_renyi_gnm(200, 2000, 42);
    let head_end = VertexId(0);

    // Stage 1 + 2 in one call: build the (b, r) tradeoff structure, then
    // run the dual-failure replacement-path augmentation over it.
    let config = BuildConfig::new(0.3)
        .with_seed(42)
        .with_augment(AugmentCoverage::DualFailure);
    let augmented = build_augmented_structure(
        &graph,
        &Sources::single(head_end),
        BuildPlan::Tradeoff { eps: 0.3 },
        &config,
    )?;
    println!(
        "graph: n = {}, m = {}; H keeps {} edges, H+ adds {} more ({:.0} ms offline)",
        graph.num_vertices(),
        graph.num_edges(),
        augmented.base().num_edges(),
        augmented.added_edges(),
        augmented.stats().augment_ms
    );

    let mut engine = FaultQueryEngine::from_augmented(&graph, augmented)?;

    // A vertex outage, a double link failure, and a mixed one — all inside
    // the dual-failure coverage, so none of them recomputes over G.
    let dark_site = FaultSet::single_vertex(VertexId(17));
    let double_cut: FaultSet = [
        Fault::Edge(ftbfs::graph::EdgeId(3)),
        Fault::Edge(ftbfs::graph::EdgeId(900)),
    ]
    .into_iter()
    .collect();
    let mixed: FaultSet = [
        Fault::Vertex(VertexId(60)),
        Fault::Edge(ftbfs::graph::EdgeId(55)),
    ]
    .into_iter()
    .collect();
    for (label, faults) in [
        ("site 17 dark", &dark_site),
        ("links 3 + 900 cut", &double_cut),
        ("site 60 dark + link 55 cut", &mixed),
    ] {
        let probe = VertexId(150);
        match engine.dist_after_faults(probe, faults)? {
            Some(d) => println!("{label}: site {probe} now {d} hops from the head-end"),
            None => println!("{label}: site {probe} disconnected"),
        }
    }

    let stats = engine.query_stats();
    println!(
        "tier counters: fault-free row {}, unaffected fast path {}, sparse H {}, \
         augmented H+ {}, full graph {}",
        stats.tiers.fault_free_row,
        stats.tiers.unaffected_fast_path,
        stats.tiers.sparse_h_bfs,
        stats.tiers.augmented_bfs,
        stats.tiers.full_graph_bfs
    );
    assert_eq!(
        stats.tiers.full_graph_bfs, 0,
        "covered fault sets never fall back to a full-graph BFS"
    );
    Ok(())
}
