//! Deterministic workload generators for the FT-BFS experiments.
//!
//! All generators take an explicit seed and produce *connected* graphs (after
//! an optional connectivity repair pass), so that every vertex participates
//! in the BFS structure and experiment tables are reproducible run-to-run.
//!
//! Families:
//! * [`erdos_renyi_gnp`] / [`erdos_renyi_gnm`] — classical random graphs,
//! * [`layered_random`] — random graphs with a prescribed number of BFS
//!   layers (controls the depth of `T0`, which drives the difficulty of the
//!   FT-BFS construction),
//! * [`preferential_attachment`] — heavy-tailed degree distributions,
//! * [`random_geometric_grid`] — a grid with random long-range chords,
//! * re-exports of the deterministic families from `ftb_graph::generators`
//!   (clique-with-pendant, grids, hypercubes) used by specific experiments,
//! * [`suite`] — named workload descriptors consumed by the bench harness,
//! * [`fault_scenarios`] — multi-fault failure patterns (random f-sets,
//!   correlated vertex outages, faults concentrated on the BFS tree) for
//!   the fault-query experiments,
//! * [`open_loop`] — deterministic open-loop arrival schedules (fixed-rate
//!   and Poisson) for the network load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod fault_scenarios;
pub mod open_loop;
pub mod suite;

pub use families::{
    connectivity_repair, erdos_renyi_gnm, erdos_renyi_gnp, layered_random, preferential_attachment,
    random_geometric_grid,
};
pub use fault_scenarios::FaultScenario;
pub use open_loop::{ArrivalProcess, ArrivalSchedule};
pub use suite::{Workload, WorkloadFamily};
