//! Multi-fault scenario families for the fault-query experiments.
//!
//! Each scenario turns a graph into a deterministic stream of
//! [`FaultSet`]s of a prescribed size `f`, modelling a different failure
//! pattern a serving engine has to absorb:
//!
//! * [`FaultScenario::RandomEdges`] — independent uniform edge failures,
//! * [`FaultScenario::RandomMixed`] — each fault an edge or a vertex with
//!   equal probability (the general fault model),
//! * [`FaultScenario::CorrelatedVertices`] — a random centre vertex fails
//!   together with neighbours (one switch taking its rack down),
//! * [`FaultScenario::TreeConcentrated`] — faults drawn from the BFS-tree
//!   edges of the source, the worst pattern for a BFS structure: every
//!   fault is guaranteed to hit `T0 ⊆ H`.
//!
//! Vertex faults never include the query source (a failed source answers
//! every query with "disconnected", which measures nothing).

use ftb_graph::{Fault, FaultSet, Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A named multi-fault failure pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultScenario {
    /// `f` distinct uniform random edges.
    RandomEdges,
    /// `f` distinct faults, each an edge or a vertex with equal probability.
    RandomMixed,
    /// A random centre vertex plus `f - 1` of its neighbours (all vertex
    /// faults): one shared failure domain going down at once.
    CorrelatedVertices,
    /// `f` distinct edges of the source's BFS tree — every fault hits the
    /// structure, so no query is answered from the fault-free row.
    TreeConcentrated,
}

impl FaultScenario {
    /// All scenarios, in presentation order.
    pub fn all() -> &'static [FaultScenario] {
        &[
            FaultScenario::RandomEdges,
            FaultScenario::RandomMixed,
            FaultScenario::CorrelatedVertices,
            FaultScenario::TreeConcentrated,
        ]
    }

    /// Short table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::RandomEdges => "random-edges",
            FaultScenario::RandomMixed => "random-mixed",
            FaultScenario::CorrelatedVertices => "correlated-vertices",
            FaultScenario::TreeConcentrated => "tree-concentrated",
        }
    }

    /// Generate `count` fault sets of size (at most) `f` for queries served
    /// from `source`. Deterministic in `seed`; vertex faults never include
    /// `source`.
    ///
    /// Sets can fall short of `f` only when the graph is too small to offer
    /// enough distinct faults (e.g. a centre vertex of degree `< f - 1`).
    pub fn generate(
        &self,
        graph: &Graph,
        source: VertexId,
        f: usize,
        count: usize,
        seed: u64,
    ) -> Vec<FaultSet> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_75E7 ^ (*self as u64) << 32);
        let mut out = Vec::with_capacity(count);
        let tree_edges = match self {
            FaultScenario::TreeConcentrated => bfs_tree_edges(graph, source),
            _ => Vec::new(),
        };
        for _ in 0..count {
            let mut set = FaultSet::new();
            // The canonical FaultSet reorders its members, so the chosen
            // centre of a correlated set is remembered here, not recovered
            // from the set.
            let mut centre: Option<VertexId> = None;
            let mut guard = 0usize;
            while set.len() < f && guard < 50 * f + 100 {
                guard += 1;
                match self {
                    FaultScenario::RandomEdges => {
                        if graph.num_edges() == 0 {
                            break;
                        }
                        // edge ids are dense 0..m
                        set.insert(Fault::Edge(ftb_graph::EdgeId::new(
                            rng.random_range(0..graph.num_edges()),
                        )));
                    }
                    FaultScenario::RandomMixed => {
                        if graph.num_edges() == 0 || rng.random_bool(0.5) {
                            let v = VertexId::new(rng.random_range(0..graph.num_vertices()));
                            if v != source {
                                set.insert(Fault::Vertex(v));
                            }
                        } else {
                            set.insert(Fault::Edge(ftb_graph::EdgeId::new(
                                rng.random_range(0..graph.num_edges()),
                            )));
                        }
                    }
                    FaultScenario::CorrelatedVertices => match centre {
                        None => {
                            // pick a centre that is not the source
                            let v = VertexId::new(rng.random_range(0..graph.num_vertices()));
                            if v != source {
                                set.insert(Fault::Vertex(v));
                                centre = Some(v);
                            }
                        }
                        Some(c) => {
                            // grow along the centre's neighbourhood
                            let deg = graph.degree(c);
                            if deg == 0 {
                                break;
                            }
                            let (w, _) = graph.neighbors(c).nth(rng.random_range(0..deg)).unwrap();
                            if w != source {
                                set.insert(Fault::Vertex(w));
                            }
                        }
                    },
                    FaultScenario::TreeConcentrated => {
                        if tree_edges.is_empty() {
                            break;
                        }
                        set.insert(Fault::Edge(
                            tree_edges[rng.random_range(0..tree_edges.len())],
                        ));
                    }
                }
            }
            out.push(set);
        }
        out
    }
}

impl FaultScenario {
    /// Generate `count` one-to-many requests: each pairs one fault set of
    /// size (at most) `f` — drawn exactly like [`FaultScenario::generate`]
    /// with the same `seed`, so the failure stream is identical — with
    /// `targets_per_request` uniform random target vertices (duplicates
    /// allowed, the source included like any other vertex). This is the
    /// replay shape of a `DistMany` serving workload: one failure event,
    /// many destinations queried under it.
    pub fn generate_one_to_many(
        &self,
        graph: &Graph,
        source: VertexId,
        f: usize,
        targets_per_request: usize,
        count: usize,
        seed: u64,
    ) -> Vec<(FaultSet, Vec<VertexId>)> {
        let faults = self.generate(graph, source, f, count, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0123_7A46 ^ (*self as u64) << 32);
        faults
            .into_iter()
            .map(|set| {
                let targets = (0..targets_per_request)
                    .map(|_| VertexId::new(rng.random_range(0..graph.num_vertices())))
                    .collect();
                (set, targets)
            })
            .collect()
    }
}

/// The edges of one BFS tree of `graph` rooted at `source` (first-visit
/// parent edges; deterministic in the CSR adjacency order).
fn bfs_tree_edges(graph: &Graph, source: VertexId) -> Vec<ftb_graph::EdgeId> {
    let mut seen = vec![false; graph.num_vertices()];
    let mut edges = Vec::new();
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (w, e) in graph.neighbors(u) {
            if !seen[w.index()] {
                seen[w.index()] = true;
                edges.push(e);
                queue.push_back(w);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use ftb_graph::generators;

    #[test]
    fn scenarios_are_deterministic_and_respect_f() {
        let g = families::erdos_renyi_gnm(60, 180, 3);
        for &scenario in FaultScenario::all() {
            let a = scenario.generate(&g, VertexId(0), 2, 16, 42);
            let b = scenario.generate(&g, VertexId(0), 2, 16, 42);
            assert_eq!(a, b, "{} not deterministic", scenario.name());
            assert_eq!(a.len(), 16);
            for set in &a {
                assert!(set.len() <= 2, "{}: {set}", scenario.name());
                assert!(!set.is_empty(), "{}: empty set", scenario.name());
                assert!(
                    !set.contains_vertex(VertexId(0)),
                    "{}: source faulted",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn correlated_sets_are_vertex_only_and_adjacent() {
        // A sparse graph where adjacency is a real constraint: every member
        // of a correlated set must be one designated centre or its
        // neighbour, even when canonical ordering puts a neighbour with a
        // smaller id first.
        let g = generators::path(16);
        let sets = FaultScenario::CorrelatedVertices.generate(&g, VertexId(0), 3, 10, 7);
        for set in &sets {
            assert!(set.edges().next().is_none(), "edge fault in {set}");
            let vs: Vec<VertexId> = set.vertices().collect();
            assert!(!vs.is_empty());
            assert!(vs.iter().all(|&v| v != VertexId(0)));
            let has_centre = vs
                .iter()
                .any(|&c| vs.iter().all(|&v| v == c || g.find_edge(c, v).is_some()));
            assert!(has_centre, "no common failure domain in {set}");
        }
    }

    #[test]
    fn degenerate_graphs_yield_short_sets_instead_of_panicking() {
        // A single vertex: no edges, no tree, no non-source vertices.
        let mut b = ftb_graph::GraphBuilder::new(1);
        b.add_edge(VertexId(0), VertexId(0)); // self-loop is dropped
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        for &scenario in FaultScenario::all() {
            let sets = scenario.generate(&g, VertexId(0), 2, 3, 1);
            assert_eq!(sets.len(), 3, "{}", scenario.name());
            assert!(
                sets.iter().all(|s| s.is_empty()),
                "{}: drew a fault from an empty pool",
                scenario.name()
            );
        }
    }

    #[test]
    fn tree_concentrated_faults_hit_the_bfs_tree() {
        let g = families::random_geometric_grid(6, 6, 10, 5);
        let tree: std::collections::HashSet<_> =
            bfs_tree_edges(&g, VertexId(0)).into_iter().collect();
        assert_eq!(tree.len(), g.num_vertices() - 1, "grid is connected");
        let sets = FaultScenario::TreeConcentrated.generate(&g, VertexId(0), 2, 12, 9);
        for set in &sets {
            assert_eq!(set.len(), 2);
            for e in set.edges() {
                assert!(tree.contains(&e), "{e:?} is not a tree edge");
            }
        }
    }

    #[test]
    fn one_to_many_requests_replay_the_same_fault_stream() {
        let g = families::erdos_renyi_gnm(60, 180, 3);
        for &scenario in FaultScenario::all() {
            let reqs = scenario.generate_one_to_many(&g, VertexId(0), 2, 5, 12, 42);
            let again = scenario.generate_one_to_many(&g, VertexId(0), 2, 5, 12, 42);
            assert_eq!(reqs, again, "{} not deterministic", scenario.name());
            assert_eq!(reqs.len(), 12);
            let faults = scenario.generate(&g, VertexId(0), 2, 12, 42);
            for (i, (set, targets)) in reqs.iter().enumerate() {
                assert_eq!(
                    set,
                    &faults[i],
                    "{}: fault stream diverged",
                    scenario.name()
                );
                assert_eq!(targets.len(), 5);
                assert!(targets.iter().all(|t| t.index() < g.num_vertices()));
            }
        }
    }

    #[test]
    fn different_scenarios_differ() {
        let g = families::erdos_renyi_gnm(50, 150, 11);
        let edges = FaultScenario::RandomEdges.generate(&g, VertexId(0), 2, 10, 1);
        let mixed = FaultScenario::RandomMixed.generate(&g, VertexId(0), 2, 10, 1);
        assert_ne!(edges, mixed);
        assert!(edges.iter().all(|s| s.is_edges_only()));
        assert!(
            mixed.iter().any(|s| !s.is_edges_only()),
            "mixed scenario never produced a vertex fault"
        );
    }
}
