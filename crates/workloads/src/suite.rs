//! Named workload descriptors consumed by the experiment harness.

use crate::families;
use ftb_graph::{generators, Graph};

/// The graph family of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadFamily {
    /// Erdős–Rényi `G(n, p)` with average degree ≈ 8.
    ErdosRenyi,
    /// Layered random graph with depth ≈ `sqrt(n)`.
    LayeredDeep,
    /// Layered random graph with depth ≈ `log n`.
    LayeredShallow,
    /// 2-D grid with random chords.
    GridChords,
    /// Preferential attachment with 3 edges per arrival.
    PreferentialAttachment,
    /// The paper's introductory clique-with-pendant example.
    CliqueWithPendant,
    /// Hypercube of dimension ⌈log2 n⌉.
    Hypercube,
}

impl WorkloadFamily {
    /// All families, in presentation order.
    pub fn all() -> &'static [WorkloadFamily] {
        &[
            WorkloadFamily::ErdosRenyi,
            WorkloadFamily::LayeredDeep,
            WorkloadFamily::LayeredShallow,
            WorkloadFamily::GridChords,
            WorkloadFamily::PreferentialAttachment,
            WorkloadFamily::CliqueWithPendant,
            WorkloadFamily::Hypercube,
        ]
    }

    /// Short table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadFamily::ErdosRenyi => "erdos-renyi",
            WorkloadFamily::LayeredDeep => "layered-deep",
            WorkloadFamily::LayeredShallow => "layered-shallow",
            WorkloadFamily::GridChords => "grid-chords",
            WorkloadFamily::PreferentialAttachment => "pref-attach",
            WorkloadFamily::CliqueWithPendant => "clique-pendant",
            WorkloadFamily::Hypercube => "hypercube",
        }
    }
}

/// A fully specified workload: family, target size and seed.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Graph family.
    pub family: WorkloadFamily,
    /// Target number of vertices (the generated graph may deviate slightly,
    /// e.g. grids round to a rectangle and hypercubes to a power of two).
    pub target_n: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Workload {
    /// Create a workload descriptor.
    pub fn new(family: WorkloadFamily, target_n: usize, seed: u64) -> Self {
        Workload {
            family,
            target_n,
            seed,
        }
    }

    /// Generate the graph. The source vertex for FT-BFS experiments is always
    /// vertex 0.
    pub fn generate(&self) -> Graph {
        let n = self.target_n.max(4);
        match self.family {
            WorkloadFamily::ErdosRenyi => {
                let p = (8.0 / n as f64).min(1.0);
                families::erdos_renyi_gnp(n, p, self.seed)
            }
            WorkloadFamily::LayeredDeep => {
                let layers = (n as f64).sqrt().round().max(2.0) as usize;
                let width = (n / layers).max(1);
                families::layered_random(layers, width, 3, 0.3, self.seed)
            }
            WorkloadFamily::LayeredShallow => {
                let layers = (n as f64).log2().ceil().max(2.0) as usize;
                let width = (n / layers).max(1);
                families::layered_random(layers, width, 4, 0.3, self.seed)
            }
            WorkloadFamily::GridChords => {
                let side = (n as f64).sqrt().ceil() as usize;
                families::random_geometric_grid(side, side, n / 10, self.seed)
            }
            WorkloadFamily::PreferentialAttachment => {
                families::preferential_attachment(n, 3, self.seed)
            }
            WorkloadFamily::CliqueWithPendant => generators::clique_with_pendant(n),
            WorkloadFamily::Hypercube => {
                let d = (n as f64).log2().ceil().max(2.0) as u32;
                generators::hypercube(d)
            }
        }
    }

    /// A human-readable label, e.g. `erdos-renyi(n=500, seed=3)`.
    pub fn label(&self) -> String {
        format!(
            "{}(n={}, seed={})",
            self.family.name(),
            self.target_n,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::stats::is_connected;

    #[test]
    fn every_family_generates_a_connected_graph() {
        for &family in WorkloadFamily::all() {
            let w = Workload::new(family, 120, 42);
            let g = w.generate();
            assert!(
                is_connected(&g),
                "workload {} produced a disconnected graph",
                w.label()
            );
            assert!(g.num_vertices() >= 16, "workload {} too small", w.label());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = Workload::new(WorkloadFamily::ErdosRenyi, 200, 7);
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_vertices(), b.num_vertices());
    }

    #[test]
    fn labels_mention_family_and_size() {
        let w = Workload::new(WorkloadFamily::GridChords, 300, 9);
        let l = w.label();
        assert!(l.contains("grid-chords"));
        assert!(l.contains("300"));
        assert!(l.contains("9"));
        assert_eq!(WorkloadFamily::all().len(), 7);
    }
}
