//! Random graph families with explicit seeds and connectivity repair.

use ftb_graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Add the cheapest possible edges to make `builder`'s graph connected: the
/// components are discovered on the partially built graph and one edge is
/// added between a representative of each component and the previous one.
///
/// This keeps the asymptotic edge count unchanged while guaranteeing that a
/// single BFS source reaches every vertex.
pub fn connectivity_repair(builder: &mut GraphBuilder) {
    let snapshot = builder.clone().build();
    let (labels, count) = ftb_graph::stats::connected_components(&snapshot);
    if count <= 1 {
        return;
    }
    let mut representative: Vec<Option<VertexId>> = vec![None; count];
    for v in snapshot.vertices() {
        let c = labels[v.index()] as usize;
        if representative[c].is_none() {
            representative[c] = Some(v);
        }
    }
    let reps: Vec<VertexId> = representative.into_iter().flatten().collect();
    for pair in reps.windows(2) {
        builder.add_edge(pair[0], pair[1]);
    }
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`. The result is repaired to be connected.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, (p * (n * n) as f64 / 2.0) as usize + n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                builder.add_edge(VertexId::new(i), VertexId::new(j));
            }
        }
    }
    connectivity_repair(&mut builder);
    builder.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform random edges (or as
/// many as fit), repaired to be connected.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n * n.saturating_sub(1) / 2;
    let target = m.min(max_edges);
    let mut builder = GraphBuilder::with_capacity(n, target + n);
    let mut attempts = 0usize;
    while builder.num_edges() < target && attempts < 20 * target + 100 {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        builder.add_edge(VertexId::new(a), VertexId::new(b));
        attempts += 1;
    }
    connectivity_repair(&mut builder);
    builder.build()
}

/// A layered random graph: `layers` layers of `width` vertices each, plus a
/// dedicated source vertex `0` connected to every vertex of the first layer.
/// Each vertex of layer `i` gets `degree` random neighbours in layer `i - 1`
/// and (with probability `intra_p`) a few neighbours inside its own layer.
///
/// The BFS tree of this family has depth exactly `layers`, which makes the
/// number of (vertex, failing-edge) pairs — and hence the amount of work the
/// FT-BFS construction has to do — directly controllable.
pub fn layered_random(
    layers: usize,
    width: usize,
    degree: usize,
    intra_p: f64,
    seed: u64,
) -> Graph {
    assert!(layers >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1 + layers * width;
    let mut builder = GraphBuilder::with_capacity(n, n * (degree + 1));
    let vertex = |layer: usize, slot: usize| VertexId::new(1 + layer * width + slot);
    // source to first layer
    for s in 0..width {
        builder.add_edge(VertexId(0), vertex(0, s));
    }
    for layer in 1..layers {
        for slot in 0..width {
            let v = vertex(layer, slot);
            let d = degree.clamp(1, width);
            let mut prev_slots: Vec<usize> = (0..width).collect();
            prev_slots.shuffle(&mut rng);
            for &ps in prev_slots.iter().take(d) {
                builder.add_edge(v, vertex(layer - 1, ps));
            }
            if width > 1 && rng.random_bool(intra_p.clamp(0.0, 1.0)) {
                let other = (slot + 1 + rng.random_range(0..width - 1)) % width;
                builder.add_edge(v, vertex(layer, other));
            }
        }
    }
    connectivity_repair(&mut builder);
    builder.build()
}

/// Preferential attachment ("Barabási–Albert style"): vertices arrive one by
/// one and attach `attach` edges to existing vertices chosen proportionally
/// to their current degree (plus one).
pub fn preferential_attachment(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let attach = attach.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * attach);
    // endpoint pool: every accepted edge pushes both endpoints, biasing
    // sampling towards high-degree vertices.
    let mut pool: Vec<VertexId> = vec![VertexId(0), VertexId(1)];
    builder.add_edge(VertexId(0), VertexId(1));
    for i in 2..n {
        let v = VertexId::new(i);
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < attach.min(i) && guard < 50 * attach {
            let target = if rng.random_bool(0.1) {
                VertexId::new(rng.random_range(0..i))
            } else {
                pool[rng.random_range(0..pool.len())]
            };
            if builder.add_edge(v, target) {
                pool.push(v);
                pool.push(target);
                added += 1;
            }
            guard += 1;
        }
    }
    connectivity_repair(&mut builder);
    builder.build()
}

/// A `rows × cols` grid with `chords` extra uniformly random long-range
/// edges; a "small-world" style workload whose BFS tree is shallow but whose
/// replacement paths are long.
pub fn random_geometric_grid(rows: usize, cols: usize, chords: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut builder = GraphBuilder::with_capacity(n, 2 * n + chords);
    let idx = |r: usize, c: usize| VertexId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                builder.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    for _ in 0..chords {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        builder.add_edge(VertexId::new(a), VertexId::new(b));
    }
    connectivity_repair(&mut builder);
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::stats::is_connected;

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let a = erdos_renyi_gnp(80, 0.05, 1);
        let b = erdos_renyi_gnp(80, 0.05, 1);
        let c = erdos_renyi_gnp(80, 0.05, 2);
        assert!(is_connected(&a));
        assert_eq!(a.num_edges(), b.num_edges());
        // different seeds almost surely differ
        assert!(
            a.num_edges() != c.num_edges() || {
                let ea: Vec<_> = a.edges().map(|(_, e)| (e.u.0, e.v.0)).collect();
                let ec: Vec<_> = c.edges().map(|(_, e)| (e.u.0, e.v.0)).collect();
                ea != ec
            }
        );
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_gnp(20, 0.0, 3);
        // repair turns the empty graph into a tree-ish chain of components
        assert!(is_connected(&empty));
        assert_eq!(empty.num_edges(), 19);
        let full = erdos_renyi_gnp(12, 1.0, 3);
        assert_eq!(full.num_edges(), 12 * 11 / 2);
    }

    #[test]
    fn gnm_hits_the_requested_edge_count() {
        let g = erdos_renyi_gnm(50, 200, 7);
        assert!(is_connected(&g));
        assert!(g.num_edges() >= 200);
        assert!(g.num_edges() <= 200 + 50);
        // requesting more edges than possible saturates
        let g2 = erdos_renyi_gnm(8, 1000, 7);
        assert_eq!(g2.num_edges(), 28);
    }

    #[test]
    fn layered_random_has_prescribed_depth() {
        let layers = 7;
        let g = layered_random(layers, 12, 3, 0.3, 11);
        assert!(is_connected(&g));
        let d = ftb_sp::bfs_distances(&g, VertexId(0));
        let max = *d.iter().max().unwrap();
        assert_eq!(max as usize, layers);
        assert_eq!(g.num_vertices(), 1 + layers * 12);
    }

    #[test]
    fn preferential_attachment_has_a_hub() {
        let g = preferential_attachment(300, 2, 13);
        assert!(is_connected(&g));
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 3.0 * avg,
            "expected a hub: max {max_deg} vs avg {avg}"
        );
    }

    #[test]
    fn geometric_grid_adds_chords() {
        let plain = random_geometric_grid(10, 10, 0, 5);
        let chorded = random_geometric_grid(10, 10, 40, 5);
        assert!(is_connected(&chorded));
        assert!(chorded.num_edges() > plain.num_edges());
    }

    #[test]
    fn connectivity_repair_links_components() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(2), VertexId(3));
        b.add_edge(VertexId(4), VertexId(5));
        connectivity_repair(&mut b);
        let g = b.build();
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 5);
    }
}
