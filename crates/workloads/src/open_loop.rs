//! Open-loop arrival schedules for load generation.
//!
//! An *open-loop* load generator decides request send times **before** the
//! run, from an arrival process and a target rate, and never lets server
//! slowness delay later sends. This is the methodology that exposes tail
//! latency honestly: a closed-loop client (send, wait, send) implicitly
//! throttles itself to the server's pace and hides queueing delay, which is
//! precisely the quantity a saturation study is after.
//!
//! Schedules are deterministic: the same `(process, rate, count, seed)`
//! yields the same offsets, so a run is reproducible and the server/client
//! pair can regenerate identical workloads independently.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Duration;

/// The inter-arrival distribution of an open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Constant spacing `1/rate` — an idealised, burst-free arrival stream.
    /// Useful to isolate server-side variance from arrival variance.
    Fixed,
    /// Exponentially distributed inter-arrival gaps (a Poisson process) —
    /// the standard model of independent clients, with natural bursts that
    /// probe queueing behaviour near saturation.
    Poisson,
}

impl ArrivalProcess {
    /// All processes, for sweeps and CLI parsing.
    pub fn all() -> &'static [ArrivalProcess] {
        &[ArrivalProcess::Fixed, ArrivalProcess::Poisson]
    }

    /// Stable lowercase name (CLI value and table label).
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Fixed => "fixed",
            ArrivalProcess::Poisson => "poisson",
        }
    }

    /// Parse a name produced by [`ArrivalProcess::name`].
    pub fn parse(s: &str) -> Option<ArrivalProcess> {
        ArrivalProcess::all()
            .iter()
            .copied()
            .find(|p| p.name() == s)
    }
}

/// A precomputed open-loop schedule: monotone non-decreasing send offsets
/// from the run's start instant.
#[derive(Clone, Debug)]
pub struct ArrivalSchedule {
    offsets: Vec<Duration>,
}

impl ArrivalSchedule {
    /// Generate `count` send offsets at `rate` requests/second.
    ///
    /// The first request is scheduled at offset 0 for `Fixed` (then every
    /// `1/rate`), and after one exponential gap for `Poisson`. Offsets are
    /// monotone non-decreasing by construction.
    ///
    /// # Panics
    /// Panics if `rate` is not finite and positive.
    pub fn generate(process: ArrivalProcess, rate: f64, count: usize, seed: u64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        let gap = 1.0 / rate;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(count);
        let mut t = 0.0f64;
        for i in 0..count {
            match process {
                ArrivalProcess::Fixed => t = gap * i as f64,
                ArrivalProcess::Poisson => {
                    // Inverse-CDF sample of Exp(rate); 1-u keeps ln's
                    // argument in (0, 1] so the gap is finite.
                    let u: f64 = rng.random_range(0.0..1.0);
                    t += -gap * (1.0 - u).ln();
                }
            }
            offsets.push(Duration::from_secs_f64(t));
        }
        ArrivalSchedule { offsets }
    }

    /// The send offsets, from the run's start instant.
    pub fn offsets(&self) -> &[Duration] {
        &self.offsets
    }

    /// Number of scheduled sends.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` when the schedule holds no sends.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Total span of the schedule (offset of the last send; zero if empty).
    pub fn span(&self) -> Duration {
        self.offsets.last().copied().unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_is_evenly_spaced() {
        let s = ArrivalSchedule::generate(ArrivalProcess::Fixed, 1000.0, 5, 1);
        let offs = s.offsets();
        assert_eq!(offs.len(), 5);
        assert_eq!(offs[0], Duration::ZERO);
        for (i, &o) in offs.iter().enumerate() {
            let expected = Duration::from_micros(1000 * i as u64);
            let err = o.abs_diff(expected);
            assert!(err < Duration::from_nanos(100), "offset {i}: {o:?}");
        }
        assert_eq!(s.span(), *offs.last().unwrap());
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let a = ArrivalSchedule::generate(ArrivalProcess::Poisson, 500.0, 200, 42);
        let b = ArrivalSchedule::generate(ArrivalProcess::Poisson, 500.0, 200, 42);
        assert_eq!(a.offsets(), b.offsets());
        let c = ArrivalSchedule::generate(ArrivalProcess::Poisson, 500.0, 200, 43);
        assert_ne!(a.offsets(), c.offsets(), "different seed, same stream");
    }

    #[test]
    fn offsets_are_monotone() {
        for &p in ArrivalProcess::all() {
            let s = ArrivalSchedule::generate(p, 2000.0, 1000, 7);
            for w in s.offsets().windows(2) {
                assert!(w[0] <= w[1], "{}: offsets went backwards", p.name());
            }
        }
    }

    #[test]
    fn poisson_mean_gap_approximates_one_over_rate() {
        let rate = 1000.0;
        let count = 20_000;
        let s = ArrivalSchedule::generate(ArrivalProcess::Poisson, rate, count, 11);
        // Mean inter-arrival gap over many samples concentrates on 1/rate.
        let mean_gap = s.span().as_secs_f64() / count as f64;
        let expected = 1.0 / rate;
        assert!(
            (mean_gap - expected).abs() < expected * 0.05,
            "mean gap {mean_gap} vs expected {expected}"
        );
    }

    #[test]
    fn empty_schedule_is_well_behaved() {
        let s = ArrivalSchedule::generate(ArrivalProcess::Fixed, 10.0, 0, 0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.span(), Duration::ZERO);
    }

    #[test]
    fn process_names_round_trip() {
        for &p in ArrivalProcess::all() {
            assert_eq!(ArrivalProcess::parse(p.name()), Some(p));
        }
        assert_eq!(ArrivalProcess::parse("bursty"), None);
    }
}
