//! Experiment harness utilities: table formatting, sweeps, slope estimation.
//!
//! Each experiment of `EXPERIMENTS.md` is a binary under `src/bin/` that
//! prints a Markdown table of measured values next to the paper's predicted
//! shape; this crate holds the shared plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod table;

pub use stats::{median, percentile, LatencyHistogram, LatencySummary};
pub use table::Table;

/// Least-squares slope of `log(y)` against `log(x)` — the measured exponent
/// of a power-law relationship `y ≈ c · x^slope`.
///
/// Returns `None` when fewer than two valid (positive) points are provided.
pub fn log_log_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Geometric mean of a slice of positive values (0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().filter(|v| **v > 0.0).map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_an_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..10)
            .map(|i| {
                let x = i as f64 * 100.0;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        let slope = log_log_slope(&pts).unwrap();
        assert!((slope - 1.5).abs() < 1e-9);
    }

    #[test]
    fn slope_handles_degenerate_inputs() {
        assert!(log_log_slope(&[]).is_none());
        assert!(log_log_slope(&[(10.0, 5.0)]).is_none());
        assert!(log_log_slope(&[(10.0, 5.0), (10.0, 7.0)]).is_none());
        assert!(log_log_slope(&[(0.0, 5.0), (-1.0, 7.0)]).is_none());
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-9);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-9);
    }
}
