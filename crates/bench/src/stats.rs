//! Shared latency statistics: exact percentiles over small sample sets and
//! a compact log-bucketed histogram for open-loop load generation, where
//! millions of samples arrive and the *tail* (p99/p999), not the mean, is
//! the number that matters.

/// Nearest-rank percentile of an **ascending-sorted** slice: the smallest
/// element with at least `q·len` elements ≤ it (`q` in `[0, 1]`).
///
/// Panics on an empty slice — an experiment asking for a percentile of
/// nothing is a bug, not a value.
pub fn percentile<T: Copy>(sorted: &[T], q: f64) -> T {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Median via [`percentile`] (nearest-rank, so always an actual sample).
pub fn median<T: Copy>(sorted: &[T]) -> T {
    percentile(sorted, 0.5)
}

/// Exact latency summary of a sample set: the percentiles production tail
/// dashboards report, computed by sorting the (copied) samples.
///
/// For unbounded streams prefer [`LatencyHistogram`]; this type is for
/// experiment harnesses with a few thousand repeats at most.
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (p50).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarise `samples` (any order; an internal copy is sorted).
    ///
    /// Panics on an empty slice, like [`percentile`].
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of an empty sample set");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        LatencySummary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile(&sorted, 0.50),
            p99: percentile(&sorted, 0.99),
            p999: percentile(&sorted, 0.999),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// A compact log-bucketed latency histogram over `u64` values (nanoseconds
/// by convention): constant memory regardless of sample count, `O(1)`
/// record, ≈3% relative value error — the standard shape for tail-latency
/// reporting under open-loop load, where storing every sample would make
/// the load generator the bottleneck.
///
/// The bucket layout is [`ftb_obs::buckets`] — the same cells the serving
/// stack's atomic [`ftb_obs::Histogram`] uses, so loadgen-side and
/// server-side distributions line up bucket-for-bucket. Quantile lookups
/// report the bucket's **upper bound**, so reported tail values never
/// understate the truth.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u128,
}

impl LatencyHistogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // One sub-bucket array per possible bucket exponent.
        LatencyHistogram {
            counts: vec![0; ftb_obs::buckets::NUM_CELLS],
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Index of the (bucket, sub-bucket) cell holding `value`.
    fn index(value: u64) -> usize {
        ftb_obs::buckets::index(value)
    }

    /// Upper bound (inclusive) of the values mapping to cell `index`.
    fn upper_bound(index: usize) -> u64 {
        ftb_obs::buckets::upper_bound(index)
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Fold another histogram into this one (per-thread recording, merged
    /// at report time).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact sum, 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The value at quantile `q` (in `[0, 1]`): the upper bound of the
    /// first cell whose cumulative count reaches `q·total` — within ≈3% of
    /// the exact nearest-rank sample, never below it. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The exact max is tracked; never report past it.
                return Self::upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_obs::buckets::SUB_BUCKETS;

    #[test]
    fn nearest_rank_percentiles_are_actual_samples() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.5), 50);
        assert_eq!(median(&sorted), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[42.0], 0.999), 42.0);
    }

    #[test]
    fn summary_matches_hand_computed_values() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50, 500.0);
        assert_eq!(s.p99, 990.0);
        assert_eq!(s.p999, 999.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.value_at_quantile(0.5), (SUB_BUCKETS / 2 - 1) as u64);
        assert_eq!(h.value_at_quantile(1.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles_within_resolution() {
        // A skewed distribution: mostly fast, a heavy tail.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fast = 10_000 + (x >> 50);
            samples.push(if i % 100 == 0 { fast * 50 } else { fast });
        }
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = percentile(&samples, q) as f64;
            let approx = h.value_at_quantile(q) as f64;
            assert!(
                approx >= exact && approx <= exact * 1.04,
                "q={q}: exact {exact}, histogram {approx}"
            );
        }
        assert_eq!(h.max(), *samples.last().unwrap());
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn histogram_merge_equals_single_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 100_000;
            whole.record(v);
            if i % 2 == 0 { &mut a } else { &mut b }.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.99, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q));
        }
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.value_at_quantile(0.25), 0);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    }

    #[test]
    fn upper_bounds_are_monotone_and_contain_their_values() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            100,
            1023,
            1024,
            4096,
            1 << 20,
            (1 << 40) + 12345,
        ];
        for &v in &probes {
            let i = LatencyHistogram::index(v);
            assert!(
                LatencyHistogram::upper_bound(i) >= v,
                "upper bound below its own value at {v}"
            );
            if i > 0 {
                assert!(LatencyHistogram::upper_bound(i - 1) < LatencyHistogram::upper_bound(i));
            }
        }
    }
}
