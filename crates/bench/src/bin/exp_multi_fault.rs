//! Experiment E9 — multi-fault query serving across scenario families.
//!
//! Exercises the generalised fault model end to end: for each
//! [`FaultScenario`] (random edge sets, mixed edge+vertex sets, correlated
//! vertex outages, faults concentrated on the BFS tree) and `f ∈ {1, 2}`,
//! a batch of `(vertex, fault set)` queries is answered serially and
//! sharded, timed, and the per-scenario BFS work is reported — showing how
//! much of each scenario the sparse structure absorbs (fault-free and
//! structure-BFS answers) versus recomputed full-graph rows. A small
//! instance is additionally cross-checked against brute-force BFS over
//! every fault set of size ≤ 2.

use ftb_bench::Table;
use ftb_core::{
    cross_check_fault_sets, EngineCore, EngineOptions, FaultQueryEngine, Sources, StructureBuilder,
    TradeoffBuilder,
};
use ftb_graph::{enumerate_fault_sets, FaultSet, VertexId};
use ftb_par::ParallelConfig;
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::time::Instant;

fn main() {
    let seed = 9u64;
    let source = VertexId(0);

    // Correctness first: on a small instance, every fault set of size ≤ 2
    // must match brute-force BFS over the masked graph.
    let small = Workload::new(WorkloadFamily::GridChords, 36, seed).generate();
    let small_structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(seed).serial())
        .build(&small, &Sources::single(source))
        .expect("workload graphs with source 0 are valid input");
    let small_core =
        EngineCore::build(&small, small_structure).expect("structure matches its graph");
    let sets = enumerate_fault_sets(&small, 2);
    let mismatches = cross_check_fault_sets(&small_core, &sets, &ParallelConfig::default())
        .expect("enumerated sets are in range and within the cap");
    assert!(
        mismatches.is_empty(),
        "engine diverged from brute force: {:?}",
        mismatches.first()
    );
    println!(
        "cross-check: {} fault sets (|F| <= 2) on n={} m={}: all exact\n",
        sets.len(),
        small.num_vertices(),
        small.num_edges()
    );

    // Throughput: a mid-size workload, one batch per scenario and f.
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 1200, seed);
    let graph = workload.generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(seed).serial())
        .build(&graph, &Sources::single(source))
        .expect("workload graphs with source 0 are valid input");
    println!(
        "workload {}: n = {}, m = {}, |E(H)| = {} ({} reinforced)",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges(),
        structure.num_edges(),
        structure.num_reinforced(),
    );

    let stride = (graph.num_vertices() / 24).max(1);
    let mut table = Table::new(
        "E9: multi-fault serving (serial vs 4-thread sharded)",
        &[
            "scenario",
            "f",
            "queries",
            "serial ms",
            "sharded ms",
            "speedup",
            "tier row",
            "tier fast",
            "tier H",
            "tier H+",
            "tier G",
            "identical",
        ],
    );
    for &scenario in FaultScenario::all() {
        for f in [1usize, 2] {
            let fault_sets = scenario.generate(&graph, source, f, 96, seed);
            let queries: Vec<(VertexId, FaultSet)> = fault_sets
                .iter()
                .flat_map(|fs| {
                    (0..graph.num_vertices())
                        .step_by(stride)
                        .map(move |v| (VertexId::new(v), fs.clone()))
                })
                .collect();

            let run = |options: EngineOptions| {
                let mut engine = FaultQueryEngine::with_options(&graph, structure.clone(), options)
                    .expect("matching graph");
                // Warm-up pass (first touch pays page faults), then the
                // timed pass; report the timed pass's counter increments.
                let _ = engine.query_many_faults(&queries).expect("in range");
                let warm = engine.query_stats();
                let t = Instant::now();
                let results = engine.query_many_faults(&queries).expect("in range");
                let ms = t.elapsed().as_secs_f64() * 1e3;
                let delta = engine.query_stats().delta_since(&warm);
                (results, ms, delta)
            };

            let (reference, serial_ms, stats) = run(EngineOptions::new().serial());
            let (sharded, sharded_ms, _) =
                run(EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)));
            let identical = sharded == reference;
            assert!(identical, "{}: sharded diverged", scenario.name());
            assert_eq!(
                stats.tiers.total(),
                queries.len(),
                "tiers must sum to queries"
            );
            table.add_row(vec![
                scenario.name().to_string(),
                f.to_string(),
                queries.len().to_string(),
                format!("{serial_ms:.1}"),
                format!("{sharded_ms:.1}"),
                format!("{:.2}x", serial_ms / sharded_ms),
                stats.tiers.fault_free_row.to_string(),
                stats.tiers.unaffected_fast_path.to_string(),
                stats.tiers.sparse_h_bfs.to_string(),
                stats.tiers.augmented_bfs.to_string(),
                stats.tiers.full_graph_bfs.to_string(),
                identical.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nReading guide: the `tier` columns are the per-tier answering \
         counters — `row` queries read the preprocessed fault-free rows, \
         `fast` is the unaffected-target fast path (the fault touches the \
         structure but provably not the target's tree path, so the \
         fault-free row answers with no search), \
         `H` uses the sparse structure (single non-reinforced edge faults), \
         `H+` the augmented structure (zero here: this engine is built \
         without augmentation — see exp_ftbfs_augment), and `G` is the \
         exact full-graph recomputation. tree-concentrated at f=1 maximises \
         the H tier; vertex and multi-fault scenarios shift work to G."
    );
}
