//! Experiment E3 — the Theorem 5.1 lower bound.
//!
//! For the hard instance `G(ε)`, reports (a) the certified number of forced
//! backup edges under the theorem's reinforcement budget `⌊n^{1-ε}/6⌋`,
//! (b) the empirical forcing check, and (c) the size of the structure our own
//! construction builds, which must dominate the certified bound computed from
//! its actual reinforcement count.

use ftb_bench::{log_log_slope, Table};
use ftb_core::{build_structure, BuildConfig, BuildPlan, Sources};
use ftb_lower_bounds::{certified_backup_lower_bound, single_source_lower_bound, verify_forcing};

fn main() {
    let seed = 3u64;
    let config = BuildConfig::new(0.0).with_seed(seed);

    // (a) eps sweep at fixed n.
    let n = 900usize;
    let mut table = Table::new(
        &format!("E3a: forced backup edges on G(eps), target n = {n}"),
        &[
            "eps",
            "real n",
            "|Pi|",
            "budget",
            "certified lower bound",
            "constructed b",
            "constructed r",
            "forcing confirmed",
        ],
    );
    for &eps in &[0.15, 0.25, 0.35, 0.45] {
        let lb = single_source_lower_bound(n, eps);
        let budget = lb.reinforcement_budget();
        let certified = certified_backup_lower_bound(&lb, budget);
        let forcing = verify_forcing(&lb, 30);
        let s = build_structure(
            &lb.graph,
            &Sources::single(lb.source),
            BuildPlan::Tradeoff { eps },
            &config,
        )
        .expect("the lower-bound instance is valid input");
        table.add_row(vec![
            format!("{eps:.2}"),
            lb.graph.num_vertices().to_string(),
            lb.num_pi_edges().to_string(),
            budget.to_string(),
            certified.to_string(),
            s.num_backup().to_string(),
            s.num_reinforced().to_string(),
            format!("{}/{}", forcing.confirmed, forcing.samples),
        ]);
    }
    table.print();

    // (b) n sweep at fixed eps: the certified bound should scale like n^{1+eps}.
    let eps = 0.3;
    let mut points = Vec::new();
    let mut table = Table::new(
        &format!("E3b: certified bound scaling with n (eps = {eps}, zero reinforcement)"),
        &["target n", "real n", "certified lower bound", "n^(1+eps)"],
    );
    for &target in &[300usize, 600, 1200, 2400] {
        let lb = single_source_lower_bound(target, eps);
        let certified = certified_backup_lower_bound(&lb, 0);
        let real_n = lb.graph.num_vertices() as f64;
        points.push((real_n, certified as f64));
        table.add_row(vec![
            target.to_string(),
            lb.graph.num_vertices().to_string(),
            certified.to_string(),
            format!("{:.0}", real_n.powf(1.0 + eps)),
        ]);
    }
    table.print();
    println!(
        "fitted exponent of the certified bound: {:.3} (paper: 1 + eps = {:.2})",
        log_log_slope(&points).unwrap_or(f64::NAN),
        1.0 + eps
    );
}
