//! Experiment E6 — the introductory clique-with-pendant example.
//!
//! One reinforced edge (the pendant bottleneck) plus a thin backup structure
//! beats both extremes: keeping every clique edge, or the pure-backup ESA'13
//! structure.

use ftb_bench::Table;
use ftb_core::{BaselineBuilder, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{generators, VertexId};

fn main() {
    let mixed_builder = TradeoffBuilder::new(0.2).with_config(|c| c.with_seed(6));
    let baseline_builder = BaselineBuilder::new().with_config(|c| c.with_seed(6));
    let mut table = Table::new(
        "E6: clique-with-pendant — mixed model vs extremes",
        &[
            "n",
            "graph edges",
            "mixed backup",
            "mixed reinforced",
            "baseline (pure backup)",
            "mixed / keep-everything",
        ],
    );
    for &n in &[50usize, 100, 200, 400] {
        let graph = generators::clique_with_pendant(n);
        let sources = Sources::single(VertexId(0));
        let mixed = mixed_builder
            .build(&graph, &sources)
            .expect("the intro example is valid input");
        let baseline = baseline_builder
            .build(&graph, &sources)
            .expect("the intro example is valid input");
        table.add_row(vec![
            n.to_string(),
            graph.num_edges().to_string(),
            mixed.num_backup().to_string(),
            mixed.num_reinforced().to_string(),
            baseline.num_edges().to_string(),
            format!(
                "{:.1}%",
                100.0 * mixed.num_edges() as f64 / graph.num_edges() as f64
            ),
        ]);
    }
    table.print();
    println!("\nExpected shape: the mixed structure keeps only a vanishing fraction of the clique");
    println!("while reinforcing a constant number of edges; the pure-backup baseline needs a");
    println!("larger (n^1.5-ish) structure on hard inputs and the keep-everything policy needs");
    println!("all Θ(n²) clique edges.");
}
