//! Experiment E13 — persistent engine snapshots: load scales with the
//! file, not with the build.
//!
//! The deployment claim behind `ftb-build` / `ftb-serve --snapshot` is
//! that restoring an engine costs one bulk pass over a flat file, while
//! building one costs the full Parter–Peleg preprocessing — so the gap
//! *widens* with `n`. Per size this measures, through the real file
//! system (write to a temp file, read it back):
//!
//! * `build ms` — structure construction + engine assembly;
//! * `save ms` / `bytes` — serializing and persisting the snapshot;
//! * `load ms` / `MB/s` — restoring a ready-to-serve engine, all
//!   revalidation passes included, with the decode throughput showing
//!   the cost tracks the byte count;
//! * `build/load` — the restart speedup a snapshot buys at that size.
//!
//! Loaded engines are spot-checked answer-identical before timing is
//! trusted (a fast wrong load would be worse than a slow right one).

use ftb_bench::Table;
use ftb_core::{EngineCore, EngineOptions, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{EdgeId, FaultSet, VertexId};
use ftb_workloads::{Workload, WorkloadFamily};
use std::time::Instant;

fn main() {
    let seed = 21u64;
    let source = VertexId(0);
    let mut table = Table::new(
        "E13 — snapshot save/load vs rebuild (erdos-renyi, eps = 0.3)",
        &[
            "n",
            "m",
            "build ms",
            "save ms",
            "bytes",
            "load ms",
            "MB/s",
            "build/load",
        ],
    );

    let dir = std::env::temp_dir();
    for &n in &[200usize, 400, 800, 1600] {
        let graph = Workload::new(WorkloadFamily::ErdosRenyi, n, seed).generate();

        let build_start = Instant::now();
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(seed).serial())
            .build(&graph, &Sources::single(source))
            .expect("valid input");
        let core = EngineCore::build_with(&graph, structure, EngineOptions::new().serial())
            .expect("matching graph");
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        let path = dir.join(format!("ftbfs-exp-snapshot-{n}.ftbsnap"));
        let save_start = Instant::now();
        let bytes = core.write_snapshot(b"exp_snapshot");
        std::fs::write(&path, &bytes).expect("temp dir is writable");
        let save_ms = save_start.elapsed().as_secs_f64() * 1e3;

        let load_start = Instant::now();
        let read = std::fs::read(&path).expect("snapshot readable");
        let (restored, _note) = EngineCore::read_snapshot(&read, EngineOptions::new().serial())
            .expect("own snapshot loads");
        let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
        let _ = std::fs::remove_file(&path);

        // Spot-check before trusting the timing: a handful of faulted
        // distances must match the freshly built engine exactly.
        let mut ctx_a = core.new_context();
        let mut ctx_b = restored.new_context();
        for i in 0..5u32 {
            let faults = FaultSet::from(EdgeId(i * (graph.num_edges() as u32 / 7).max(1)));
            let target = VertexId((n as u32 / 3).saturating_add(i) % n as u32);
            let a = ctx_a
                .dist_after_faults_from(&core, source, target, &faults)
                .expect("in range");
            let b = ctx_b
                .dist_after_faults_from(&restored, source, target, &faults)
                .expect("in range");
            assert_eq!(a, b, "restored engine answers differ at n={n}");
        }

        let mb = bytes.len() as f64 / (1024.0 * 1024.0);
        table.add_row(vec![
            n.to_string(),
            graph.num_edges().to_string(),
            format!("{build_ms:.1}"),
            format!("{save_ms:.2}"),
            bytes.len().to_string(),
            format!("{load_ms:.2}"),
            format!("{:.0}", mb / (load_ms / 1e3)),
            format!("{:.0}x", build_ms / load_ms.max(1e-6)),
        ]);
    }
    table.print();
}
