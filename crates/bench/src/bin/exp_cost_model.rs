//! Experiment E4 — the cost-model corollary.
//!
//! For several price ratios `R/B`, sweeps ε, prices the constructed
//! structures and compares the measured cheapest ε against the paper's
//! closed-form suggestion `ε ≈ log(R/B) / (2 log n)` (clamped to `[0, 1/2]`).

use ftb_bench::Table;
use ftb_core::{build_structure, BuildConfig, BuildPlan, CostModel, Sources};
use ftb_graph::VertexId;
use ftb_workloads::{Workload, WorkloadFamily};

fn main() {
    let workload = Workload::new(WorkloadFamily::LayeredDeep, 500, 4);
    let graph = workload.generate();
    let sources = Sources::single(VertexId(0));
    let n = graph.num_vertices();
    let eps_grid = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let config = BuildConfig::new(0.0).with_seed(4);
    println!(
        "workload {}: n = {n}, m = {}",
        workload.label(),
        graph.num_edges()
    );

    // Pre-build one structure per grid point (prices only change the scoring).
    let structures: Vec<_> = eps_grid
        .iter()
        .map(|&eps| {
            let s = build_structure(&graph, &sources, BuildPlan::Tradeoff { eps }, &config)
                .expect("workload graphs with source 0 are valid input");
            (eps, s)
        })
        .collect();

    let mut table = Table::new(
        "E4: measured cheapest eps vs the closed-form suggestion",
        &[
            "R/B",
            "suggested eps",
            "measured best eps",
            "best cost",
            "cost at eps=0",
            "cost at eps=0.5",
        ],
    );
    for ratio in [1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
        let prices = CostModel::new(1.0, ratio);
        let suggested = prices.optimal_eps(n);
        let mut best = (0.0f64, f64::INFINITY);
        let cost_at = |target: f64| -> f64 {
            structures
                .iter()
                .find(|(eps, _)| (*eps - target).abs() < 1e-9)
                .map(|(_, s)| prices.cost_of(s))
                .unwrap_or(f64::NAN)
        };
        for (eps, s) in &structures {
            let c = prices.cost_of(s);
            if c < best.1 {
                best = (*eps, c);
            }
        }
        table.add_row(vec![
            format!("{ratio:.0}"),
            format!("{suggested:.3}"),
            format!("{:.2}", best.0),
            format!("{:.0}", best.1),
            format!("{:.0}", cost_at(0.0)),
            format!("{:.0}", cost_at(0.5)),
        ]);
    }
    table.print();
    println!("\nExpected shape: the measured best eps tracks the suggestion — ~0 for R/B = 1 and");
    println!("rising towards 1/2 as reinforcement becomes relatively more expensive.");
}
