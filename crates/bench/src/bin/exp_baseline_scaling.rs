//! Experiment E2 — the ε = 1 extreme: baseline FT-BFS size scaling.
//!
//! Measures the ESA'13 baseline structure size as a function of `n` on the
//! hard (lower-bound) family and on sparse random graphs, and reports the
//! fitted log-log exponent. On the hard family the exponent should approach
//! 3/2; sparse random graphs are easy instances and stay near 1.

use ftb_bench::{log_log_slope, Table};
use ftb_core::{BaselineBuilder, Sources, StructureBuilder};
use ftb_graph::VertexId;
use ftb_lower_bounds::esa13_lower_bound;
use ftb_workloads::families;

fn main() {
    let sizes = [200usize, 400, 800, 1600];
    let seed = 2u64;
    let builder = BaselineBuilder::new().with_config(|c| c.with_seed(seed));

    // Hard instances.
    let mut hard_points = Vec::new();
    let mut table = Table::new(
        "E2a: baseline FT-BFS size on the ESA'13 lower-bound family",
        &["n", "m", "baseline |E(H)|", "n^1.5"],
    );
    for &n in &sizes {
        let lb = esa13_lower_bound(n);
        let s = builder
            .build(&lb.graph, &Sources::single(lb.source))
            .expect("the lower-bound instance is valid input");
        let real_n = lb.graph.num_vertices() as f64;
        hard_points.push((real_n, s.num_edges() as f64));
        table.add_row(vec![
            lb.graph.num_vertices().to_string(),
            lb.graph.num_edges().to_string(),
            s.num_edges().to_string(),
            format!("{:.0}", real_n.powf(1.5)),
        ]);
    }
    table.print();
    println!(
        "fitted exponent on the hard family: {:.3} (paper: 1.5)",
        log_log_slope(&hard_points).unwrap_or(f64::NAN)
    );

    // Easy instances: sparse random graphs.
    let mut easy_points = Vec::new();
    let mut table = Table::new(
        "E2b: baseline FT-BFS size on sparse Erdős–Rényi graphs (avg degree 8)",
        &["n", "m", "baseline |E(H)|"],
    );
    for &n in &sizes {
        let graph = families::erdos_renyi_gnp(n, (8.0 / n as f64).min(1.0), seed);
        let s = builder
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("workload graphs with source 0 are valid input");
        easy_points.push((graph.num_vertices() as f64, s.num_edges() as f64));
        table.add_row(vec![
            graph.num_vertices().to_string(),
            graph.num_edges().to_string(),
            s.num_edges().to_string(),
        ]);
    }
    table.print();
    println!(
        "fitted exponent on sparse random graphs: {:.3} (easy instances stay near 1)",
        log_log_slope(&easy_points).unwrap_or(f64::NAN)
    );
}
