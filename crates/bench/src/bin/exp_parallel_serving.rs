//! Experiment E8 — parallel batched fault-query serving.
//!
//! Measures `FaultQueryEngine::query_many` on a ≥10k-query batch as the
//! engine's worker-thread count grows, verifying on the way that every
//! sharded run is byte-identical to the serial reference (the engine's
//! determinism contract). Also exercises the multi-source engine: per-source
//! batches against one shared core.

use ftb_bench::{median, Table};
use ftb_core::{
    EngineOptions, FaultQueryEngine, MultiSourceEngine, Sources, StructureBuilder, TradeoffBuilder,
};
use ftb_graph::{EdgeId, VertexId};
use ftb_par::ParallelConfig;
use ftb_workloads::{Workload, WorkloadFamily};
use std::time::Instant;

/// Timed repetitions per configuration; the median is reported.
const REPS: usize = 3;

fn main() {
    let seed = 8u64;
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 1500, seed);
    let graph = workload.generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(seed).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("workload graphs with source 0 are valid input");
    println!(
        "workload {}: n = {}, m = {}, |E(H)| = {} ({} reinforced), HLD levels = {}",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges(),
        structure.num_edges(),
        structure.num_reinforced(),
        structure.stats().hld_levels,
    );

    // One batch probing every edge of the graph against a spread of target
    // vertices: every distinct structure edge becomes one BFS group, so the
    // batch exposes exactly the work the sharding distributes.
    let stride = (graph.num_vertices() / 8).max(1);
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| {
            (0..graph.num_vertices())
                .step_by(stride)
                .map(move |v| (VertexId::new(v), e))
        })
        .collect();
    assert!(queries.len() >= 10_000, "batch too small to be meaningful");
    println!(
        "batch: {} queries over {} edges\n",
        queries.len(),
        graph.num_edges()
    );

    let run = |parallel: ParallelConfig| {
        let options = EngineOptions::new().with_parallel(parallel);
        let mut engine = FaultQueryEngine::with_options(&graph, structure.clone(), options)
            .expect("matching graph");
        // Warm-up pass (first touch pays page faults), then the median of
        // several timed passes — robust against a one-off scheduler stall;
        // report only one pass's counter increments.
        let _ = engine.query_many(&queries).expect("in range");
        let warm = engine.query_stats();
        let mut samples = Vec::with_capacity(REPS);
        let mut results = Vec::new();
        for _ in 0..REPS {
            let t = Instant::now();
            results = engine.query_many(&queries).expect("in range");
            samples.push(t.elapsed().as_secs_f64() * 1e3);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let total = engine.query_stats();
        let sweeps = ((total.structure_bfs_runs - warm.structure_bfs_runs)
            + (total.full_graph_bfs_runs - warm.full_graph_bfs_runs))
            / REPS;
        (results, median(&samples), sweeps)
    };

    let (reference, serial_ms, _) = run(ParallelConfig::serial());
    let mut table = Table::new(
        &format!("E8: query_many sharding ({} queries)", queries.len()),
        &["threads", "time ms", "speedup", "BFS sweeps", "identical"],
    );
    for threads in [1usize, 2, 4, 8] {
        let config = if threads == 1 {
            ParallelConfig::serial()
        } else {
            ParallelConfig::with_threads(threads)
        };
        let (results, ms, sweeps) = run(config);
        let identical = results == reference;
        assert!(identical, "sharded results diverged at {threads} threads");
        table.add_row(vec![
            threads.to_string(),
            format!("{ms:.1}"),
            format!("{:.2}x", serial_ms / ms),
            sweeps.to_string(),
            identical.to_string(),
        ]);
    }
    table.print();

    // Multi-source serving from one shared core: the same batch shape, but
    // each query names one of the union's sources.
    let sources: Vec<VertexId> = (0..4)
        .map(|i| VertexId::new(i * graph.num_vertices() / 4))
        .collect();
    let mbfs = ftb_core::MultiSourceBuilder::new(0.3)
        .with_config(|c| c.with_seed(seed).serial())
        .build_multi(&graph, &Sources::multi(sources.clone()))
        .expect("workload gateways are valid sources");
    let ms_queries: Vec<(VertexId, VertexId, EdgeId)> = graph
        .edge_ids()
        .enumerate()
        .flat_map(|(i, e)| {
            let s = sources[i % sources.len()];
            (0..graph.num_vertices())
                .step_by(stride * 2)
                .map(move |v| (s, VertexId::new(v), e))
        })
        .collect();
    let run_multi = |parallel: ParallelConfig| {
        let options = EngineOptions::new().with_parallel(parallel);
        let mut engine =
            MultiSourceEngine::with_options(&graph, mbfs.clone(), options).expect("matching graph");
        let _ = engine.query_many(&ms_queries).expect("in range");
        let mut samples = Vec::with_capacity(REPS);
        let mut results = Vec::new();
        for _ in 0..REPS {
            let t = Instant::now();
            results = engine.query_many(&ms_queries).expect("in range");
            samples.push(t.elapsed().as_secs_f64() * 1e3);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (results, median(&samples))
    };
    let (ms_reference, ms_serial) = run_multi(ParallelConfig::serial());
    let mut table = Table::new(
        &format!(
            "E8b: multi-source query_many, {} sources ({} queries)",
            sources.len(),
            ms_queries.len()
        ),
        &["threads", "time ms", "speedup", "identical"],
    );
    for threads in [1usize, 4] {
        let config = if threads == 1 {
            ParallelConfig::serial()
        } else {
            ParallelConfig::with_threads(threads)
        };
        let (results, ms) = run_multi(config);
        assert_eq!(results, ms_reference, "multi-source sharding diverged");
        table.add_row(vec![
            threads.to_string(),
            format!("{ms:.1}"),
            format!("{:.2}x", ms_serial / ms),
            "true".to_string(),
        ]);
    }
    table.print();

    println!("\nExpected shape: identical results at every width; wall-clock falls as threads");
    println!("grow until the per-batch BFS groups run out (each group is one unit of work).");
}
