//! Experiment E12 — one-to-many serving: amortised row extraction with
//! interval-batched target checks.
//!
//! Two questions, two tables:
//!
//! 1. **E12a — what does batching buy per target shape?** The same
//!    `(fault set, target list)` stream is served by the per-target loop
//!    (`dist_after_faults` once per target, the only shape the engine
//!    offered before `DistMany`) and by the batched entry point
//!    (`dist_many_after_faults`). Sparse frames (t = 16) are dominated by
//!    the interval-batched unaffected classification; dense frames (all
//!    targets) by the single amortised row extraction. The counters
//!    (`batched_unaffected`, `restricted_repairs`, `repaired_rows`) show
//!    where the batched path routed the work. More distinct fault sets
//!    (32) than the LRU holds (8), so fault sets are cache misses — this
//!    measures the miss path, not the cache.
//! 2. **E12b — where is the restricted-sweep crossover?** For fault sets
//!    with a sizeable affected set, the number of *requested* affected
//!    targets `a` is swept from 1 upward. Small `a` should take the
//!    target-restricted repair sweep (terminate once the requested
//!    targets settle, no row retained); large `a` should fall back to the
//!    full row materialisation (pay once, serve every target and later
//!    cache hits). The table reports which path the
//!    `RESTRICTED_SWEEP_RATIO` heuristic chose at each `a` and the time
//!    per fault set, so the crossover band is visible in the timings, not
//!    just asserted.
//!
//! Answers are asserted identical between the two paths throughout.

use ftb_bench::{median, Table};
use ftb_core::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{FaultSet, Graph, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::time::{Duration, Instant};

const SEED: u64 = 21;
const SOURCE: VertexId = VertexId(0);

fn fresh_engine<'g>(
    graph: &'g Graph,
    structure: &ftb_core::FtBfsStructure,
) -> FaultQueryEngine<'g> {
    FaultQueryEngine::with_options(graph, structure.clone(), EngineOptions::new().serial())
        .expect("matching graph")
}

/// Median wall time of `reps` runs of `f`.
fn timed(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    median(&samples)
}

fn main() {
    // One mid-size instance per family. Structure construction is the
    // expensive part of this binary (superlinear in n; ~7 s per family at
    // n = 2000 in release), so the instance size is chosen to keep the
    // whole experiment in tens of seconds, not tens of minutes.
    let families = [WorkloadFamily::ErdosRenyi, WorkloadFamily::LayeredDeep];
    let mut shapes = Table::new(
        "E12a — one-to-many vs per-target loop (n=2000, 32 fault sets per cell, median of 5)",
        &[
            "workload",
            "f",
            "shape",
            "per-target",
            "batched",
            "speedup",
            "unaffected",
            "restricted",
            "rows",
        ],
    );
    let mut crossover: Option<Table> = None;

    for &family in &families {
        let graph = Workload::new(family, 2000, SEED).generate();
        let n = graph.num_vertices();
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(SEED).serial())
            .build(&graph, &Sources::single(SOURCE))
            .expect("valid input");

        let sparse: Vec<VertexId> = (0..16u64)
            .map(|i| VertexId((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as u32))
            .collect();
        let dense: Vec<VertexId> = graph.vertices().collect();

        for f in [1usize, 2] {
            let sets: Vec<FaultSet> = FaultScenario::TreeConcentrated
                .generate(&graph, SOURCE, f, 32, SEED)
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect();
            for (shape, targets) in [("sparse-t16", &sparse), ("dense-all", &dense)] {
                // One engine per side, reused across repeats: 32 distinct
                // fault sets against an 8-row LRU miss on every pass, so
                // the repeats re-measure the miss path without paying the
                // structure clone inside the timed region.
                let mut per_target = fresh_engine(&graph, &structure);
                let mut batched = fresh_engine(&graph, &structure);
                for fs in &sets {
                    let serial: Vec<Option<u32>> = targets
                        .iter()
                        .map(|&v| per_target.dist_after_faults(v, fs).expect("in range"))
                        .collect();
                    let many = batched
                        .dist_many_after_faults(targets, fs)
                        .expect("in range");
                    assert_eq!(many, serial, "batched diverged on {}", family.name());
                }
                let counters_before = batched.query_stats();
                let t_old = timed(5, || {
                    for fs in &sets {
                        for &v in targets {
                            std::hint::black_box(
                                per_target.dist_after_faults(v, fs).expect("in range"),
                            );
                        }
                    }
                });
                let t_new = timed(5, || {
                    for fs in &sets {
                        std::hint::black_box(
                            batched
                                .dist_many_after_faults(targets, fs)
                                .expect("in range"),
                        );
                    }
                });
                // Counter deltas over the 5 timed passes, reported per
                // pass so the row reads as "per replay of the 32 sets".
                let d = batched.query_stats().delta_since(&counters_before);
                shapes.add_row(vec![
                    family.name().to_string(),
                    f.to_string(),
                    shape.to_string(),
                    format!("{t_old:?}"),
                    format!("{t_new:?}"),
                    format!("{:.1}x", t_old.as_secs_f64() / t_new.as_secs_f64()),
                    (d.tiers.batched_unaffected / 5).to_string(),
                    (d.restricted_repairs / 5).to_string(),
                    (d.repaired_rows / 5).to_string(),
                ]);
            }
        }

        // E12b on the first family only: the crossover shape is a property
        // of the engine heuristic, not the workload.
        if crossover.is_some() {
            continue;
        }
        let probe = fresh_engine(&graph, &structure);
        let core = std::sync::Arc::clone(probe.core());
        drop(probe);
        // Pool fault sets across scenarios until enough carry an affected
        // set big enough to sweep; more sets than the LRU holds keeps
        // every measurement on the miss path even when the dense side
        // caches its row.
        let mut dense_sets: Vec<(FaultSet, Vec<VertexId>)> = Vec::new();
        for scenario in [
            FaultScenario::TreeConcentrated,
            FaultScenario::CorrelatedVertices,
            FaultScenario::RandomEdges,
        ] {
            for fs in scenario
                .generate(&graph, SOURCE, 2, 96, SEED)
                .into_iter()
                .filter(|s| !s.is_empty())
            {
                let affected: Vec<VertexId> = graph
                    .vertices()
                    .filter(|&v| !core.is_target_unaffected(SOURCE, v, &fs).expect("in range"))
                    .collect();
                if affected.len() >= 24 {
                    dense_sets.push((fs, affected));
                }
            }
        }
        dense_sets.truncate(12);
        if dense_sets.len() < 9 {
            println!(
                "E12b skipped: only {} {} fault sets produced an affected set >= 24 \
                 (need > LRU capacity)",
                dense_sets.len(),
                family.name()
            );
            continue;
        }
        let mut sizes: Vec<usize> = dense_sets.iter().map(|(_, a)| a.len()).collect();
        sizes.sort_unstable();
        let mut table = Table::new(
            &format!(
                "E12b — restricted-sweep crossover ({}, n={}, {} fault sets, |affected| median {}, median of 5)",
                family.name(),
                n,
                dense_sets.len(),
                median(&sizes),
            ),
            &[
                "a (affected targets)",
                "restricted",
                "rows repaired",
                "sweeps",
                "time/set",
                "time/target",
            ],
        );
        let max_a = sizes[0];
        let mut steps: Vec<usize> = Vec::new();
        let mut a = 1usize;
        while a < max_a {
            steps.push(a);
            a *= 2;
        }
        steps.push(max_a);
        for &a in &steps {
            // Evenly spaced affected targets: the restricted sweep must
            // chase targets across the whole affected region, not one
            // lucky cluster near the boundary.
            let requests: Vec<(&FaultSet, Vec<VertexId>)> = dense_sets
                .iter()
                .map(|(fs, affected)| {
                    let stride = (affected.len() / a).max(1);
                    (
                        fs,
                        affected.iter().copied().step_by(stride).take(a).collect(),
                    )
                })
                .collect();
            let mut engine = fresh_engine(&graph, &structure);
            let before = engine.query_stats();
            let t = timed(5, || {
                for (fs, targets) in &requests {
                    std::hint::black_box(
                        engine
                            .dist_many_after_faults(targets, fs)
                            .expect("in range"),
                    );
                }
            });
            let d = engine.query_stats().delta_since(&before);
            // Restricted sweeps and full-row materialisations both run a
            // BFS of some tier; the sweeps column minus the restricted
            // column is the number of full rows built (by repair or by
            // sweep — `rows repaired` shows how many were repairs).
            let sweeps = d.structure_bfs_runs + d.augmented_bfs_runs + d.full_graph_bfs_runs;
            table.add_row(vec![
                a.to_string(),
                (d.restricted_repairs / 5).to_string(),
                (d.repaired_rows / 5).to_string(),
                (sweeps / 5).to_string(),
                format!("{:?}", t / requests.len() as u32),
                format!("{:?}", t / (requests.len() * a) as u32),
            ]);
        }
        crossover = Some(table);
    }

    println!("{}", shapes.render());
    if let Some(table) = crossover {
        println!("{}", table.render());
        println!(
            "The `restricted` column drains as a * RESTRICTED_SWEEP_RATIO crosses |affected| \
             per set. Restricted sweeps are the cheaper miss at small a; the full-row side \
             pays more up front but lands the row in the LRU, so later hits on the same \
             fault set are free — that cache-for-later effect is why the ratio is biased \
             toward full rows instead of sitting at the raw per-miss break-even."
        );
    }
    println!(
        "The committed `one_to_many` criterion baseline gates the sparse and dense shapes in CI."
    );
}
