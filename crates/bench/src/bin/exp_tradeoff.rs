//! Experiment E1 — the Theorem 3.1 tradeoff curve.
//!
//! Sweeps ε and measures the backup/reinforcement sizes of the constructed
//! structures on two workload families, comparing them against the theorem's
//! envelopes `b = O(1/ε · n^{1+ε} log n)` and `r = O(1/ε · n^{1-ε} log n)`.

use ftb_bench::Table;
use ftb_core::{build_structure, BuildConfig, BuildPlan, Sources};
use ftb_graph::VertexId;
use ftb_lower_bounds::esa13_lower_bound;
use ftb_workloads::{Workload, WorkloadFamily};

fn main() {
    let eps_grid = [0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0];
    let n_target = 600usize;
    let seed = 1u64;
    let config = BuildConfig::new(0.0).with_seed(seed);

    for family in [WorkloadFamily::LayeredDeep, WorkloadFamily::ErdosRenyi] {
        let workload = Workload::new(family, n_target, seed);
        let graph = workload.generate();
        let sources = Sources::single(VertexId(0));
        let n = graph.num_vertices() as f64;
        let mut table = Table::new(
            &format!(
                "E1: eps sweep on {} (n = {}, m = {})",
                workload.label(),
                graph.num_vertices(),
                graph.num_edges()
            ),
            &[
                "eps",
                "backup b",
                "reinforced r",
                "b envelope",
                "r envelope",
                "time ms",
            ],
        );
        for &eps in &eps_grid {
            let s = build_structure(&graph, &sources, BuildPlan::Tradeoff { eps }, &config)
                .expect("workload graphs with source 0 are valid input");
            let (b_env, r_env) = if eps >= 0.5 {
                (n.powf(1.5), 0.0)
            } else {
                (
                    (1.0 / eps) * n.powf(1.0 + eps) * n.ln(),
                    (1.0 / eps) * n.powf(1.0 - eps) * n.ln(),
                )
            };
            table.add_row(vec![
                format!("{eps:.2}"),
                s.num_backup().to_string(),
                s.num_reinforced().to_string(),
                format!("{b_env:.0}"),
                format!("{r_env:.0}"),
                format!("{:.0}", s.stats().construction_ms),
            ]);
        }
        table.print();
    }
    // The tradeoff itself is only visible on *hard* instances: on easy random
    // graphs every terminal has few distinct replacement last edges, all
    // segments are light and nothing needs reinforcing. Sweep eps on the
    // ESA'13 hard instance, where each X-vertex has Θ(√n) distinct last
    // edges: small eps makes its segments heavy, trading backup for
    // reinforcement exactly as Theorem 3.1 describes.
    let lb = esa13_lower_bound(800);
    let sources = Sources::single(lb.source);
    let n = lb.graph.num_vertices() as f64;
    let mut table = Table::new(
        &format!(
            "E1c: eps sweep on the ESA'13 hard instance (n = {}, m = {}, |Pi| = {})",
            lb.graph.num_vertices(),
            lb.graph.num_edges(),
            lb.num_pi_edges()
        ),
        &[
            "eps",
            "backup b",
            "reinforced r",
            "b envelope",
            "r envelope",
            "time ms",
        ],
    );
    for &eps in &eps_grid {
        let s = build_structure(&lb.graph, &sources, BuildPlan::Tradeoff { eps }, &config)
            .expect("the lower-bound instance is valid input");
        let (b_env, r_env) = if eps >= 0.5 {
            (n.powf(1.5), 0.0)
        } else {
            (
                (1.0 / eps) * n.powf(1.0 + eps) * n.ln(),
                (1.0 / eps) * n.powf(1.0 - eps) * n.ln(),
            )
        };
        table.add_row(vec![
            format!("{eps:.2}"),
            s.num_backup().to_string(),
            s.num_reinforced().to_string(),
            format!("{b_env:.0}"),
            format!("{r_env:.0}"),
            format!("{:.0}", s.stats().construction_ms),
        ]);
    }
    table.print();

    println!("\nExpected shape: on easy random graphs everything is coverable and r stays 0;");
    println!("on the hard instance b grows and r falls as eps grows, both under the envelopes;");
    println!("for eps >= 1/2 the n^(3/2) baseline branch is used and r = 0.");
}
