//! Experiment E14 — instrumentation overhead gate.
//!
//! The observability layer's contract is that it may be left **on in
//! production**: per-tier latency attribution and stage spans cost one
//! clock pair per public entry-point call, never one per tier lookup.
//! This binary measures that claim on the two serving shapes whose
//! criterion baselines gate CI — the `one_to_many` batched replay and the
//! `row_repair` per-target miss path — and **fails (exit 1)** if the
//! instrumented engine is more than `FTBFS_OBS_MAX_OVERHEAD` (default
//! 3%) slower than the uninstrumented one.
//!
//! Methodology: each shape replays an identical pre-minted request stream
//! against two engines over the same core — one with sampling off and no
//! [`EngineObs`] attached, one with sampling on and detached histogram
//! handles attached (the exact serving configuration of `ftb-serve`).
//! Both sides run `TRIALS` interleaved trials (A/B/A/B, so drift hits
//! both) and are scored by their **minimum** trial time — the standard
//! noise floor estimator: minima converge to the true cost while means
//! absorb scheduler hiccups. The sample counts recorded by the attached
//! histograms are asserted to match the tier-counter deltas, so the run
//! doubles as an end-to-end check that the instrumentation measured what
//! it claims while being (nearly) free.

use ftb_bench::Table;
use ftb_core::{
    EngineObs, EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder,
};
use ftb_graph::{FaultSet, Graph, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::time::{Duration, Instant};

const SEED: u64 = 21;
const SOURCE: VertexId = VertexId(0);
const TRIALS: usize = 7;

/// Max tolerated slowdown of the instrumented engine, as a fraction.
fn max_overhead() -> f64 {
    std::env::var("FTBFS_OBS_MAX_OVERHEAD")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03)
}

fn fresh_engine<'g>(
    graph: &'g Graph,
    structure: &ftb_core::FtBfsStructure,
) -> FaultQueryEngine<'g> {
    FaultQueryEngine::with_options(graph, structure.clone(), EngineOptions::new().serial())
        .expect("matching graph")
}

/// One replayable request stream: each entry pairs a fault set with the
/// targets to resolve under it.
struct Shape {
    name: &'static str,
    requests: Vec<(FaultSet, Vec<VertexId>)>,
    /// Batched (`dist_many_after_faults`) or per-target (`dist_after_faults`)
    /// replay — the two serving entry points.
    batched: bool,
}

fn replay(engine: &mut FaultQueryEngine<'_>, shape: &Shape) {
    for (faults, targets) in &shape.requests {
        if shape.batched {
            std::hint::black_box(
                engine
                    .dist_many_after_faults(targets, faults)
                    .expect("in range"),
            );
        } else {
            for &v in targets {
                std::hint::black_box(engine.dist_after_faults(v, faults).expect("in range"));
            }
        }
    }
}

fn main() {
    let limit = max_overhead();
    let graph: Graph = Workload::new(WorkloadFamily::ErdosRenyi, 2500, SEED).generate();
    let n = graph.num_vertices();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(SOURCE))
        .expect("valid input");

    // Both streams are LRU-miss streams (more distinct fault sets than
    // cached rows) that force real row work per set. An all-fast-path
    // stream would be the wrong thing to gate on: at ~100 ns/call the
    // entry point's one clock pair *is* a triple-digit percentage, which
    // is why the engine only times public entry points in the first place
    // — the measured shapes are the ones the criterion baselines gate.
    //
    // Both shapes share one pool of fault sets whose affected regions are
    // big enough (≥ 8 vertices) that every miss does real repair work.
    let probe = fresh_engine(&graph, &structure);
    let core = std::sync::Arc::clone(probe.core());
    drop(probe);
    let pool: Vec<(FaultSet, Vec<VertexId>)> = [
        FaultScenario::TreeConcentrated,
        FaultScenario::CorrelatedVertices,
        FaultScenario::RandomEdges,
    ]
    .into_iter()
    .flat_map(|scenario| scenario.generate(&graph, SOURCE, 2, 48, SEED ^ 1))
    .filter(|s| !s.is_empty())
    .filter_map(|fs| {
        let affected: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| !core.is_target_unaffected(SOURCE, v, &fs).expect("in range"))
            .collect();
        if affected.len() < 8 {
            return None;
        }
        Some((fs, affected))
    })
    .take(32)
    .collect();

    // one_to_many: every fault set answers a dense frame (all vertices),
    // so each miss pays the classification plus one amortised row
    // materialisation over its affected region.
    let dense: Vec<VertexId> = graph.vertices().collect();
    let one_to_many = Shape {
        name: "one_to_many",
        requests: pool
            .iter()
            .map(|(fs, _)| (fs.clone(), dense.clone()))
            .collect(),
        batched: true,
    };
    // row_repair: per-target replay where every fault set's targets are
    // drawn from its *affected* set, so each miss runs the incremental
    // repair sweep instead of the unaffected fast path.
    let row_repair = Shape {
        name: "row_repair",
        requests: pool
            .iter()
            .map(|(fs, affected)| {
                let stride = (affected.len() / 8).max(1);
                (
                    fs.clone(),
                    affected.iter().copied().step_by(stride).take(8).collect(),
                )
            })
            .collect(),
        batched: false,
    };

    let mut table = Table::new(
        &format!(
            "E14 — instrumentation overhead (n={n}, min of {TRIALS} interleaved trials, \
             gate {:.1}%)",
            limit * 100.0
        ),
        &["shape", "plain", "instrumented", "overhead", "samples"],
    );
    let mut breached = false;

    for shape in [&one_to_many, &row_repair] {
        // More distinct fault sets than the row LRU holds keeps every
        // replay pass on the miss path.
        assert!(
            shape.requests.len() >= 12,
            "{}: scenarios minted too few usable fault sets ({})",
            shape.name,
            shape.requests.len()
        );
        let mut plain = fresh_engine(&graph, &structure);
        let mut instrumented = fresh_engine(&graph, &structure);
        let obs = EngineObs::detached();
        instrumented.attach_obs(std::sync::Arc::clone(&obs));

        // Warm both engines (answers asserted identical while at it).
        ftb_obs::set_sampling(true);
        for (faults, targets) in &shape.requests {
            let a = plain
                .dist_many_after_faults(targets, faults)
                .expect("in range");
            let b = instrumented
                .dist_many_after_faults(targets, faults)
                .expect("in range");
            assert_eq!(a, b, "{}: instrumented engine diverged", shape.name);
        }

        let mut t_plain = Duration::MAX;
        let mut t_instr = Duration::MAX;
        for _ in 0..TRIALS {
            ftb_obs::set_sampling(false);
            let t0 = Instant::now();
            replay(&mut plain, shape);
            t_plain = t_plain.min(t0.elapsed());

            ftb_obs::set_sampling(true);
            let t0 = Instant::now();
            replay(&mut instrumented, shape);
            t_instr = t_instr.min(t0.elapsed());
        }
        ftb_obs::set_sampling(true);

        // Counter consistency: every answer the instrumented engine gave
        // (warmup and trials alike, all with sampling on) produced exactly
        // one tier histogram sample.
        let t = instrumented.query_stats().tiers;
        let answers = (t.fault_free_row
            + t.unaffected_fast_path
            + t.batched_unaffected
            + t.sparse_h_bfs
            + t.augmented_bfs
            + t.full_graph_bfs) as u64;
        assert_eq!(
            obs.tier_sample_count(),
            answers,
            "{}: tier histogram samples != tier counter answers",
            shape.name
        );

        let overhead = (t_instr.as_secs_f64() - t_plain.as_secs_f64()) / t_plain.as_secs_f64();
        if overhead > limit {
            breached = true;
        }
        table.add_row(vec![
            shape.name.to_string(),
            format!("{t_plain:?}"),
            format!("{t_instr:?}"),
            format!("{:+.2}%", overhead * 100.0),
            obs.tier_sample_count().to_string(),
        ]);
    }

    println!("{}", table.render());
    if breached {
        eprintln!(
            "exp_observability: instrumentation overhead exceeds {:.1}% \
             (set FTBFS_OBS_MAX_OVERHEAD to adjust the gate)",
            limit * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "Instrumentation overhead within the {:.1}% gate on both serving shapes.",
        limit * 100.0
    );
}
