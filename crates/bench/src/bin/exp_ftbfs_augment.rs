//! Experiment E10 — sparse replacement-path augmentation (`ftb_core::ftbfs`).
//!
//! Answers three questions about the augmented structures `H⁺`:
//!
//! 1. **Exactness** — on a small instance, an augmented engine must match
//!    brute-force BFS on *every* fault set of size ≤ 2, with the per-tier
//!    counters proving that no covered set touched the full-graph tier.
//! 2. **Size** — how many edges the single-fault and dual-failure layers
//!    add on top of `H` (the `n^{3/2}` / `n^{5/3}` regimes of the papers),
//!    and what the offline passes cost.
//! 3. **Serving latency** — per scenario family, the same batch answered by
//!    a plain engine (full-graph fallback) versus an augmented engine
//!    (sparse `H⁺ ∖ F` searches), with the tier counters printed for both.

use ftb_bench::Table;
use ftb_core::{
    build_augmented_structure, cross_check_fault_sets, AugmentCoverage, BuildConfig, BuildPlan,
    EngineCore, EngineOptions, FaultQueryEngine, Sources,
};
use ftb_graph::{enumerate_fault_sets, FaultSet, Graph, VertexId};
use ftb_par::ParallelConfig;
use ftb_workloads::{families, FaultScenario, Workload, WorkloadFamily};
use std::time::Instant;

fn build_augmented(
    graph: &Graph,
    seed: u64,
    coverage: AugmentCoverage,
) -> ftb_core::AugmentedStructure {
    let config = BuildConfig::new(0.3).with_seed(seed).with_augment(coverage);
    build_augmented_structure(
        graph,
        &Sources::single(VertexId(0)),
        BuildPlan::Tradeoff { eps: 0.3 },
        &config,
    )
    .expect("workload graphs with source 0 are valid input")
}

fn main() {
    let seed = 10u64;
    let source = VertexId(0);

    // 1. Exactness: every |F| ≤ 2 fault set on a small instance, tier
    // routing asserted through the counters.
    let small = Workload::new(WorkloadFamily::GridChords, 36, seed).generate();
    let small_aug = build_augmented(&small, seed, AugmentCoverage::DualFailure);
    let core = EngineCore::build_augmented(&small, small_aug).expect("matching graph");
    let sets = enumerate_fault_sets(&small, 2);
    let mismatches = cross_check_fault_sets(&core, &sets, &ParallelConfig::default())
        .expect("enumerated sets are in range and within the cap");
    assert!(
        mismatches.is_empty(),
        "augmented engine diverged from brute force: {:?}",
        mismatches.first()
    );
    let mut ctx = core.new_context();
    for faults in sets.iter().filter(|f| f.vertices().count() <= 1) {
        for v in small.vertices() {
            let _ = ctx.dist_after_faults(&core, v, faults).expect("in range");
        }
    }
    let stats = ctx.stats();
    assert_eq!(
        stats.tiers.full_graph_bfs, 0,
        "a covered fault set reached the full-graph tier"
    );
    println!(
        "cross-check: {} fault sets (|F| <= 2) on n={} m={}: all exact; covered sets answered \
         by tiers row/fast/H/H+ = {}/{}/{}/{} with zero full-graph BFS\n",
        sets.len(),
        small.num_vertices(),
        small.num_edges(),
        stats.tiers.fault_free_row,
        stats.tiers.unaffected_fast_path,
        stats.tiers.sparse_h_bfs,
        stats.tiers.augmented_bfs,
    );

    // 2. Size and offline cost of the augmentation layers.
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 240, seed);
    let graph = workload.generate();
    let mut size_table = Table::new(
        "E10a: augmentation size and offline cost",
        &[
            "coverage", "|E(H)|", "|E(H+)|", "added", "tree+", "single+", "dual+", "passes",
            "build ms",
        ],
    );
    for coverage in [AugmentCoverage::SingleFault, AugmentCoverage::DualFailure] {
        let aug = build_augmented(&graph, seed, coverage);
        let s = aug.stats();
        size_table.add_row(vec![
            coverage.name().to_string(),
            s.base_edges.to_string(),
            aug.num_edges().to_string(),
            aug.added_edges().to_string(),
            s.tree_edges_added.to_string(),
            s.single_added.to_string(),
            s.dual_added.to_string(),
            (s.single_passes + s.dual_passes).to_string(),
            format!("{:.0}", s.augment_ms),
        ]);
    }
    println!(
        "workload {}: n = {}, m = {}",
        workload.label(),
        graph.num_vertices(),
        graph.num_edges()
    );
    size_table.print();

    // 3. Serving latency: plain fallback engine vs augmented engine on the
    // covered slice of every scenario family. A denser instance than E10a:
    // the augmented tier's payoff is the gap between |E(H⁺)| and m, which
    // sparse workloads understate.
    let graph = families::erdos_renyi_gnm(300, 4500, seed);
    println!(
        "\nserving workload: dense G(n, m) with n = {}, m = {}",
        graph.num_vertices(),
        graph.num_edges()
    );
    let aug = build_augmented(&graph, seed, AugmentCoverage::DualFailure);
    println!(
        "augmented: |E(H)| = {}, |E(H+)| = {} ({} added in {:.0} ms offline)",
        aug.base().num_edges(),
        aug.num_edges(),
        aug.added_edges(),
        aug.stats().augment_ms
    );
    let stride = (graph.num_vertices() / 24).max(1);
    let mut table = Table::new(
        "E10b: serving covered fault sets — fallback vs augmented (serial)",
        &[
            "scenario",
            "f",
            "queries",
            "plain ms",
            "aug ms",
            "speedup",
            "plain tiers row/fast/H/H+/G",
            "aug tiers row/fast/H/H+/G",
        ],
    );
    for &scenario in FaultScenario::all() {
        for f in [1usize, 2] {
            let fault_sets: Vec<FaultSet> = scenario
                .generate(&graph, source, f, 64, seed)
                .into_iter()
                .filter(|fs| !fs.is_empty() && fs.vertices().count() <= 1)
                .collect();
            let queries: Vec<(VertexId, FaultSet)> = fault_sets
                .iter()
                .flat_map(|fs| {
                    (0..graph.num_vertices())
                        .step_by(stride)
                        .map(move |v| (VertexId::new(v), fs.clone()))
                })
                .collect();
            if queries.is_empty() {
                continue;
            }

            // The plain engine serves the seed structure the augmentation
            // started from — same graph, same seed, no second build.
            let run = |use_augmentation: bool| {
                let options = EngineOptions::new().serial();
                let mut engine = if use_augmentation {
                    FaultQueryEngine::from_augmented_with_options(&graph, aug.clone(), options)
                        .expect("matching graph")
                } else {
                    FaultQueryEngine::with_options(&graph, aug.base().clone(), options)
                        .expect("matching graph")
                };
                let _ = engine.query_many_faults(&queries).expect("in range");
                let warm = engine.query_stats();
                let t = Instant::now();
                let results = engine.query_many_faults(&queries).expect("in range");
                let ms = t.elapsed().as_secs_f64() * 1e3;
                (results, ms, engine.query_stats().delta_since(&warm))
            };

            let (plain_results, plain_ms, plain_stats) = run(false);
            let (aug_results, aug_ms, aug_stats) = run(true);
            assert_eq!(plain_results, aug_results, "tiers must agree on answers");
            assert_eq!(
                aug_stats.tiers.full_graph_bfs,
                0,
                "{}: covered set escaped the augmented tier",
                scenario.name()
            );
            let fmt_tiers = |t: &ftb_core::TierCounters| {
                format!(
                    "{}/{}/{}/{}/{}",
                    t.fault_free_row,
                    t.unaffected_fast_path,
                    t.sparse_h_bfs,
                    t.augmented_bfs,
                    t.full_graph_bfs
                )
            };
            table.add_row(vec![
                scenario.name().to_string(),
                f.to_string(),
                queries.len().to_string(),
                format!("{plain_ms:.1}"),
                format!("{aug_ms:.1}"),
                format!("{:.2}x", plain_ms / aug_ms),
                fmt_tiers(&plain_stats.tiers),
                fmt_tiers(&aug_stats.tiers),
            ]);
        }
    }
    table.print();
    println!(
        "\nReading guide: both engines serve the same covered batches \
         (|F| <= 2, at most one vertex fault). The plain engine answers \
         every set outside the seed paper's single-edge guarantee with a \
         full-graph BFS (`G` tier); the augmented engine replaces those \
         rows with sparse searches over H+ (`H+` tier) — the speedup \
         column is the serving-latency price the fallback was paying. \
         Dual *vertex* faults stay on the fallback by design (ROADMAP \
         future work)."
    );
}
