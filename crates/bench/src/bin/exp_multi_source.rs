//! Experiment E5 — multi-source structures (Theorem 5.4).
//!
//! Measures how the FT-MBFS union size grows with the number of sources σ on
//! the Theorem 5.4 hard instance and on a random workload, and compares the
//! certified forced-edge count with the measured structures.

use ftb_bench::Table;
use ftb_core::{MultiSourceBuilder, Sources};
use ftb_graph::VertexId;
use ftb_lower_bounds::multi_source_lower_bound;
use ftb_workloads::{Workload, WorkloadFamily};

fn main() {
    let eps = 0.3;
    let seed = 5u64;
    let builder = MultiSourceBuilder::new(eps).with_config(|c| c.with_seed(seed));

    // Hard instances: one per sigma.
    let mut table = Table::new(
        "E5a: FT-MBFS on the Theorem 5.4 instance (target n = 700, eps = 0.3)",
        &[
            "sigma",
            "real n",
            "|Pi|",
            "certified bound (budget)",
            "union edges",
            "union backup",
            "union reinforced",
        ],
    );
    for &sigma in &[1usize, 2, 4] {
        let lb = multi_source_lower_bound(700, sigma, eps);
        let mbfs = builder
            .build_multi(&lb.graph, &Sources::multi(lb.sources.clone()))
            .expect("the lower-bound instance is valid input");
        let certified = lb.certified_backup_lower_bound(lb.reinforcement_budget());
        table.add_row(vec![
            sigma.to_string(),
            lb.graph.num_vertices().to_string(),
            lb.num_pi_edges().to_string(),
            certified.to_string(),
            mbfs.num_edges().to_string(),
            mbfs.num_backup().to_string(),
            mbfs.num_reinforced().to_string(),
        ]);
    }
    table.print();

    // Random workload: union growth with sigma at fixed n.
    let workload = Workload::new(WorkloadFamily::ErdosRenyi, 400, seed);
    let graph = workload.generate();
    let sources: Vec<VertexId> = (0..8)
        .map(|i| VertexId::new(i * graph.num_vertices() / 8))
        .collect();
    let mut table = Table::new(
        &format!(
            "E5b: FT-MBFS union growth on {} (eps = {eps})",
            workload.label()
        ),
        &["sigma", "union edges", "union backup", "union reinforced"],
    );
    for &sigma in &[1usize, 2, 4, 8] {
        let mbfs = builder
            .build_multi(&graph, &Sources::multi(sources[..sigma].to_vec()))
            .expect("workload gateways are valid sources");
        table.add_row(vec![
            sigma.to_string(),
            mbfs.num_edges().to_string(),
            mbfs.num_backup().to_string(),
            mbfs.num_reinforced().to_string(),
        ]);
    }
    table.print();
    println!("\nExpected shape: the union grows sublinearly in sigma on random graphs (shared");
    println!(
        "edges are reused) while the hard instance forces near-linear growth of the forced part."
    );
}
