//! Experiment E7 — ablation of the design choices.
//!
//! Compares the full construction against (a) disabling Phase S2, (b) halving
//! the number of Phase S1 rounds, and (c) shrinking the per-terminal budget,
//! measuring the effect on the reinforcement count (the quantity the paper's
//! analysis bounds).

use ftb_bench::Table;
use ftb_core::{Sources, StructureBuilder, TradeoffBuilder};
use ftb_lower_bounds::esa13_lower_bound;

fn main() {
    let eps = 0.2;
    let seed = 7u64;
    // The hard ESA'13 instance is where the phase machinery earns its keep:
    // X-vertices have Θ(√n) distinct replacement last edges, so budgets and
    // the tree decomposition actually matter.
    let lb = esa13_lower_bound(700);
    let graph = lb.graph.clone();
    let sources = Sources::single(lb.source);
    println!(
        "workload esa13-lower-bound(n=700): n = {}, m = {}, |Pi| = {}",
        graph.num_vertices(),
        graph.num_edges(),
        lb.num_pi_edges()
    );

    let base = TradeoffBuilder::new(eps).with_config(|c| c.with_seed(seed));
    let variants: Vec<(&str, TradeoffBuilder)> = vec![
        ("full algorithm", base.clone()),
        (
            "no phase S2",
            base.clone().with_config(|c| c.with_phase_s2(false)),
        ),
        (
            "K = 1 round",
            base.clone().with_config(|c| c.with_k_override(Some(1))),
        ),
        (
            "budget = 1",
            base.clone()
                .with_config(|c| c.with_budget_override(Some(1))),
        ),
        (
            "exact reinforcement",
            base.clone()
                .with_config(|c| c.with_exact_reinforcement(true)),
        ),
    ];

    let mut table = Table::new(
        &format!("E7: ablations at eps = {eps}"),
        &[
            "variant",
            "backup b",
            "reinforced r",
            "S1 added",
            "S2 added",
            "HLD levels",
            "time ms",
        ],
    );
    for (name, builder) in variants {
        let s = builder
            .build(&graph, &sources)
            .expect("the lower-bound instance is valid input");
        table.add_row(vec![
            name.to_string(),
            s.num_backup().to_string(),
            s.num_reinforced().to_string(),
            s.stats().s1_added_edges.to_string(),
            (s.stats().s2_added_edges + s.stats().s2_glue_added_edges).to_string(),
            s.stats().hld_levels.to_string(),
            format!("{:.0}", s.stats().construction_ms),
        ]);
    }
    table.print();
    println!("\nExpected shape: removing Phase S2 or shrinking the S1 budget inflates the");
    println!("reinforcement count; the exact-reinforcement post-pass can only shrink it.");
}
