//! Experiment E7 — ablation of the design choices.
//!
//! Compares the full construction against (a) disabling Phase S2, (b) halving
//! the number of Phase S1 rounds, and (c) shrinking the per-terminal budget,
//! measuring the effect on the reinforcement count (the quantity the paper's
//! analysis bounds).

use ftb_bench::Table;
use ftb_core::{build_ft_bfs, BuildConfig};
use ftb_lower_bounds::esa13_lower_bound;

fn main() {
    let eps = 0.2;
    let seed = 7u64;
    // The hard ESA'13 instance is where the phase machinery earns its keep:
    // X-vertices have Θ(√n) distinct replacement last edges, so budgets and
    // the tree decomposition actually matter.
    let lb = esa13_lower_bound(700);
    let graph = lb.graph.clone();
    let source = lb.source;
    println!(
        "workload esa13-lower-bound(n=700): n = {}, m = {}, |Pi| = {}",
        graph.num_vertices(),
        graph.num_edges(),
        lb.num_pi_edges()
    );

    let base = BuildConfig::new(eps).with_seed(seed);
    let variants: Vec<(&str, BuildConfig)> = vec![
        ("full algorithm", base.clone()),
        (
            "no phase S2",
            BuildConfig {
                enable_phase_s2: false,
                ..base.clone()
            },
        ),
        (
            "K = 1 round",
            BuildConfig {
                k_override: Some(1),
                ..base.clone()
            },
        ),
        (
            "budget = 1",
            BuildConfig {
                budget_override: Some(1),
                ..base.clone()
            },
        ),
        (
            "exact reinforcement",
            BuildConfig {
                exact_reinforcement: true,
                ..base.clone()
            },
        ),
    ];

    let mut table = Table::new(
        &format!("E7: ablations at eps = {eps}"),
        &[
            "variant",
            "backup b",
            "reinforced r",
            "S1 added",
            "S2 added",
            "time ms",
        ],
    );
    for (name, config) in variants {
        let s = build_ft_bfs(&graph, source, &config);
        table.add_row(vec![
            name.to_string(),
            s.num_backup().to_string(),
            s.num_reinforced().to_string(),
            s.stats().s1_added_edges.to_string(),
            (s.stats().s2_added_edges + s.stats().s2_glue_added_edges).to_string(),
            format!("{:.0}", s.stats().construction_ms),
        ]);
    }
    table.print();
    println!("\nExpected shape: removing Phase S2 or shrinking the S1 budget inflates the");
    println!("reinforcement count; the exact-reinforcement post-pass can only shrink it.");
}
