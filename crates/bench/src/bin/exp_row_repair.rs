//! Experiment E11 — incremental post-failure row repair.
//!
//! Quantifies the two observations the repair path is built on:
//!
//! 1. **Affected sets are small.** For a fault set `F`, only the vertices
//!    whose canonical tree path uses a failed element can change distance —
//!    the subtrees under the faults in the fault-free BFS tree `T0`. Per
//!    workload family and fault scenario, this prints the distribution of
//!    `|affected| / n` (min / median / p90 / max), i.e. how little of a row
//!    a cache miss actually has to recompute.
//! 2. **Repair beats re-sweeping.** Per scenario, the same batch is served
//!    by the default engine (incremental repair + unaffected-target fast
//!    path) and by a forced full-sweep engine
//!    ([`EngineOptions::with_force_full_sweep`], the pre-repair
//!    behaviour), with wall times, the speedup, and the tier/sweep
//!    counters proving where the work went. Answers are asserted
//!    identical.

use ftb_bench::{median, percentile, Table};
use ftb_core::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{FaultSet, Graph, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::time::Instant;

fn main() {
    let seed = 21u64;
    let source = VertexId(0);

    // 1. Affected-set size distribution per workload family and scenario.
    let mut sizes = Table::new(
        "E11a — affected-set size as a fraction of n (f = 1, 64 sets per cell)",
        &[
            "workload",
            "n",
            "scenario",
            "min",
            "median",
            "p90",
            "max",
            "affected/n",
        ],
    );
    for &family in WorkloadFamily::all() {
        let w = Workload::new(family, 400, seed);
        let graph: Graph = w.generate();
        let n = graph.num_vertices();
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(seed).serial())
            .build(&graph, &Sources::single(source))
            .expect("workload graphs with source 0 are valid input");
        let engine = FaultQueryEngine::new(&graph, structure).expect("matching graph");
        for &scenario in &[
            FaultScenario::RandomEdges,
            FaultScenario::TreeConcentrated,
            FaultScenario::CorrelatedVertices,
        ] {
            let sets = scenario.generate(&graph, source, 1, 64, seed);
            let mut counts: Vec<usize> = sets
                .iter()
                .filter(|f| !f.is_empty())
                .map(|f| {
                    engine
                        .core()
                        .affected_vertex_count(source, f)
                        .expect("generated sets are valid")
                })
                .collect();
            counts.sort_unstable();
            if counts.is_empty() {
                continue;
            }
            let mean: f64 = counts.iter().sum::<usize>() as f64 / counts.len() as f64 / n as f64;
            sizes.add_row(vec![
                family.name().to_string(),
                n.to_string(),
                scenario.name().to_string(),
                counts[0].to_string(),
                median(&counts).to_string(),
                percentile(&counts, 0.9).to_string(),
                counts[counts.len() - 1].to_string(),
                format!("{:.1}%", 100.0 * mean),
            ]);
        }
    }
    println!("{}", sizes.render());

    // 2. Repaired vs full-sweep serving on one mid-size instance.
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 2000, seed).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(seed).serial())
        .build(&graph, &Sources::single(source))
        .expect("valid input");
    let stride = (graph.num_vertices() / 24).max(1);
    let vertices: Vec<VertexId> = (0..graph.num_vertices())
        .step_by(stride)
        .map(VertexId::new)
        .collect();

    let mut serving = Table::new(
        &format!(
            "E11b — batch serving, repaired vs full sweep (n={}, m={}, |batch| = 48 fault sets x {} targets)",
            graph.num_vertices(),
            graph.num_edges(),
            vertices.len()
        ),
        &[
            "scenario",
            "f",
            "full sweep",
            "repaired",
            "speedup",
            "repaired rows",
            "fast-path hits",
            "sweeps (repaired/full)",
        ],
    );
    for &scenario in FaultScenario::all() {
        for f in [1usize, 2] {
            let sets = scenario.generate(&graph, source, f, 48, seed);
            let queries: Vec<(VertexId, FaultSet)> = sets
                .iter()
                .filter(|s| !s.is_empty())
                .flat_map(|fs| vertices.iter().map(move |&v| (v, fs.clone())))
                .collect();
            let mut repaired = FaultQueryEngine::with_options(
                &graph,
                structure.clone(),
                EngineOptions::new().serial(),
            )
            .expect("matching graph");
            let mut full = FaultQueryEngine::with_options(
                &graph,
                structure.clone(),
                EngineOptions::new().serial().with_force_full_sweep(true),
            )
            .expect("matching graph");
            // Warm once (answers asserted identical), then time.
            let a = repaired.query_many_faults(&queries).expect("in range");
            let b = full.query_many_faults(&queries).expect("in range");
            assert_eq!(a, b, "repaired batch diverged from full sweeps");
            // Median of independent repeats: one slow outlier (page fault,
            // scheduler hiccup) cannot skew the reported time the way a
            // mean over the same repeats would.
            let reps = 5usize;
            let mut rep_samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(repaired.query_many_faults(&queries).expect("in range"));
                rep_samples.push(t0.elapsed());
            }
            let mut full_samples = Vec::with_capacity(reps);
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(full.query_many_faults(&queries).expect("in range"));
                full_samples.push(t0.elapsed());
            }
            rep_samples.sort_unstable();
            full_samples.sort_unstable();
            let t_rep = median(&rep_samples);
            let t_full = median(&full_samples);
            let rs = repaired.query_stats();
            let fs_ = full.query_stats();
            let sweeps = |s: &ftb_core::QueryStats| s.structure_bfs_runs + s.full_graph_bfs_runs;
            serving.add_row(vec![
                scenario.name().to_string(),
                f.to_string(),
                format!("{t_full:?}"),
                format!("{t_rep:?}"),
                format!("{:.1}x", t_full.as_secs_f64() / t_rep.as_secs_f64()),
                rs.repaired_rows.to_string(),
                rs.tiers.unaffected_fast_path.to_string(),
                format!("{}/{}", sweeps(&rs), sweeps(&fs_)),
            ]);
        }
    }
    println!("{}", serving.render());

    // 3. Dense all-target serving through the one-to-many API: the same
    // fault sets, but every vertex requested, answered once per target by
    // the per-target loop and once per fault set by
    // `dist_many_after_faults` (one interval-batched classification plus
    // one amortised row extraction). This is the shape `exp_one_to_many`
    // sweeps in detail; here it closes the loop on E11b by showing what
    // the repaired row costs when it is *extracted in bulk* instead of
    // probed 24 times.
    let all_targets: Vec<VertexId> = graph.vertices().collect();
    let mut dense = Table::new(
        &format!(
            "E11c — dense all-target serving, per-target loop vs one-to-many (n={}, 48 fault sets x {} targets)",
            graph.num_vertices(),
            all_targets.len()
        ),
        &["scenario", "f", "per-target", "one-to-many", "speedup"],
    );
    for &scenario in &[FaultScenario::TreeConcentrated, FaultScenario::RandomEdges] {
        for f in [1usize, 2] {
            let sets: Vec<FaultSet> = scenario
                .generate(&graph, source, f, 48, seed)
                .into_iter()
                .filter(|s| !s.is_empty())
                .collect();
            let mut per_target = FaultQueryEngine::with_options(
                &graph,
                structure.clone(),
                EngineOptions::new().serial(),
            )
            .expect("matching graph");
            let mut batched = FaultQueryEngine::with_options(
                &graph,
                structure.clone(),
                EngineOptions::new().serial(),
            )
            .expect("matching graph");
            for fs_set in &sets {
                let a: Vec<Option<u32>> = all_targets
                    .iter()
                    .map(|&v| per_target.dist_after_faults(v, fs_set).expect("in range"))
                    .collect();
                let b = batched
                    .dist_many_after_faults(&all_targets, fs_set)
                    .expect("in range");
                assert_eq!(a, b, "one-to-many diverged from the per-target loop");
            }
            let reps = 5usize;
            let time = |f: &mut dyn FnMut()| {
                let mut samples = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let t0 = Instant::now();
                    f();
                    samples.push(t0.elapsed());
                }
                samples.sort_unstable();
                median(&samples)
            };
            let t_old = time(&mut || {
                for fs_set in &sets {
                    for &v in &all_targets {
                        std::hint::black_box(
                            per_target.dist_after_faults(v, fs_set).expect("in range"),
                        );
                    }
                }
            });
            let t_new = time(&mut || {
                for fs_set in &sets {
                    std::hint::black_box(
                        batched
                            .dist_many_after_faults(&all_targets, fs_set)
                            .expect("in range"),
                    );
                }
            });
            dense.add_row(vec![
                scenario.name().to_string(),
                f.to_string(),
                format!("{t_old:?}"),
                format!("{t_new:?}"),
                format!("{:.1}x", t_old.as_secs_f64() / t_new.as_secs_f64()),
            ]);
        }
    }
    println!("{}", dense.render());
    println!(
        "The committed `row_repair` criterion baseline gates both sides in CI; \
         set FTBFS_FORCE_FULL_SWEEP=1 to pin any engine to the full-sweep path. \
         `exp_one_to_many` sweeps the restricted-sweep crossover behind E11c's batched column."
    );
}
