//! Minimal Markdown table builder for the experiment binaries.

/// A Markdown table accumulated row by row and printed at the end of an
/// experiment.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the number of cells must match the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity does not match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.add_row(vec!["1".into(), "10".into()]);
        t.add_row(vec!["200".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("|   x | value |"));
        assert!(s.contains("| 200 |     3 |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_is_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }
}
