//! Criterion benchmark B6: replacement-path augmentation.
//!
//! Two halves: the offline cost of the `FtBfsAugmenter` passes (single and
//! dual coverage on a small instance, measured end to end including the
//! seed build), and the serving payoff — the same covered batches answered
//! by a plain engine (full-graph fallback rows) versus an augmented engine
//! (sparse `H⁺ ∖ F` rows). Run with `FTBFS_BENCH_JSON` to dump a baseline
//! and `FTBFS_BENCH_BASELINE` to gate on the committed one; the gate is
//! normalised by the shim's calibration microbenchmark so heterogeneous
//! runners share one file.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_core::{
    build_augmented_structure, AugmentCoverage, BuildConfig, BuildPlan, EngineOptions,
    FaultQueryEngine, Sources,
};
use ftb_graph::{Fault, FaultSet, Graph, VertexId};
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn build_augmented(
    graph: &Graph,
    seed: u64,
    coverage: AugmentCoverage,
) -> ftb_core::AugmentedStructure {
    let config = BuildConfig::new(0.3)
        .with_seed(seed)
        .serial()
        .with_augment(coverage);
    build_augmented_structure(
        graph,
        &Sources::single(VertexId(0)),
        BuildPlan::Tradeoff { eps: 0.3 },
        &config,
    )
    .expect("valid input")
}

fn bench_ftbfs_augment(c: &mut Criterion) {
    let seed = 14u64;
    let mut group = c.benchmark_group("ftbfs_augment");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Offline construction cost, end to end (seed build + augmentation).
    let small = Workload::new(WorkloadFamily::ErdosRenyi, 96, seed).generate();
    for coverage in [AugmentCoverage::SingleFault, AugmentCoverage::DualFailure] {
        group.bench_with_input(
            BenchmarkId::new("augment", coverage.name()),
            &coverage,
            |b, &coverage| {
                b.iter(|| black_box(build_augmented(&small, seed, coverage)));
            },
        );
    }

    // Serving: covered batches on a dense mid-size instance (the augmented
    // tier's payoff is the |E(H⁺)| vs m gap), fallback vs augmented.
    // Preprocessing happens once, outside the timed loop. Serving
    // iterations are sub-millisecond and noisy on shared runners, so they
    // get a larger sample count than the construction benches.
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(500));
    let graph = ftb_workloads::families::erdos_renyi_gnm(256, 3300, seed);
    let augmented = build_augmented(&graph, seed, AugmentCoverage::DualFailure);
    let stride = (graph.num_vertices() / 20).max(1);
    let vertices: Vec<VertexId> = (0..graph.num_vertices())
        .step_by(stride)
        .map(VertexId::new)
        .collect();
    let vertex_faults: Vec<(VertexId, FaultSet)> = (1..33u32)
        .flat_map(|v| {
            let fs = FaultSet::single_vertex(VertexId(v * 7 % graph.num_vertices() as u32));
            vertices
                .iter()
                .map(move |&q| (q, fs.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let m = graph.num_edges() as u32;
    let dual_edges: Vec<(VertexId, FaultSet)> = (0..32u32)
        .flat_map(|i| {
            let fs: FaultSet = [
                Fault::Edge(ftb_graph::EdgeId(i * 13 % m)),
                Fault::Edge(ftb_graph::EdgeId((i * 29 + 5) % m)),
            ]
            .into_iter()
            .collect();
            vertices
                .iter()
                .map(move |&q| (q, fs.clone()))
                .collect::<Vec<_>>()
        })
        .collect();

    for (label, batch) in [
        ("vertex-faults", &vertex_faults),
        ("dual-edges", &dual_edges),
    ] {
        let mut aug_engine = FaultQueryEngine::from_augmented_with_options(
            &graph,
            augmented.clone(),
            EngineOptions::new().serial(),
        )
        .expect("matching graph");
        group.bench_with_input(
            BenchmarkId::new("serve-augmented", label),
            batch,
            |b, batch| {
                b.iter(|| black_box(aug_engine.query_many_faults(batch).expect("in range")));
            },
        );
        // The fallback engine serves the seed structure the augmentation
        // started from — no second build.
        let mut plain_engine = FaultQueryEngine::with_options(
            &graph,
            augmented.base().clone(),
            EngineOptions::new().serial(),
        )
        .expect("matching graph");
        group.bench_with_input(
            BenchmarkId::new("serve-fallback", label),
            batch,
            |b, batch| {
                b.iter(|| black_box(plain_engine.query_many_faults(batch).expect("in range")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ftbfs_augment);
criterion_main!(benches);
