//! Criterion benchmark B7: one-to-many serving — amortised row extraction
//! with interval-batched target checks vs the per-target query loop.
//!
//! One preprocessed engine answers the same `(fault set, target list)`
//! stream two ways: the **per-target** loop (`dist_after_faults` once per
//! target — the only shape the engine offered before `DistMany`) and the
//! **batched** one-to-many entry point (`dist_many_after_faults` — one
//! interval-batched unaffected classification and at most one search per
//! fault set). The committed baseline pins both sides of both shapes, so
//! the regression gate asserts the amortised path stays fast *and* the
//! gap to the per-target loop does not erode.
//!
//! Two target shapes:
//!
//! * **sparse** (`t=16`) — a handful of spread-out targets per fault set,
//!   the replay shape of a `DistMany` service frame. Most targets are
//!   provably unaffected and classified in one batched interval search;
//!   affected stragglers take the target-restricted sweep instead of a
//!   full row materialisation.
//! * **dense** (`all-targets`) — every vertex requested, so each fault set
//!   must materialize one full row; the comparison isolates the amortised
//!   row extraction (one repair + scatter) against per-target LRU probes.
//!
//! Batches use more distinct fault sets (32) than the LRU holds, so fault
//! sets are cache misses — this measures the miss path, not the cache.
//!
//! Run with `FTBFS_BENCH_JSON` to dump a baseline and
//! `FTBFS_BENCH_BASELINE` to gate on a committed one (see the criterion
//! shim docs); CI fails this bench on a >25% regression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_core::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{FaultSet, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_one_to_many(c: &mut Criterion) {
    let seed = 21u64;
    let source = VertexId(0);
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 2000, seed).generate();
    let n = graph.num_vertices();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|cfg| cfg.with_seed(seed).serial())
        .build(&graph, &Sources::single(source))
        .expect("valid input");

    let fault_sets: Vec<FaultSet> = FaultScenario::TreeConcentrated
        .generate(&graph, source, 1, 32, seed)
        .into_iter()
        .filter(|s| !s.is_empty())
        .collect();

    let sparse: Vec<VertexId> = (0..16u64)
        .map(|i| VertexId((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as u32))
        .collect();
    let dense: Vec<VertexId> = graph.vertices().collect();

    let mut group = c.benchmark_group("one_to_many");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (shape, targets) in [("sparse-t16", &sparse), ("dense-all", &dense)] {
        // Fresh engine per side: the two paths must not share an LRU.
        let mut per_target = FaultQueryEngine::with_options(
            &graph,
            structure.clone(),
            EngineOptions::new().serial(),
        )
        .expect("matching graph");
        group.bench_with_input(
            BenchmarkId::new(shape, "per-target"),
            &fault_sets,
            |b, sets| {
                b.iter(|| {
                    for fs in sets {
                        for &v in targets {
                            black_box(per_target.dist_after_faults(v, fs).expect("in range"));
                        }
                    }
                });
            },
        );

        let mut batched = FaultQueryEngine::with_options(
            &graph,
            structure.clone(),
            EngineOptions::new().serial(),
        )
        .expect("matching graph");
        group.bench_with_input(
            BenchmarkId::new(shape, "batched"),
            &fault_sets,
            |b, sets| {
                b.iter(|| {
                    for fs in sets {
                        black_box(
                            batched
                                .dist_many_after_faults(targets, fs)
                                .expect("in range"),
                        );
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_one_to_many);
criterion_main!(benches);
