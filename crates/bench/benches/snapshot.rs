//! Criterion benchmark B8: persistent engine snapshots — build once,
//! load everywhere.
//!
//! Pins the three costs of the snapshot path at one representative size:
//!
//! * **build** — the full preprocessing an `ftb-serve` restart pays
//!   without a snapshot (structure construction + engine assembly);
//! * **save** — serializing the finished engine to the flat container
//!   ([`EngineCore::write_snapshot`]);
//! * **load** — restoring a ready-to-serve engine from those bytes
//!   ([`EngineCore::read_snapshot`]), including every revalidation pass.
//!
//! The committed baseline keeps all three honest: `load` regressing
//! toward `build` would erase the point of shipping snapshots at all
//! (the deployment contract is load ≥ 10× faster than build at this
//! size; see `exp_snapshot` for the scaling table), and `save`/`load`
//! regressions catch accidental per-element encoding slipping into the
//! bulk array paths.
//!
//! Run with `FTBFS_BENCH_JSON` to dump a baseline and
//! `FTBFS_BENCH_BASELINE` to gate on a committed one (see the criterion
//! shim docs); CI fails this bench on a >25% regression.

use criterion::{criterion_group, criterion_main, Criterion};
use ftb_core::{EngineCore, EngineOptions, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::VertexId;
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_snapshot(c: &mut Criterion) {
    let seed = 21u64;
    let source = VertexId(0);
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 2000, seed).generate();

    let build = || {
        let structure = TradeoffBuilder::new(0.3)
            .with_config(|cfg| cfg.with_seed(seed).serial())
            .build(&graph, &Sources::single(source))
            .expect("valid input");
        EngineCore::build_with(&graph, structure, EngineOptions::new().serial())
            .expect("matching graph")
    };
    let core = build();
    let bytes = core.write_snapshot(b"bench");

    let mut group = c.benchmark_group("snapshot");
    // The build side costs seconds per sample; a few samples pin its
    // order of magnitude, which is all the build/load ratio needs.
    group.sample_size(3);
    group.warm_up_time(std::time::Duration::ZERO);
    group.bench_function("build", |b| b.iter(|| black_box(build())));

    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.bench_function("save", |b| {
        b.iter(|| black_box(core.write_snapshot(b"bench")))
    });
    group.bench_function("load", |b| {
        b.iter(|| {
            black_box(
                EngineCore::read_snapshot(&bytes, EngineOptions::new().serial())
                    .expect("own snapshot loads"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
