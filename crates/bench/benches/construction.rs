//! Criterion benchmarks B1/B2: construction time of the `(b, r)` FT-BFS
//! structure as a function of ε and of n, plus the baseline construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_core::{build_baseline_ftbfs, build_ft_bfs, BuildConfig};
use ftb_graph::VertexId;
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_eps_sweep(c: &mut Criterion) {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 250, 1).generate();
    let mut group = c.benchmark_group("construction/eps_sweep_n250");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for eps in [0.1, 0.25, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let config = BuildConfig::new(eps).with_seed(1);
            b.iter(|| black_box(build_ft_bfs(&graph, VertexId(0), &config)));
        });
    }
    group.finish();
}

fn bench_n_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/n_sweep_eps0.3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [100usize, 200, 400] {
        let graph = Workload::new(WorkloadFamily::LayeredShallow, n, 2).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let config = BuildConfig::new(0.3).with_seed(2);
            b.iter(|| black_box(build_ft_bfs(graph, VertexId(0), &config)));
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/baseline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [200usize, 400] {
        let graph = Workload::new(WorkloadFamily::ErdosRenyi, n, 3).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let config = BuildConfig::new(1.0).with_seed(3);
            b.iter(|| black_box(build_baseline_ftbfs(graph, VertexId(0), &config)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eps_sweep, bench_n_sweep, bench_baseline);
criterion_main!(benches);
