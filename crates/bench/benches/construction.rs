//! Criterion benchmarks B1/B2: construction time of the `(b, r)` FT-BFS
//! structure as a function of ε and of n, plus the baseline construction and
//! the query engine's build-once/query-many serving path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ftb_core::{BaselineBuilder, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::VertexId;
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_eps_sweep(c: &mut Criterion) {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 250, 1).generate();
    let sources = Sources::single(VertexId(0));
    let mut group = c.benchmark_group("construction/eps_sweep_n250");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for eps in [0.1, 0.25, 0.5, 1.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let builder = TradeoffBuilder::new(eps).with_config(|c| c.with_seed(1));
            b.iter(|| black_box(builder.build(&graph, &sources).expect("valid input")));
        });
    }
    group.finish();
}

fn bench_n_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/n_sweep_eps0.3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [100usize, 200, 400] {
        let graph = Workload::new(WorkloadFamily::LayeredShallow, n, 2).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let builder = TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(2));
            let sources = Sources::single(VertexId(0));
            b.iter(|| black_box(builder.build(graph, &sources).expect("valid input")));
        });
    }
    group.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction/baseline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for n in [200usize, 400] {
        let graph = Workload::new(WorkloadFamily::ErdosRenyi, n, 3).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            let builder = BaselineBuilder::new().with_config(|c| c.with_seed(3));
            let sources = Sources::single(VertexId(0));
            b.iter(|| black_box(builder.build(graph, &sources).expect("valid input")));
        });
    }
    group.finish();
}

fn bench_query_engine(c: &mut Criterion) {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 400, 4).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(4))
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let far = VertexId((graph.num_vertices() - 1) as u32);
    let queries: Vec<_> = graph.edge_ids().map(|e| (far, e)).collect();

    let mut group = c.benchmark_group("query/engine_n400");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("preprocess", |b| {
        // The structure clone is setup, not preprocessing — keep it untimed.
        b.iter_batched(
            || structure.clone(),
            |s| black_box(FaultQueryEngine::new(&graph, s).unwrap()),
            BatchSize::PerIteration,
        );
    });
    group.bench_function("query_many_all_edges", |b| {
        let mut engine = FaultQueryEngine::new(&graph, structure.clone()).unwrap();
        b.iter(|| black_box(engine.query_many(&queries).expect("in range")));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_eps_sweep,
    bench_n_sweep,
    bench_baseline,
    bench_query_engine
);
criterion_main!(benches);
