//! Criterion benchmark B3: cost of the definition-level verifier and of the
//! exact-reinforcement post-pass, serial vs parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_core::{unprotected_edges, verify_structure, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::VertexId;
use ftb_par::ParallelConfig;
use ftb_sp::{ShortestPathTree, TieBreakWeights};
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_verifier(c: &mut Criterion) {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 300, 4).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(4))
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let weights = TieBreakWeights::generate(&graph, 4);
    let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));

    let mut group = c.benchmark_group("verification/structure_n300");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let par = ParallelConfig::with_threads(threads);
                b.iter(|| black_box(verify_structure(&graph, &tree, &structure, &par, false)));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("verification/exact_reinforcement_n300");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("unprotected_edges", |b| {
        let par = ParallelConfig::default();
        b.iter(|| black_box(unprotected_edges(&graph, &tree, structure.edge_set(), &par)));
    });
    group.finish();
}

criterion_group!(benches, bench_verifier);
criterion_main!(benches);
