//! Criterion benchmark B4: batched fault-query serving, serial vs sharded.
//!
//! One preprocessed engine answers the same ≥10k-query batch under a serial
//! and a multi-threaded `EngineOptions::parallel`; the sharded path must win
//! wall-clock on a multi-core runner while producing identical results
//! (asserted once outside the timed loop).

use criterion::{criterion_group, criterion_main, Criterion};
use ftb_core::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{EdgeId, VertexId};
use ftb_par::ParallelConfig;
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_query_many_sharding(c: &mut Criterion) {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 1000, 6).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|cfg| cfg.with_seed(6).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let stride = (graph.num_vertices() / 12).max(1);
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| {
            (0..graph.num_vertices())
                .step_by(stride)
                .map(move |v| (VertexId::new(v), e))
        })
        .collect();
    assert!(queries.len() >= 10_000);

    let mut serial =
        FaultQueryEngine::with_options(&graph, structure.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let mut sharded = FaultQueryEngine::with_options(
        &graph,
        structure,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    assert_eq!(
        serial.query_many(&queries).expect("in range"),
        sharded.query_many(&queries).expect("in range"),
        "sharding must not change answers"
    );

    let mut group = c.benchmark_group("serving/query_many_10k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("serial", |b| {
        b.iter(|| black_box(serial.query_many(&queries).expect("in range")));
    });
    group.bench_function("sharded_4_threads", |b| {
        b.iter(|| black_box(sharded.query_many(&queries).expect("in range")));
    });
    group.finish();
}

criterion_group!(benches, bench_query_many_sharding);
criterion_main!(benches);
