//! Criterion benchmark B6: incremental post-failure row repair vs full
//! CSR sweeps per cache miss.
//!
//! One preprocessed engine answers the same per-scenario batch twice: once
//! with the default serving path (incremental repair of the affected
//! subtrees + unaffected-target fast path) and once with
//! [`EngineOptions::with_force_full_sweep`] (every miss re-sweeps the whole
//! serving CSR — the pre-repair behaviour and the `FTBFS_FORCE_FULL_SWEEP`
//! differential-testing mode). The committed baseline pins both sides, so
//! the regression gate simultaneously asserts that the repaired path stays
//! fast *and* that the ≥ 2× gap to the full-sweep reference does not erode.
//!
//! Two batch shapes:
//!
//! * **targeted** — each fault set is probed at a sample of targets, the
//!   point-query serving shape. Most targets are provably unaffected, so
//!   the fast path answers them without a row and whole sweeps disappear;
//!   this is where the repair pipeline wins an order of magnitude.
//! * **dense** (`all-targets`) — every vertex probed against every fault
//!   set, so every miss *must* materialize a row and the comparison
//!   isolates repair vs full sweep with identical per-query overhead on
//!   both sides.
//!
//! Batches use more distinct fault sets (32) than the LRU holds (8), so
//! sets are cache misses — this measures the miss path, not the cache.
//!
//! Run with `FTBFS_BENCH_JSON` to dump a baseline and
//! `FTBFS_BENCH_BASELINE` to gate on a committed one (see the criterion
//! shim docs); CI fails this bench on a >25% regression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_core::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{EdgeId, FaultSet, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_row_repair(c: &mut Criterion) {
    let seed = 21u64;
    let source = VertexId(0);
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 2000, seed).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|cfg| cfg.with_seed(seed).serial())
        .build(&graph, &Sources::single(source))
        .expect("valid input");
    let stride = (graph.num_vertices() / 24).max(1);
    let targeted: Vec<VertexId> = (0..graph.num_vertices())
        .step_by(stride)
        .map(VertexId::new)
        .collect();

    let mut group = c.benchmark_group("row_repair");
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(500));

    let engines = |force: bool| -> FaultQueryEngine<'_> {
        FaultQueryEngine::with_options(
            &graph,
            structure.clone(),
            EngineOptions::new().serial().with_force_full_sweep(force),
        )
        .expect("matching graph")
    };

    // Single structure-edge failures (the seed paper's regime): every
    // distinct backup edge is one cache miss on the sparse-H tier.
    let single_queries: Vec<(VertexId, EdgeId)> = structure
        .backup_edges()
        .step_by(2)
        .take(32)
        .flat_map(|e| targeted.iter().map(move |&v| (v, e)))
        .collect();
    for (label, force) in [("repaired", false), ("full-sweep", true)] {
        let mut engine = engines(force);
        group.bench_with_input(
            BenchmarkId::new("single-edge", label),
            &single_queries,
            |b, queries| {
                b.iter(|| black_box(engine.query_many(queries).expect("in range")));
            },
        );
    }

    // Scenario families at targeted probes: tree-concentrated is the
    // adversarial pattern for a BFS structure (every fault hits T0, so no
    // batch is answered from the fault-free row); random-edges mixes tiers.
    for &scenario in &[FaultScenario::TreeConcentrated, FaultScenario::RandomEdges] {
        for f in [1usize, 2] {
            let fault_sets = scenario.generate(&graph, source, f, 32, seed);
            let queries: Vec<(VertexId, FaultSet)> = fault_sets
                .iter()
                .flat_map(|fs| targeted.iter().map(move |&v| (v, fs.clone())))
                .collect();
            for (label, force) in [("repaired", false), ("full-sweep", true)] {
                let mut engine = engines(force);
                group.bench_with_input(
                    BenchmarkId::new(scenario.name(), format!("f={f}/{label}")),
                    &queries,
                    |b, queries| {
                        b.iter(|| black_box(engine.query_many_faults(queries).expect("in range")));
                    },
                );
            }
        }
    }

    // Dense shape: every vertex probed, so each of the 32 misses must
    // materialize a row — repair vs full sweep head to head.
    let all_vertices: Vec<VertexId> = graph.vertices().collect();
    let dense_sets = FaultScenario::TreeConcentrated.generate(&graph, source, 1, 32, seed);
    let dense_queries: Vec<(VertexId, FaultSet)> = dense_sets
        .iter()
        .flat_map(|fs| all_vertices.iter().map(move |&v| (v, fs.clone())))
        .collect();
    for (label, force) in [("repaired", false), ("full-sweep", true)] {
        let mut engine = engines(force);
        group.bench_with_input(
            BenchmarkId::new("tree-concentrated-dense", format!("f=1/{label}")),
            &dense_queries,
            |b, queries| {
                b.iter(|| black_box(engine.query_many_faults(queries).expect("in range")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_row_repair);
criterion_main!(benches);
