//! Criterion benchmark B5: multi-fault batched serving per scenario family.
//!
//! One preprocessed engine answers a per-scenario batch of
//! `(vertex, fault set)` queries for `f ∈ {1, 2}`; single-edge batches on
//! the same engine are benchmarked alongside as the reference the fault-set
//! machinery must not slow down. Run with `FTBFS_BENCH_JSON` to dump a
//! baseline and `FTBFS_BENCH_BASELINE` to gate on a committed one (see the
//! criterion shim docs); CI fails this bench on a >25% regression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_core::{EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
use ftb_graph::{EdgeId, FaultSet, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_multi_fault_scenarios(c: &mut Criterion) {
    let seed = 12u64;
    let source = VertexId(0);
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 600, seed).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|cfg| cfg.with_seed(seed).serial())
        .build(&graph, &Sources::single(source))
        .expect("valid input");
    let stride = (graph.num_vertices() / 16).max(1);
    let vertices: Vec<VertexId> = (0..graph.num_vertices())
        .step_by(stride)
        .map(VertexId::new)
        .collect();

    let mut group = c.benchmark_group("multi_fault");
    // Per-iteration times are around a millisecond and noisy on shared
    // runners; a larger sample keeps the gated means stable.
    group.sample_size(40);
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Reference: the historic single-edge batch on the same engine.
    let single_queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .step_by(3)
        .flat_map(|e| vertices.iter().map(move |&v| (v, e)))
        .collect();
    let mut engine =
        FaultQueryEngine::with_options(&graph, structure.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    group.bench_function("single-edge-reference", |b| {
        b.iter(|| black_box(engine.query_many(&single_queries).expect("in range")));
    });

    for &scenario in FaultScenario::all() {
        for f in [1usize, 2] {
            let fault_sets = scenario.generate(&graph, source, f, 48, seed);
            let queries: Vec<(VertexId, FaultSet)> = fault_sets
                .iter()
                .flat_map(|fs| vertices.iter().map(move |&v| (v, fs.clone())))
                .collect();
            let mut engine = FaultQueryEngine::with_options(
                &graph,
                structure.clone(),
                EngineOptions::new().serial(),
            )
            .expect("matching graph");
            group.bench_with_input(
                BenchmarkId::new(scenario.name(), format!("f={f}")),
                &queries,
                |b, queries| {
                    b.iter(|| black_box(engine.query_many_faults(queries).expect("in range")));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multi_fault_scenarios);
criterion_main!(benches);
