//! Criterion benchmark B4: the substrate layers — unique shortest paths,
//! replacement distances and Algorithm `Pcons` — measured in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftb_graph::VertexId;
use ftb_par::ParallelConfig;
use ftb_rp::ReplacementPaths;
use ftb_sp::{LexSearch, ReplacementDistances, ShortestPathTree, TieBreakWeights};
use ftb_tree::HeavyPathDecomposition;
use ftb_workloads::{Workload, WorkloadFamily};
use std::hint::black_box;

fn bench_substrates(c: &mut Criterion) {
    let graph = Workload::new(WorkloadFamily::ErdosRenyi, 400, 5).generate();
    let weights = TieBreakWeights::generate(&graph, 5);
    let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));

    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("lex_sssp_n400", |b| {
        b.iter(|| black_box(LexSearch::run(&graph, &weights, VertexId(0))));
    });

    group.bench_function("sp_tree_n400", |b| {
        b.iter(|| black_box(ShortestPathTree::build(&graph, &weights, VertexId(0))));
    });

    group.bench_function("heavy_path_decomposition_n400", |b| {
        b.iter(|| black_box(HeavyPathDecomposition::build(&tree)));
    });

    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("replacement_distances_n400/threads", threads),
            &threads,
            |b, &threads| {
                let par = ParallelConfig::with_threads(threads);
                b.iter(|| black_box(ReplacementDistances::compute(&graph, &tree, &par)));
            },
        );
    }

    let dists = ReplacementDistances::compute(&graph, &tree, &ParallelConfig::default());
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pcons_n400/threads", threads),
            &threads,
            |b, &threads| {
                let par = ParallelConfig::with_threads(threads);
                b.iter(|| {
                    black_box(ReplacementPaths::compute(
                        &graph, &weights, &tree, &dists, &par,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
