//! Preorder Euler intervals over a parent-pointer tree row.
//!
//! The incremental post-failure row repair of the query engine rests on one
//! structural fact (Parter–Peleg 2013): a fault can only change the distance
//! of vertices whose canonical shortest path *uses* the failed element —
//! i.e. the descendants, in the fault-free BFS tree, of the failed tree
//! edge's child endpoint (or of the failed vertex). [`EulerTourIndex`] makes
//! that affected set addressable in `O(1)`: it assigns every tree vertex a
//! preorder number `tin` such that the subtree of `v` is exactly the
//! contiguous range `tin(v) .. tout(v)` of the preorder sequence, which the
//! index also materialises as the [`EulerTourIndex::order`] array.
//!
//! Unlike [`TreeIndex`](crate::TreeIndex), which is built from a
//! [`ShortestPathTree`](ftb_sp::ShortestPathTree) and answers LCA queries,
//! this index is built straight from a *parent row* — the
//! `Option<(parent, edge)>` per vertex that a BFS sweep leaves behind — so a
//! serving engine can index the trees of its preprocessed fault-free rows
//! without rebuilding any tree object.

use ftb_graph::VertexId;

/// Preorder entry sentinel for vertices outside the tree.
const OUT_OF_TREE: u32 = u32::MAX;

/// Preorder numbering of a rooted tree given as a parent-pointer row, with
/// `O(1)` subtree intervals and ancestor tests.
///
/// Vertices whose parent entry is `None` (other than the root) are treated
/// as unreachable: they get no preorder number, [`EulerTourIndex::in_tree`]
/// is `false` for them, and ancestor tests involving them answer `false`.
#[derive(Clone, Debug)]
pub struct EulerTourIndex {
    root: VertexId,
    /// Preorder entry time per vertex ([`OUT_OF_TREE`] if unreachable).
    tin: Vec<u32>,
    /// One past the preorder entry time of the last descendant, so the
    /// subtree of `v` is `order[tin(v) .. tout(v)]`.
    tout: Vec<u32>,
    /// The preorder sequence itself: `order[tin(v)] == v`.
    order: Vec<VertexId>,
}

impl EulerTourIndex {
    /// Build the index from the parent row of a BFS/SP tree rooted at
    /// `root`. `parents[v]` is `Some((parent, edge_payload))` for every
    /// reachable non-root vertex; the edge payload is ignored, so any row
    /// shape (graph edge ids, weights, …) works.
    ///
    /// Runs in `O(n)` time and space; iterative, so path-shaped trees of any
    /// depth are fine.
    pub fn from_parents<E: Copy>(root: VertexId, parents: &[Option<(VertexId, E)>]) -> Self {
        let n = parents.len();
        // Children counts → CSR-style child buckets (children of each vertex
        // in ascending vertex-id order, so the preorder is deterministic).
        let mut child_count = vec![0u32; n];
        for p in parents.iter().flatten() {
            child_count[p.0.index()] += 1;
        }
        let mut child_start = vec![0u32; n + 1];
        for i in 0..n {
            child_start[i + 1] = child_start[i] + child_count[i];
        }
        let mut cursor = child_start.clone();
        let mut children = vec![VertexId(0); child_start[n] as usize];
        for (i, p) in parents.iter().enumerate() {
            if let Some((p, _)) = p {
                children[cursor[p.index()] as usize] = VertexId::new(i);
                cursor[p.index()] += 1;
            }
        }

        let mut tin = vec![OUT_OF_TREE; n];
        let mut tout = vec![OUT_OF_TREE; n];
        let mut order = Vec::new();
        if root.index() < n {
            // Iterative preorder DFS; (vertex, next-child cursor) frames.
            let mut stack: Vec<(VertexId, u32)> = vec![(root, child_start[root.index()])];
            tin[root.index()] = 0;
            order.push(root);
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < child_start[v.index() + 1] {
                    let c = children[*next as usize];
                    *next += 1;
                    tin[c.index()] = order.len() as u32;
                    order.push(c);
                    stack.push((c, child_start[c.index()]));
                } else {
                    tout[v.index()] = order.len() as u32;
                    stack.pop();
                }
            }
        }
        EulerTourIndex {
            root,
            tin,
            tout,
            order,
        }
    }

    /// The tree root.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// `true` if `v` is reachable (has a preorder number).
    #[inline]
    pub fn in_tree(&self, v: VertexId) -> bool {
        self.tin[v.index()] != OUT_OF_TREE
    }

    /// Number of tree vertices (length of the preorder sequence).
    #[inline]
    pub fn tree_size(&self) -> usize {
        self.order.len()
    }

    /// The preorder sequence; the subtree of `v` occupies
    /// `order()[subtree(v)]`.
    #[inline]
    pub fn order(&self) -> &[VertexId] {
        &self.order
    }

    /// The preorder interval of `v`'s subtree (as a range into
    /// [`EulerTourIndex::order`]); empty for out-of-tree vertices.
    #[inline]
    pub fn subtree(&self, v: VertexId) -> std::ops::Range<usize> {
        let t = self.tin[v.index()];
        if t == OUT_OF_TREE {
            return 0..0;
        }
        t as usize..self.tout[v.index()] as usize
    }

    /// Number of vertices in `v`'s subtree (0 for out-of-tree vertices).
    #[inline]
    pub fn subtree_size(&self, v: VertexId) -> usize {
        self.subtree(v).len()
    }

    /// `true` if `a` is an ancestor of `b` (every tree vertex is an ancestor
    /// of itself); `false` if either vertex is outside the tree.
    #[inline]
    pub fn is_ancestor(&self, a: VertexId, b: VertexId) -> bool {
        let (ta, tb) = (self.tin[a.index()], self.tin[b.index()]);
        ta != OUT_OF_TREE && tb != OUT_OF_TREE && ta <= tb && tb < self.tout[a.index()]
    }

    /// The preorder number of `v` (`None` for out-of-tree vertices).
    ///
    /// `v` lies inside the subtree interval `a..b` of some vertex exactly
    /// when `a <= preorder(v) < b` — the primitive behind the batched
    /// membership search of [`covered_keys`].
    #[inline]
    pub fn preorder(&self, v: VertexId) -> Option<u32> {
        let t = self.tin[v.index()];
        (t != OUT_OF_TREE).then_some(t)
    }

    /// Serialize as the root plus the three flat preorder arrays.
    pub fn store_into(&self, w: &mut ftb_io::Writer) {
        w.put_u32(self.root.0);
        w.put_u32_slice(&self.tin);
        w.put_u32_slice(&self.tout);
        let flat: Vec<u32> = self.order.iter().map(|v| v.0).collect();
        w.put_u32_slice(&flat);
    }

    /// Decode an index written by [`EulerTourIndex::store_into`] for a tree
    /// over `num_vertices` vertices.
    ///
    /// Revalidates the interval invariants the repair sweeps rely on: `tin`
    /// and `tout` agree on tree membership, `order[tin(v)] == v` for every
    /// in-tree vertex, the in-tree count matches the preorder sequence
    /// length (so `order` is a permutation of the in-tree vertices), every
    /// subtree interval is non-empty and bounded by the sequence, and the
    /// root is the first preorder vertex whenever the tree is non-empty.
    pub fn load_from(
        r: &mut ftb_io::Reader<'_>,
        num_vertices: usize,
    ) -> Result<Self, ftb_io::SnapshotError> {
        let bad = |detail: &'static str| ftb_io::SnapshotError::Malformed {
            section: "euler tour index",
            detail,
        };
        let root = VertexId(r.get_u32()?);
        let tin = r.get_u32_vec()?;
        let tout = r.get_u32_vec()?;
        let order: Vec<VertexId> = r.get_u32_vec()?.into_iter().map(VertexId).collect();
        if tin.len() != num_vertices || tout.len() != num_vertices {
            return Err(bad("tin/tout length does not match vertex count"));
        }
        if order.len() > num_vertices {
            return Err(bad("preorder sequence longer than vertex count"));
        }
        let mut in_tree = 0usize;
        for v in 0..num_vertices {
            match (tin[v] == OUT_OF_TREE, tout[v] == OUT_OF_TREE) {
                (true, true) => {}
                (false, false) => {
                    in_tree += 1;
                    let (t_in, t_out) = (tin[v] as usize, tout[v] as usize);
                    if t_in >= order.len() || t_out > order.len() || t_out <= t_in {
                        return Err(bad("subtree interval out of bounds"));
                    }
                    if order[t_in].index() != v {
                        return Err(bad("preorder sequence disagrees with tin"));
                    }
                }
                _ => return Err(bad("tin/tout disagree on tree membership")),
            }
        }
        if in_tree != order.len() {
            return Err(bad("in-tree count does not match preorder length"));
        }
        if let Some(&first) = order.first() {
            if root != first {
                return Err(bad("root is not the first preorder vertex"));
            }
        }
        Ok(EulerTourIndex {
            root,
            tin,
            tout,
            order,
        })
    }
}

/// Batched interval membership: report every key whose preorder number
/// falls inside one of the `intervals`.
///
/// `intervals` are disjoint half-open `(start, end)` preorder ranges in
/// ascending order (the merged affected intervals of a fault set);
/// `keys` are `(preorder, payload)` pairs sorted ascending by preorder
/// number (duplicates allowed). Each interval binary-searches its first
/// key, then walks the covered run — `O(|intervals| · log |keys| + hits)`,
/// the one-to-many replacement for probing each key against each interval
/// separately. `hit` receives the payload of every covered key, in
/// ascending preorder order.
pub fn covered_keys(intervals: &[(u32, u32)], keys: &[(u32, u32)], mut hit: impl FnMut(u32)) {
    let mut lo = 0usize;
    for &(start, end) in intervals {
        // Intervals are sorted, so keys before `lo` can never match again.
        let first = lo + keys[lo..].partition_point(|&(t, _)| t < start);
        let mut i = first;
        while i < keys.len() && keys[i].0 < end {
            hit(keys[i].1);
            i += 1;
        }
        lo = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// parents[v] = Some((parent, ())) — unit edge payload.
    fn idx(root: u32, parents: &[Option<u32>]) -> EulerTourIndex {
        let rows: Vec<Option<(VertexId, ())>> = parents
            .iter()
            .map(|p| p.map(|p| (VertexId(p), ())))
            .collect();
        EulerTourIndex::from_parents(VertexId(root), &rows)
    }

    #[test]
    fn path_tree_intervals_are_suffixes() {
        // 0 -> 1 -> 2 -> 3
        let t = idx(0, &[None, Some(0), Some(1), Some(2)]);
        assert_eq!(t.tree_size(), 4);
        assert_eq!(
            t.order(),
            &[VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
        assert_eq!(t.subtree(VertexId(1)), 1..4);
        assert_eq!(t.subtree_size(VertexId(2)), 2);
        assert!(t.is_ancestor(VertexId(0), VertexId(3)));
        assert!(t.is_ancestor(VertexId(2), VertexId(2)));
        assert!(!t.is_ancestor(VertexId(3), VertexId(2)));
        assert_eq!(t.root(), VertexId(0));
    }

    #[test]
    fn star_tree_subtrees_are_singletons() {
        let t = idx(0, &[None, Some(0), Some(0), Some(0)]);
        assert_eq!(t.subtree(VertexId(0)), 0..4);
        for v in 1..4u32 {
            assert_eq!(t.subtree_size(VertexId(v)), 1);
            assert!(t.is_ancestor(VertexId(0), VertexId(v)));
            assert!(!t.is_ancestor(VertexId(1), VertexId(v)) || v == 1);
        }
    }

    #[test]
    fn branching_tree_intervals_are_contiguous_subtrees() {
        //      0
        //     / \
        //    1   2
        //   / \    \
        //  3   4    5
        let t = idx(0, &[None, Some(0), Some(0), Some(1), Some(1), Some(2)]);
        for v in 0..6u32 {
            let v = VertexId(v);
            let range = t.subtree(v);
            // every vertex in the interval is a descendant, everything
            // outside is not
            for (pos, &w) in t.order().iter().enumerate() {
                assert_eq!(
                    range.contains(&pos),
                    t.is_ancestor(v, w),
                    "subtree({v:?}) vs {w:?}"
                );
            }
        }
        assert_eq!(t.subtree_size(VertexId(1)), 3);
        assert_eq!(t.subtree_size(VertexId(2)), 2);
    }

    #[test]
    fn unreachable_vertices_are_out_of_tree() {
        let t = idx(0, &[None, Some(0), None, Some(2)]);
        assert!(t.in_tree(VertexId(0)));
        assert!(t.in_tree(VertexId(1)));
        assert!(!t.in_tree(VertexId(2)), "disconnected component");
        assert!(!t.in_tree(VertexId(3)), "reachable only from 2");
        assert_eq!(t.tree_size(), 2);
        assert_eq!(t.subtree(VertexId(2)), 0..0);
        assert!(!t.is_ancestor(VertexId(0), VertexId(2)));
        assert!(!t.is_ancestor(VertexId(2), VertexId(3)));
    }

    #[test]
    fn preorder_matches_order_positions() {
        let t = idx(0, &[None, Some(0), Some(0), Some(1)]);
        for (pos, &v) in t.order().iter().enumerate() {
            assert_eq!(t.preorder(v), Some(pos as u32));
        }
        let u = idx(0, &[None, Some(0), None]);
        assert_eq!(u.preorder(VertexId(2)), None, "out-of-tree vertex");
    }

    #[test]
    fn covered_keys_matches_naive_interval_probes() {
        let intervals = [(2u32, 5u32), (7, 8), (10, 14)];
        let keys: Vec<(u32, u32)> = [0u32, 1, 2, 4, 4, 5, 6, 7, 9, 10, 13, 14, 20]
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        let mut got = Vec::new();
        covered_keys(&intervals, &keys, |payload| got.push(payload));
        let naive: Vec<u32> = keys
            .iter()
            .filter(|&&(t, _)| intervals.iter().any(|&(a, b)| a <= t && t < b))
            .map(|&(_, p)| p)
            .collect();
        assert_eq!(got, naive);
    }

    #[test]
    fn covered_keys_handles_empty_inputs() {
        let mut hits = 0u32;
        covered_keys(&[], &[(1, 0), (2, 1)], |_| hits += 1);
        assert_eq!(hits, 0);
        covered_keys(&[(0, 10)], &[], |_| hits += 1);
        assert_eq!(hits, 0);
        covered_keys(&[(5, 5)], &[(5, 0)], |_| hits += 1);
        assert_eq!(hits, 0, "empty interval covers nothing");
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        let n = 100_000u32;
        let parents: Vec<Option<u32>> = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let t = idx(0, &parents);
        assert_eq!(t.tree_size(), n as usize);
        assert!(t.is_ancestor(VertexId(0), VertexId(n - 1)));
        assert_eq!(t.subtree_size(VertexId(n / 2)), (n - n / 2) as usize);
    }
}
