//! Rooted-tree utilities on the BFS tree `T0`.
//!
//! The Phase S2 machinery of the paper needs three tree-structural tools:
//!
//! * ancestor tests and least common ancestors on `T0` (used to define the
//!   `∼` relation between failing edges and to reason about detours) —
//!   [`TreeIndex`],
//! * the Sleator–Tarjan / Baswana–Khanna *heavy-path decomposition* of `T0`
//!   (Fact 3.3 / Fact 4.1) — [`HeavyPathDecomposition`],
//! * the exponential decomposition of each shortest path `π(s, v)` into
//!   `O(log n)` subsegments of geometrically decreasing length (Eq. 5) —
//!   [`SegmentDecomposition`].
//!
//! The serving side adds a fourth tool: [`EulerTourIndex`], preorder
//! subtree intervals built straight from a BFS parent row, which the query
//! engine uses to address the *affected set* of a fault in `O(1)` for its
//! incremental post-failure row repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod euler;
pub mod hld;
pub mod index;
pub mod segments;

pub use euler::{covered_keys, EulerTourIndex};
pub use hld::{HeavyPathDecomposition, TreePath};
pub use index::TreeIndex;
pub use segments::SegmentDecomposition;
