//! Heavy-path decomposition of the BFS tree (Fact 3.3 / Fact 4.1).
//!
//! The decomposition splits `T0` into vertex-disjoint root-to-leaf-ish paths
//! `ψ₁, …, ψ_t` (the "heavy paths"): starting at the root of a (sub)tree, the
//! path repeatedly descends into the child with the largest subtree. Removing
//! the path splits the subtree into hanging subtrees of at most half the
//! size; recursing on each hanging subtree gives `O(log n)` recursion levels.
//!
//! Following the paper's terminology:
//! * `E⁺(TD)` — tree edges lying **on** some decomposition path,
//! * `E⁻(TD)` — the remaining *glue* edges connecting a hanging subtree to
//!   its parent path,
//! * Fact 4.1 — every root-to-vertex path `π(s, v)` crosses `O(log n)` glue
//!   edges and intersects `O(log n)` decomposition paths.

use ftb_graph::{BitSet, EdgeId, VertexId};
use ftb_sp::ShortestPathTree;

/// One path `ψ` of the decomposition.
#[derive(Clone, Debug)]
pub struct TreePath {
    /// Index of this path within the decomposition.
    pub id: usize,
    /// Recursion level at which the path was produced (the root path has
    /// level 0).
    pub level: usize,
    /// Vertices from the top (`s_ψ`, closest to the source) down to the
    /// bottom (`t_ψ`).
    pub vertices: Vec<VertexId>,
    /// Tree edges between consecutive path vertices (`|vertices| - 1` of
    /// them).
    pub edges: Vec<EdgeId>,
}

impl TreePath {
    /// Top endpoint `s_ψ` (closest to the source).
    pub fn top(&self) -> VertexId {
        self.vertices[0]
    }

    /// Bottom endpoint `t_ψ` (deepest vertex).
    pub fn bottom(&self) -> VertexId {
        *self.vertices.last().unwrap()
    }

    /// Number of edges on the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for a single-vertex path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// The heavy-path decomposition of a [`ShortestPathTree`].
#[derive(Clone, Debug)]
pub struct HeavyPathDecomposition {
    paths: Vec<TreePath>,
    /// For each vertex, the id of the decomposition path containing it
    /// (`usize::MAX` for unreachable vertices).
    path_of_vertex: Vec<usize>,
    /// For each edge id: `Some(path_id)` if the edge lies on a decomposition
    /// path (`E⁺`), `None` otherwise.
    path_of_edge: Vec<Option<usize>>,
    /// Glue edges `E⁻(TD)`: tree edges not on any decomposition path.
    glue_edges: Vec<EdgeId>,
    glue_edge_set: BitSet,
    num_levels: usize,
}

impl HeavyPathDecomposition {
    /// Decompose the tree.
    pub fn build(tree: &ShortestPathTree) -> Self {
        let n = tree.num_vertices();
        let num_edges_bound = tree
            .tree_edges()
            .iter()
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        // subtree sizes via reverse depth order
        let mut size = vec![0usize; n];
        let order = tree.vertices_by_depth();
        for &v in order.iter().rev() {
            size[v.index()] = 1 + tree
                .children(v)
                .iter()
                .map(|c| size[c.index()])
                .sum::<usize>();
        }

        let mut paths: Vec<TreePath> = Vec::new();
        let mut path_of_vertex = vec![usize::MAX; n];
        let mut path_of_edge: Vec<Option<usize>> = vec![None; num_edges_bound];
        let mut num_levels = 0usize;

        // Work queue of (subtree root, recursion level).
        let mut queue: Vec<(VertexId, usize)> = Vec::new();
        if tree.num_reachable() > 0 {
            queue.push((tree.source(), 0));
        }
        while let Some((root, level)) = queue.pop() {
            num_levels = num_levels.max(level + 1);
            // Walk the heavy chain from `root` to a leaf.
            let mut vertices = vec![root];
            let mut edges = Vec::new();
            let mut cur = root;
            loop {
                let heavy = tree
                    .children(cur)
                    .iter()
                    .copied()
                    .max_by_key(|c| size[c.index()]);
                match heavy {
                    Some(next) => {
                        let (_, e) = tree.parent(next).expect("child has a parent edge");
                        // queue the light children as new subtree roots
                        for &c in tree.children(cur) {
                            if c != next {
                                queue.push((c, level + 1));
                            }
                        }
                        vertices.push(next);
                        edges.push(e);
                        cur = next;
                    }
                    None => break,
                }
            }
            let id = paths.len();
            for &v in &vertices {
                path_of_vertex[v.index()] = id;
            }
            for &e in &edges {
                if e.index() >= path_of_edge.len() {
                    path_of_edge.resize(e.index() + 1, None);
                }
                path_of_edge[e.index()] = Some(id);
            }
            paths.push(TreePath {
                id,
                level,
                vertices,
                edges,
            });
        }

        // Glue edges: tree edges not on any path.
        let max_edge = tree
            .tree_edges()
            .iter()
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0)
            .max(path_of_edge.len());
        let mut glue_edge_set = BitSet::new(max_edge);
        let mut glue_edges = Vec::new();
        for &e in tree.tree_edges() {
            let on_path = path_of_edge.get(e.index()).copied().flatten().is_some();
            if !on_path {
                glue_edges.push(e);
                glue_edge_set.insert(e.index());
            }
        }

        HeavyPathDecomposition {
            paths,
            path_of_vertex,
            path_of_edge,
            glue_edges,
            glue_edge_set,
            num_levels,
        }
    }

    /// All decomposition paths.
    pub fn paths(&self) -> &[TreePath] {
        &self.paths
    }

    /// The path containing vertex `v`, if `v` is in the tree.
    pub fn path_of_vertex(&self, v: VertexId) -> Option<&TreePath> {
        match self.path_of_vertex.get(v.index()) {
            Some(&id) if id != usize::MAX => Some(&self.paths[id]),
            _ => None,
        }
    }

    /// The path containing edge `e`, if `e ∈ E⁺(TD)`.
    pub fn path_of_edge(&self, e: EdgeId) -> Option<&TreePath> {
        self.path_of_edge
            .get(e.index())
            .copied()
            .flatten()
            .map(|id| &self.paths[id])
    }

    /// `true` if `e` is a glue edge (`e ∈ E⁻(TD)`).
    pub fn is_glue_edge(&self, e: EdgeId) -> bool {
        self.glue_edge_set.contains(e.index())
    }

    /// The glue edges `E⁻(TD)`.
    pub fn glue_edges(&self) -> &[EdgeId] {
        &self.glue_edges
    }

    /// Number of recursion levels used (O(log n)).
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Number of decomposition paths.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// The distinct decomposition paths intersected by the root-to-`v` tree
    /// path, ordered from `v` upwards (Fact 4.1 bounds their number by
    /// `O(log n)`).
    pub fn paths_crossed_by(&self, tree: &ShortestPathTree, v: VertexId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = Some(v);
        while let Some(x) = cur {
            if let Some(p) = self.path_of_vertex(x) {
                if out.last() != Some(&p.id) {
                    out.push(p.id);
                }
            }
            cur = tree.parent(x).map(|(p, _)| p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::{generators, Graph};
    use ftb_sp::TieBreakWeights;

    fn decompose(g: &Graph, seed: u64) -> (ShortestPathTree, HeavyPathDecomposition) {
        let w = TieBreakWeights::generate(g, seed);
        let t = ShortestPathTree::build(g, &w, VertexId(0));
        let d = HeavyPathDecomposition::build(&t);
        (t, d)
    }

    #[test]
    fn a_path_graph_is_one_heavy_path() {
        let g = generators::path(20);
        let (t, d) = decompose(&g, 1);
        assert_eq!(d.num_paths(), 1);
        assert_eq!(d.num_levels(), 1);
        assert!(d.glue_edges().is_empty());
        let p = &d.paths()[0];
        assert_eq!(p.top(), t.source());
        assert_eq!(p.bottom(), VertexId(19));
        assert_eq!(p.len(), 19);
        assert!(!p.is_empty());
    }

    #[test]
    fn a_star_has_one_long_path_and_singleton_paths() {
        let g = generators::star(8);
        let (_t, d) = decompose(&g, 2);
        // heavy path = centre + one leaf; every other leaf is its own path
        assert_eq!(d.num_paths(), 8);
        assert_eq!(d.glue_edges().len(), 7);
        let singletons = d.paths().iter().filter(|p| p.is_empty()).count();
        assert_eq!(singletons, 7);
    }

    #[test]
    fn vertex_and_edge_memberships_are_consistent() {
        let g = generators::grid(6, 6);
        let (t, d) = decompose(&g, 3);
        // every reachable vertex belongs to exactly one path
        let mut seen = vec![false; g.num_vertices()];
        for p in d.paths() {
            for &v in &p.vertices {
                assert!(!seen[v.index()], "vertex on two decomposition paths");
                seen[v.index()] = true;
                assert_eq!(d.path_of_vertex(v).unwrap().id, p.id);
            }
            for &e in &p.edges {
                assert_eq!(d.path_of_edge(e).unwrap().id, p.id);
                assert!(!d.is_glue_edge(e));
            }
        }
        assert!(seen.iter().all(|&x| x));
        // every tree edge is either on a path or glue
        for &e in t.tree_edges() {
            let on_path = d.path_of_edge(e).is_some();
            assert_ne!(on_path, d.is_glue_edge(e));
        }
        assert_eq!(
            d.paths().iter().map(|p| p.edges.len()).sum::<usize>() + d.glue_edges().len(),
            t.tree_edges().len()
        );
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let g = generators::grid(16, 16);
        let (_t, d) = decompose(&g, 4);
        let n = g.num_vertices() as f64;
        assert!(
            d.num_levels() <= (n.log2().ceil() as usize) + 1,
            "levels {} too deep for n = {}",
            d.num_levels(),
            n
        );
    }

    #[test]
    fn fact_4_1_each_root_path_crosses_few_decomposition_paths() {
        let g = generators::grid(12, 12);
        let (t, d) = decompose(&g, 5);
        let bound = ((g.num_vertices() as f64).log2().ceil() as usize) + 1;
        for v in g.vertices() {
            let crossed = d.paths_crossed_by(&t, v);
            assert!(
                crossed.len() <= bound,
                "π(s,{v:?}) crosses {} paths",
                crossed.len()
            );
            // glue edges on the root path are also O(log n)
            let glue_on_path = t
                .path_edges_to(v)
                .iter()
                .filter(|&&e| d.is_glue_edge(e))
                .count();
            assert!(glue_on_path <= bound);
        }
    }

    #[test]
    fn heavy_path_property_subtrees_halve() {
        // Removing the level-0 path leaves hanging subtrees of size <= n/2.
        let g = generators::grid(9, 9);
        let (t, d) = decompose(&g, 6);
        let n = t.num_reachable();
        let root_path = d
            .paths()
            .iter()
            .find(|p| p.level == 0)
            .expect("root path exists");
        // compute subtree sizes
        let mut size = vec![0usize; g.num_vertices()];
        for &v in t.vertices_by_depth().iter().rev() {
            size[v.index()] = 1 + t.children(v).iter().map(|c| size[c.index()]).sum::<usize>();
        }
        for &v in &root_path.vertices {
            for &c in t.children(v) {
                if !root_path.vertices.contains(&c) {
                    assert!(
                        size[c.index()] <= n / 2,
                        "hanging subtree at {c:?} has size {} > n/2",
                        size[c.index()]
                    );
                }
            }
        }
    }

    #[test]
    fn disconnected_vertices_have_no_path() {
        let mut b = ftb_graph::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(2), VertexId(3));
        let g = b.build();
        let (_t, d) = decompose(&g, 7);
        assert!(d.path_of_vertex(VertexId(2)).is_none());
        assert!(d.path_of_vertex(VertexId(0)).is_some());
    }
}
