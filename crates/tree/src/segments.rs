//! Exponential decomposition of a shortest path into `O(log n)` segments.
//!
//! Sub-Phase (S2.2) of the paper decomposes the `s–v` shortest path
//! `π(s, v) = [u_0 = s, …, u_k = v]` into `k' = ⌊log |π(s,v)|⌋` subsegments of
//! geometrically decreasing length: segment `j` covers (roughly) the first
//! half of what remains after segments `1..j-1`. The key property (Eq. 5) is
//! that the suffix below segment `j` is at least half as long as segment `j`
//! itself — this is what makes detours protecting edges of a segment long.
//!
//! We index a path's edges `0..len` (edge `i` joins `u_i` and `u_{i+1}`) and
//! expose, for every edge index, the segment containing it. The final segment
//! is extended to absorb the `O(1)` leftover so that the segments exactly
//! cover the path.

/// Decomposition of a length-`len` path into exponentially shrinking
/// segments of edge indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentDecomposition {
    /// Segment boundaries over edge indices: segment `j` covers
    /// `bounds[j]..bounds[j+1]`.
    bounds: Vec<usize>,
    len: usize,
}

impl SegmentDecomposition {
    /// Decompose a path with `len` edges.
    ///
    /// A path with 0 or 1 edges yields a single segment covering everything.
    pub fn new(len: usize) -> Self {
        if len <= 1 {
            return SegmentDecomposition {
                bounds: vec![0, len],
                len,
            };
        }
        let k_prime = (usize::BITS - 1 - len.leading_zeros()) as usize; // ⌊log2 len⌋
        let mut bounds = vec![0usize];
        let mut cumulative = 0f64;
        for j in 1..=k_prime {
            cumulative += len as f64 / (1u64 << j) as f64;
            let b = cumulative.ceil() as usize;
            let b = b.min(len);
            if b > *bounds.last().unwrap() {
                bounds.push(b);
            }
        }
        // Extend the last segment to cover the whole path.
        if *bounds.last().unwrap() < len {
            *bounds.last_mut().unwrap() = len;
        }
        SegmentDecomposition { bounds, len }
    }

    /// Number of edges of the decomposed path.
    pub fn path_len(&self) -> usize {
        self.len
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Edge-index range `start..end` of segment `j` (0-based).
    ///
    /// # Panics
    /// Panics if `j >= num_segments()`.
    pub fn segment_range(&self, j: usize) -> std::ops::Range<usize> {
        assert!(j < self.num_segments(), "segment index out of range");
        self.bounds[j]..self.bounds[j + 1]
    }

    /// Index of the segment containing edge index `i`, if `i < path_len()`.
    pub fn segment_of(&self, i: usize) -> Option<usize> {
        if i >= self.len {
            return None;
        }
        // bounds is small (O(log n)); a linear scan is fine and branch-friendly.
        (0..self.num_segments()).find(|&j| i < self.bounds[j + 1])
    }

    /// Length (in edges) of segment `j`.
    pub fn segment_len(&self, j: usize) -> usize {
        let r = self.segment_range(j);
        r.end - r.start
    }

    /// Total length of all segments strictly below (after) segment `j`.
    pub fn suffix_len_below(&self, j: usize) -> usize {
        assert!(j < self.num_segments());
        self.len - self.bounds[j + 1]
    }

    /// Iterate over all segment ranges in order.
    pub fn segments(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_segments()).map(|j| self.segment_range(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trivial_paths_have_one_segment() {
        let d0 = SegmentDecomposition::new(0);
        assert_eq!(d0.num_segments(), 1);
        assert_eq!(d0.segment_range(0), 0..0);
        assert_eq!(d0.segment_of(0), None);

        let d1 = SegmentDecomposition::new(1);
        assert_eq!(d1.num_segments(), 1);
        assert_eq!(d1.segment_of(0), Some(0));
        assert_eq!(d1.path_len(), 1);
    }

    #[test]
    fn first_segment_is_about_half() {
        let d = SegmentDecomposition::new(64);
        assert_eq!(d.segment_range(0), 0..32);
        assert_eq!(d.segment_range(1), 32..48);
        assert!(d.num_segments() <= 7);
        // segments cover the path exactly
        let total: usize = d.segments().map(|r| r.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn segment_count_is_logarithmic() {
        for len in [2usize, 5, 17, 100, 1000, 4096, 100_000] {
            let d = SegmentDecomposition::new(len);
            let bound = (len as f64).log2().floor() as usize + 1;
            assert!(
                d.num_segments() <= bound,
                "len {len}: {} segments > bound {bound}",
                d.num_segments()
            );
        }
    }

    #[test]
    fn segment_of_matches_ranges() {
        let d = SegmentDecomposition::new(100);
        for i in 0..100 {
            let j = d.segment_of(i).unwrap();
            assert!(d.segment_range(j).contains(&i));
        }
        assert_eq!(d.segment_of(100), None);
        assert_eq!(d.segment_of(5000), None);
    }

    #[test]
    fn eq5_suffix_is_at_least_half_of_each_nonfinal_segment() {
        // The paper's Eq. (5): Σ_{j' > j} |π_{j'}| ≥ |π_j| / 2. Our last
        // segment absorbs the leftover tail, so we check the property for all
        // segments except the last.
        for len in [8usize, 33, 120, 1000, 12345] {
            let d = SegmentDecomposition::new(len);
            for j in 0..d.num_segments().saturating_sub(1) {
                assert!(
                    2 * d.suffix_len_below(j) >= d.segment_len(j),
                    "len {len}, segment {j}: suffix {} < half of {}",
                    d.suffix_len_below(j),
                    d.segment_len(j)
                );
            }
        }
    }

    proptest! {
        #[test]
        fn segments_partition_the_path(len in 0usize..5000) {
            let d = SegmentDecomposition::new(len);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for r in d.segments() {
                prop_assert_eq!(r.start, prev_end);
                prev_end = r.end;
                covered += r.len();
            }
            prop_assert_eq!(covered, len);
            prop_assert_eq!(prev_end, len);
        }

        #[test]
        fn segment_lengths_decrease_geometrically_except_tail(len in 4usize..5000) {
            let d = SegmentDecomposition::new(len);
            // every non-final segment is at most the previous one in length
            for j in 1..d.num_segments().saturating_sub(1) {
                prop_assert!(d.segment_len(j) <= d.segment_len(j - 1));
            }
        }
    }
}
