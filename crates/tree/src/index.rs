//! Euler intervals, ancestor tests and binary-lifting LCA on the BFS tree.

use ftb_graph::{EdgeId, VertexId};
use ftb_sp::ShortestPathTree;

/// Precomputed ancestry structure over a [`ShortestPathTree`].
///
/// Provides O(1) ancestor tests (via Euler entry/exit times) and O(log n)
/// least-common-ancestor queries (via binary lifting). Vertices that are
/// unreachable from the source are not part of the tree; queries involving
/// them return `None`/`false`.
#[derive(Clone, Debug)]
pub struct TreeIndex {
    source: VertexId,
    /// Euler entry time per vertex (`usize::MAX` for unreachable vertices).
    tin: Vec<usize>,
    /// Euler exit time per vertex.
    tout: Vec<usize>,
    /// Depth per vertex (copied from the tree for convenience).
    depth: Vec<u32>,
    /// `up[k][v]` = the `2^k`-th ancestor of `v` (or `v` itself if the walk
    /// leaves the tree).
    up: Vec<Vec<u32>>,
    reachable: Vec<bool>,
}

impl TreeIndex {
    /// Build the index from a shortest-path tree.
    pub fn build(tree: &ShortestPathTree) -> Self {
        let n = tree_len(tree);
        let source = tree.source();
        let mut tin = vec![usize::MAX; n];
        let mut tout = vec![usize::MAX; n];
        let mut depth = vec![0u32; n];
        let mut reachable = vec![false; n];
        for i in 0..n {
            let v = VertexId::new(i);
            if let Some(d) = tree.depth(v) {
                depth[i] = d;
                reachable[i] = true;
            }
        }
        // Iterative Euler tour to avoid recursion depth limits on path-like
        // trees.
        let mut timer = 0usize;
        let mut stack: Vec<(VertexId, usize)> = vec![(source, 0)];
        if reachable[source.index()] {
            while let Some((v, child_idx)) = stack.pop() {
                if child_idx == 0 {
                    tin[v.index()] = timer;
                    timer += 1;
                }
                let children = tree.children(v);
                if child_idx < children.len() {
                    stack.push((v, child_idx + 1));
                    stack.push((children[child_idx], 0));
                } else {
                    tout[v.index()] = timer;
                    timer += 1;
                }
            }
        }
        // Binary lifting table.
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let levels = (usize::BITS - (max_depth as usize).leading_zeros()).max(1) as usize;
        let mut up = vec![vec![0u32; n]; levels];
        for (i, slot) in up[0].iter_mut().enumerate() {
            let v = VertexId::new(i);
            *slot = match tree.parent(v) {
                Some((p, _)) => p.0,
                None => v.0,
            };
        }
        for k in 1..levels {
            for i in 0..n {
                let mid = up[k - 1][i] as usize;
                up[k][i] = up[k - 1][mid];
            }
        }
        TreeIndex {
            source,
            tin,
            tout,
            depth,
            up,
            reachable,
        }
    }

    /// The tree root.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// `true` if `v` belongs to the tree.
    pub fn in_tree(&self, v: VertexId) -> bool {
        self.reachable[v.index()]
    }

    /// Depth of `v` (0 for the root); meaningless for out-of-tree vertices.
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v.index()]
    }

    /// `true` if `a` is an ancestor of `b` (every vertex is an ancestor of
    /// itself). `false` if either vertex is outside the tree.
    pub fn is_ancestor(&self, a: VertexId, b: VertexId) -> bool {
        if !self.in_tree(a) || !self.in_tree(b) {
            return false;
        }
        self.tin[a.index()] <= self.tin[b.index()] && self.tout[b.index()] <= self.tout[a.index()]
    }

    /// The ancestor of `v` that is `steps` levels closer to the root
    /// (saturating at the root).
    pub fn ancestor_at(&self, v: VertexId, steps: u32) -> VertexId {
        let mut cur = v.0;
        // Walking more than depth(v) steps saturates at the root; clamping
        // also guarantees every set bit fits inside the lifting table.
        let mut remaining = steps.min(self.depth[v.index()]);
        let mut k = 0usize;
        while remaining > 0 && k < self.up.len() {
            if remaining & 1 == 1 {
                cur = self.up[k][cur as usize];
            }
            remaining >>= 1;
            k += 1;
        }
        VertexId(cur)
    }

    /// Least common ancestor of `u` and `v`, if both are in the tree.
    pub fn lca(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        if !self.in_tree(u) || !self.in_tree(v) {
            return None;
        }
        if self.is_ancestor(u, v) {
            return Some(u);
        }
        if self.is_ancestor(v, u) {
            return Some(v);
        }
        let mut cur = u;
        for k in (0..self.up.len()).rev() {
            let cand = VertexId(self.up[k][cur.index()]);
            if !self.is_ancestor(cand, v) {
                cur = cand;
            }
        }
        Some(VertexId(self.up[0][cur.index()]))
    }

    /// The paper's `∼` relation on tree edges: `e ∼ e'` iff one of their
    /// child endpoints is an ancestor of the other, i.e. both edges lie on a
    /// common root-to-vertex shortest path.
    pub fn edges_related(&self, tree: &ShortestPathTree, e: EdgeId, e_prime: EdgeId) -> bool {
        let (Some(b), Some(d)) = (tree.child_endpoint(e), tree.child_endpoint(e_prime)) else {
            return false;
        };
        self.is_ancestor(b, d) || self.is_ancestor(d, b)
    }

    /// Hop distance between `u` and `v` inside the tree (through their LCA).
    pub fn tree_distance(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let l = self.lca(u, v)?;
        Some(self.depth(u) + self.depth(v) - 2 * self.depth(l))
    }
}

fn tree_len(tree: &ShortestPathTree) -> usize {
    tree.num_vertices()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::{generators, Graph};
    use ftb_sp::TieBreakWeights;

    fn build(g: &Graph, seed: u64) -> (ShortestPathTree, TreeIndex) {
        let w = TieBreakWeights::generate(g, seed);
        let t = ShortestPathTree::build(g, &w, VertexId(0));
        let idx = TreeIndex::build(&t);
        (t, idx)
    }

    #[test]
    fn ancestor_tests_on_a_path() {
        let g = generators::path(8);
        let (_t, idx) = build(&g, 1);
        assert!(idx.is_ancestor(VertexId(0), VertexId(7)));
        assert!(idx.is_ancestor(VertexId(3), VertexId(5)));
        assert!(!idx.is_ancestor(VertexId(5), VertexId(3)));
        assert!(idx.is_ancestor(VertexId(4), VertexId(4)));
        assert_eq!(idx.lca(VertexId(3), VertexId(6)), Some(VertexId(3)));
        assert_eq!(idx.tree_distance(VertexId(2), VertexId(6)), Some(4));
        assert_eq!(idx.source(), VertexId(0));
    }

    #[test]
    fn lca_on_a_star_is_the_centre() {
        let g = generators::star(6);
        let (_t, idx) = build(&g, 2);
        assert_eq!(idx.lca(VertexId(1), VertexId(2)), Some(VertexId(0)));
        assert_eq!(idx.lca(VertexId(3), VertexId(3)), Some(VertexId(3)));
        assert_eq!(idx.tree_distance(VertexId(1), VertexId(2)), Some(2));
    }

    #[test]
    fn lca_matches_naive_on_grid() {
        let g = generators::grid(5, 5);
        let (t, idx) = build(&g, 3);
        // naive LCA by walking up
        let naive = |mut a: VertexId, mut b: VertexId| -> VertexId {
            while idx.depth(a) > idx.depth(b) {
                a = t.parent(a).unwrap().0;
            }
            while idx.depth(b) > idx.depth(a) {
                b = t.parent(b).unwrap().0;
            }
            while a != b {
                a = t.parent(a).unwrap().0;
                b = t.parent(b).unwrap().0;
            }
            a
        };
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(idx.lca(u, v), Some(naive(u, v)), "lca({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn ancestor_at_walks_towards_root() {
        let g = generators::path(10);
        let (_t, idx) = build(&g, 4);
        assert_eq!(idx.ancestor_at(VertexId(7), 3), VertexId(4));
        assert_eq!(idx.ancestor_at(VertexId(7), 7), VertexId(0));
        // saturates at the root
        assert_eq!(idx.ancestor_at(VertexId(7), 100), VertexId(0));
        assert_eq!(idx.ancestor_at(VertexId(5), 0), VertexId(5));
    }

    #[test]
    fn edges_related_iff_on_common_root_path() {
        let g = generators::grid(3, 3);
        let (t, idx) = build(&g, 5);
        for &e1 in t.tree_edges() {
            for &e2 in t.tree_edges() {
                let b = t.child_endpoint(e1).unwrap();
                let d = t.child_endpoint(e2).unwrap();
                let expected = idx.is_ancestor(b, d) || idx.is_ancestor(d, b);
                assert_eq!(idx.edges_related(&t, e1, e2), expected);
            }
        }
    }

    #[test]
    fn out_of_tree_vertices_are_rejected() {
        let mut b = ftb_graph::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(2), VertexId(3));
        let g = b.build();
        let (_t, idx) = build(&g, 6);
        assert!(!idx.in_tree(VertexId(2)));
        assert!(idx.in_tree(VertexId(1)));
        assert_eq!(idx.lca(VertexId(1), VertexId(2)), None);
        assert!(!idx.is_ancestor(VertexId(0), VertexId(3)));
        assert_eq!(idx.tree_distance(VertexId(0), VertexId(2)), None);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let g = generators::path(20_000);
        let (_t, idx) = build(&g, 7);
        assert!(idx.is_ancestor(VertexId(0), VertexId(19_999)));
        assert_eq!(
            idx.lca(VertexId(10_000), VertexId(19_999)),
            Some(VertexId(10_000))
        );
    }
}
