//! The BFS tree `T0 = ⋃_v π(s, v)` of unique shortest paths.

use crate::lex::{LexSearch, PathCost};
use crate::path::Path;
use crate::weights::TieBreakWeights;
use ftb_graph::{BitSet, EdgeId, Graph, VertexId};

/// The shortest-path (BFS) tree rooted at a source under the tie-breaking
/// weight assignment `W`.
///
/// For every vertex `v` reachable from the source, `π(s, v)` — the unique
/// canonical shortest path — is the tree path from the source to `v`. The
/// tree caches parent pointers, hop depths, children lists and the set of
/// tree edge ids, which the replacement-path and FT-BFS layers query heavily.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    source: VertexId,
    parent: Vec<Option<(VertexId, EdgeId)>>,
    depth: Vec<Option<u32>>,
    cost: Vec<Option<PathCost>>,
    children: Vec<Vec<VertexId>>,
    tree_edges: Vec<EdgeId>,
    tree_edge_set: BitSet,
    /// For each tree edge (indexed by `EdgeId`), the child endpoint (the
    /// endpoint farther from the source). `None` for non-tree edges.
    child_of_edge: Vec<Option<VertexId>>,
}

impl ShortestPathTree {
    /// Build the tree of unique shortest paths from `source`.
    pub fn build(graph: &Graph, weights: &TieBreakWeights, source: VertexId) -> Self {
        let search = LexSearch::run(graph, weights, source);
        Self::from_search(graph, &search)
    }

    /// Build from a pre-computed [`LexSearch`].
    pub fn from_search(graph: &Graph, search: &LexSearch) -> Self {
        let n = graph.num_vertices();
        let source = search.source();
        let mut parent = vec![None; n];
        let mut depth = vec![None; n];
        let mut cost = vec![None; n];
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut tree_edges = Vec::new();
        let mut tree_edge_set = BitSet::new(graph.num_edges());
        let mut child_of_edge = vec![None; graph.num_edges()];
        for v in graph.vertices() {
            cost[v.index()] = search.cost(v);
            depth[v.index()] = search.hops(v);
            if v != source {
                if let Some((p, e)) = search.parent(v) {
                    parent[v.index()] = Some((p, e));
                    children[p.index()].push(v);
                    tree_edges.push(e);
                    tree_edge_set.insert(e.index());
                    child_of_edge[e.index()] = Some(v);
                }
            }
        }
        ShortestPathTree {
            source,
            parent,
            depth,
            cost,
            children,
            tree_edges,
            tree_edge_set,
            child_of_edge,
        }
    }

    /// The root (source) vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Number of vertices of the underlying graph (the length of the
    /// per-vertex arrays; includes unreachable vertices).
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// Parent `(vertex, edge)` of `v`, if `v` is reachable and not the root.
    pub fn parent(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Hop depth of `v` (`dist(s, v, G)`), if reachable.
    pub fn depth(&self, v: VertexId) -> Option<u32> {
        self.depth[v.index()]
    }

    /// Full lexicographic cost of `π(s, v)`, if reachable.
    pub fn cost(&self, v: VertexId) -> Option<PathCost> {
        self.cost[v.index()]
    }

    /// `true` if `v` is reachable from the source.
    pub fn is_reachable(&self, v: VertexId) -> bool {
        self.depth[v.index()].is_some()
    }

    /// Children of `v` in the tree.
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.index()]
    }

    /// The tree edges (one per non-root reachable vertex).
    pub fn tree_edges(&self) -> &[EdgeId] {
        &self.tree_edges
    }

    /// `true` if `e` is one of the tree edges.
    pub fn is_tree_edge(&self, e: EdgeId) -> bool {
        self.tree_edge_set.contains(e.index())
    }

    /// The set of tree edge ids as a bitset over all graph edges.
    pub fn tree_edge_set(&self) -> &BitSet {
        &self.tree_edge_set
    }

    /// The deeper endpoint of tree edge `e` (its "child side"), or `None`
    /// for non-tree edges. Matches the paper's convention of directing tree
    /// edges away from the source: `e = (x, y)` with `dist(s,x) < dist(s,y)`
    /// has `child_endpoint(e) = y`.
    pub fn child_endpoint(&self, e: EdgeId) -> Option<VertexId> {
        self.child_of_edge[e.index()]
    }

    /// Depth of a tree edge: `dist(s, e)` in the paper's notation, i.e. the
    /// depth of its child endpoint.
    pub fn edge_depth(&self, e: EdgeId) -> Option<u32> {
        self.child_endpoint(e).and_then(|v| self.depth(v))
    }

    /// Number of reachable vertices (including the source).
    pub fn num_reachable(&self) -> usize {
        self.depth.iter().filter(|d| d.is_some()).count()
    }

    /// Extract `π(s, v)` as a concrete path, if `v` is reachable.
    pub fn path_to(&self, v: VertexId) -> Option<Path> {
        self.depth[v.index()]?;
        let mut vertices = vec![v];
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            vertices.push(p);
            edges.push(e);
            cur = p;
        }
        vertices.reverse();
        edges.reverse();
        Some(Path::new(vertices, edges))
    }

    /// The tree edges of `π(s, v)` from the source down to `v`.
    pub fn path_edges_to(&self, v: VertexId) -> Vec<EdgeId> {
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        edges
    }

    /// Walk up from `v` to the root, yielding `(vertex, parent_edge)` pairs
    /// starting at `v` itself (the root yields no pair).
    pub fn ancestors(&self, v: VertexId) -> AncestorIter<'_> {
        AncestorIter {
            tree: self,
            cur: Some(v),
        }
    }

    /// Vertices in non-decreasing depth order (root first); useful for
    /// processing the tree level by level.
    pub fn vertices_by_depth(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = (0..self.parent.len())
            .map(VertexId::new)
            .filter(|v| self.is_reachable(*v))
            .collect();
        vs.sort_by_key(|v| self.depth(*v).unwrap());
        vs
    }
}

/// Iterator over `(vertex, parent_edge)` pairs walking up to the root.
pub struct AncestorIter<'a> {
    tree: &'a ShortestPathTree,
    cur: Option<VertexId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = (VertexId, EdgeId);

    fn next(&mut self) -> Option<Self::Item> {
        let v = self.cur?;
        match self.tree.parent(v) {
            Some((p, e)) => {
                self.cur = Some(p);
                Some((v, e))
            }
            None => {
                self.cur = None;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;

    fn tree_of(g: &Graph, seed: u64, s: u32) -> ShortestPathTree {
        let w = TieBreakWeights::generate(g, seed);
        ShortestPathTree::build(g, &w, VertexId(s))
    }

    #[test]
    fn tree_on_path_graph_is_the_path() {
        let g = generators::path(6);
        let t = tree_of(&g, 1, 0);
        assert_eq!(t.source(), VertexId(0));
        assert_eq!(t.tree_edges().len(), 5);
        assert_eq!(t.depth(VertexId(5)), Some(5));
        assert_eq!(t.num_reachable(), 6);
        let p = t.path_to(VertexId(5)).unwrap();
        assert_eq!(p.len(), 5);
        p.validate(&g).unwrap();
        assert_eq!(t.children(VertexId(2)), &[VertexId(3)]);
    }

    #[test]
    fn depths_match_bfs_distances() {
        let g = generators::grid(7, 5);
        let t = tree_of(&g, 7, 3);
        let bfs = crate::bfs::bfs_distances(&g, VertexId(3));
        for v in g.vertices() {
            assert_eq!(t.depth(v), Some(bfs[v.index()]));
        }
    }

    #[test]
    fn tree_has_n_minus_one_edges_when_connected() {
        let g = generators::complete(15);
        let t = tree_of(&g, 3, 0);
        assert_eq!(t.tree_edges().len(), 14);
        for &e in t.tree_edges() {
            assert!(t.is_tree_edge(e));
            let child = t.child_endpoint(e).unwrap();
            let (parent, pe) = t.parent(child).unwrap();
            assert_eq!(pe, e);
            assert_eq!(t.depth(child).unwrap(), t.depth(parent).unwrap() + 1);
            assert_eq!(t.edge_depth(e), t.depth(child));
        }
        assert_eq!(t.tree_edge_set().len(), 14);
    }

    #[test]
    fn non_tree_edges_have_no_child_endpoint() {
        let g = generators::complete(6);
        let t = tree_of(&g, 3, 0);
        let non_tree: Vec<EdgeId> = g.edge_ids().filter(|&e| !t.is_tree_edge(e)).collect();
        assert_eq!(non_tree.len(), g.num_edges() - 5);
        for e in non_tree {
            assert_eq!(t.child_endpoint(e), None);
            assert_eq!(t.edge_depth(e), None);
        }
    }

    #[test]
    fn unreachable_component_is_excluded() {
        let mut b = ftb_graph::GraphBuilder::new(5);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(2), VertexId(3));
        let g = b.build();
        let t = tree_of(&g, 1, 0);
        assert!(t.is_reachable(VertexId(1)));
        assert!(!t.is_reachable(VertexId(2)));
        assert!(t.path_to(VertexId(3)).is_none());
        assert_eq!(t.num_reachable(), 2);
        assert_eq!(t.tree_edges().len(), 1);
    }

    #[test]
    fn ancestors_walk_reaches_the_root() {
        let g = generators::grid(4, 4);
        let t = tree_of(&g, 5, 0);
        let v = VertexId(15);
        let chain: Vec<VertexId> = t.ancestors(v).map(|(x, _)| x).collect();
        assert_eq!(chain.len(), t.depth(v).unwrap() as usize);
        assert_eq!(chain[0], v);
        // path_edges agrees with ancestors
        let edges = t.path_edges_to(v);
        assert_eq!(edges.len(), chain.len());
    }

    #[test]
    fn vertices_by_depth_is_sorted() {
        let g = generators::hypercube(4);
        let t = tree_of(&g, 2, 0);
        let order = t.vertices_by_depth();
        assert_eq!(order.len(), 16);
        for w in order.windows(2) {
            assert!(t.depth(w[0]).unwrap() <= t.depth(w[1]).unwrap());
        }
    }

    #[test]
    fn path_to_equals_union_of_parent_pointers() {
        let g = generators::complete_bipartite(4, 5);
        let t = tree_of(&g, 6, 0);
        for v in g.vertices() {
            let p = t.path_to(v).unwrap();
            assert_eq!(p.edges(), &t.path_edges_to(v)[..]);
        }
    }
}
