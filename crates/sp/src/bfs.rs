//! Plain hop-count breadth-first search.
//!
//! Used wherever only distances (not canonical paths) are needed: the
//! replacement-distance sweep, the protection verifier and various tests.

use crate::UNREACHABLE;
use ftb_graph::{Graph, SubgraphView, VertexId};
use std::collections::VecDeque;

/// Hop distances from `source` in the full graph.
///
/// Unreachable vertices get [`UNREACHABLE`].
pub fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<u32> {
    bfs_distances_view(&SubgraphView::full(graph), source)
}

/// Hop distances from `source` in a masked [`SubgraphView`].
pub fn bfs_distances_view(view: &SubgraphView<'_>, source: VertexId) -> Vec<u32> {
    let n = view.graph().num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    if !view.allows_vertex(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (w, _) in view.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Hop distances from `source`, reusing caller-provided scratch buffers.
///
/// `dist` is resized/reset by the callee; `queue` is cleared. This avoids
/// per-call allocations in the hot per-failing-edge loops.
pub fn bfs_distances_into(
    view: &SubgraphView<'_>,
    source: VertexId,
    dist: &mut Vec<u32>,
    queue: &mut VecDeque<VertexId>,
) {
    let n = view.graph().num_vertices();
    dist.clear();
    dist.resize(n, UNREACHABLE);
    queue.clear();
    if !view.allows_vertex(source) {
        return;
    }
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (w, _) in view.neighbors(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        }
    }
}

/// Eccentricity of `source` (maximum finite hop distance), if any vertex is
/// reachable besides `source` itself.
pub fn eccentricity(graph: &Graph, source: VertexId) -> Option<u32> {
    bfs_distances(graph, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;
    use ftb_graph::EdgeId;

    #[test]
    fn distances_on_a_path() {
        let g = generators::path(6);
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(eccentricity(&g, VertexId(0)), Some(5));
        assert_eq!(eccentricity(&g, VertexId(3)), Some(3));
    }

    #[test]
    fn distances_on_a_cycle() {
        let g = generators::cycle(8);
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d[4], 4);
        assert_eq!(d[7], 1);
        assert_eq!(d[5], 3);
    }

    #[test]
    fn removing_an_edge_lengthens_paths() {
        let g = generators::cycle(8);
        let e = g.find_edge(VertexId(0), VertexId(7)).unwrap();
        let view = SubgraphView::full(&g).without_edge(e);
        let d = bfs_distances_view(&view, VertexId(0));
        assert_eq!(d[7], 7);
        assert_eq!(d[4], 4);
    }

    #[test]
    fn disconnected_vertices_are_unreachable() {
        let g = generators::path(4);
        let e = g.find_edge(VertexId(1), VertexId(2)).unwrap();
        let view = SubgraphView::full(&g).without_edge(e);
        let d = bfs_distances_view(&view, VertexId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn masked_source_is_isolated() {
        let g = generators::complete(4);
        let mask = ftb_graph::VertexMask::removing(&g, [VertexId(0)]);
        let view = SubgraphView::full(&g).with_vertex_mask(&mask);
        let d = bfs_distances_view(&view, VertexId(0));
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let g = generators::grid(5, 7);
        let e = EdgeId(3);
        let view = SubgraphView::full(&g).without_edge(e);
        let expected = bfs_distances_view(&view, VertexId(2));
        let mut dist = Vec::new();
        let mut queue = VecDeque::new();
        bfs_distances_into(&view, VertexId(2), &mut dist, &mut queue);
        assert_eq!(dist, expected);
    }
}
