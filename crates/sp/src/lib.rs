//! Shortest-path machinery for the FT-BFS reproduction.
//!
//! The paper works with *unique* shortest paths: a positive weight assignment
//! `W` breaks ties so that `SP(s, v, G', W)` is a single canonical path in
//! every subgraph `G' ⊆ G`. This crate provides:
//!
//! * [`TieBreakWeights`] — the per-edge tie-breaking weights `W`,
//! * [`bfs`] — plain hop-count BFS over (masked) graphs,
//! * [`lex`] — lexicographic `(hops, Σ tie-weights)` Dijkstra implementing
//!   `SP(·, ·, ·, W)` with forbidden edges/vertices,
//! * [`canonical`] — the allocation-free two-sweep variant of the same
//!   search over reusable scratch, built for the replacement-path
//!   augmentation's `Θ(n²)` per-fault-set tree computations,
//! * [`ShortestPathTree`] — the BFS tree `T0 = ⋃_v π(s, v)` rooted at the
//!   source, with parent pointers, depths, and path extraction,
//! * [`replacement`] — batched replacement distances `dist(s, ·, G \ {e})`
//!   for every tree edge `e`, computed in parallel,
//! * [`TimestampedVector`] — generation-stamped scratch whose reset is
//!   `O(1)`, backing the query engine's per-miss sweep state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod canonical;
pub mod lex;
pub mod path;
pub mod replacement;
pub mod sp_tree;
pub mod timestamped;
pub mod weights;

pub use bfs::{bfs_distances, bfs_distances_view};
pub use canonical::CanonicalScratch;
pub use lex::{LexSearch, PathCost};
pub use path::Path;
pub use replacement::ReplacementDistances;
pub use sp_tree::ShortestPathTree;
pub use timestamped::TimestampedVector;
pub use weights::TieBreakWeights;

/// Hop distance value used throughout: `u32::MAX` denotes "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;
