//! Batched replacement distances `dist(s, ·, G \ {e})`.
//!
//! For every failing tree edge `e ∈ T0` the FT-BFS construction needs the
//! post-failure distances from the source to every vertex. We compute them
//! with one constrained BFS per tree edge, distributed over worker threads;
//! only tree edges matter because removing a non-tree edge never changes a
//! distance from the source (the shortest-path tree survives intact).

use crate::bfs::bfs_distances_view;
use crate::sp_tree::ShortestPathTree;
use crate::UNREACHABLE;
use ftb_graph::{EdgeId, Graph, SubgraphView, VertexId};
use ftb_par::{parallel_map, ParallelConfig};
use std::collections::HashMap;

/// Post-failure hop distances `dist(s, v, G \ {e})` for every tree edge `e`.
#[derive(Clone, Debug)]
pub struct ReplacementDistances {
    /// Maps a tree edge id to its row index in `rows`.
    index_of_edge: HashMap<EdgeId, usize>,
    /// `rows[i][v]` = `dist(s, v, G \ {e_i})` in hops (`UNREACHABLE` if cut off).
    rows: Vec<Vec<u32>>,
    /// The tree edges in row order.
    edges: Vec<EdgeId>,
}

impl ReplacementDistances {
    /// Compute replacement distances for every tree edge of `tree`.
    pub fn compute(graph: &Graph, tree: &ShortestPathTree, config: &ParallelConfig) -> Self {
        let edges: Vec<EdgeId> = tree.tree_edges().to_vec();
        let source = tree.source();
        let rows = parallel_map(config, edges.len(), |i| {
            let view = SubgraphView::full(graph).without_edge(edges[i]);
            bfs_distances_view(&view, source)
        });
        let index_of_edge = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        ReplacementDistances {
            index_of_edge,
            rows,
            edges,
        }
    }

    /// `dist(s, v, G \ {e})` in hops, or `None` if `e` is not a tree edge.
    ///
    /// [`UNREACHABLE`] means the failure disconnects `v` from the source.
    pub fn dist(&self, e: EdgeId, v: VertexId) -> Option<u32> {
        self.index_of_edge.get(&e).map(|&i| self.rows[i][v.index()])
    }

    /// The whole post-failure distance row for edge `e`.
    pub fn row(&self, e: EdgeId) -> Option<&[u32]> {
        self.index_of_edge.get(&e).map(|&i| self.rows[i].as_slice())
    }

    /// Tree edges covered, in row order.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of covered tree edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if no tree edges are covered (trivial graphs).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of `(edge, vertex)` pairs whose replacement distance is finite
    /// but strictly larger than the fault-free distance — i.e. pairs for
    /// which the failure genuinely matters.
    pub fn count_affected_pairs(&self, tree: &ShortestPathTree) -> usize {
        let mut count = 0;
        for (i, &_e) in self.edges.iter().enumerate() {
            for (vi, &d) in self.rows[i].iter().enumerate() {
                if let Some(d0) = tree.depth(VertexId::new(vi)) {
                    if d != UNREACHABLE && d > d0 {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::TieBreakWeights;
    use ftb_graph::generators;

    fn setup(g: &Graph, seed: u64) -> (ShortestPathTree, ReplacementDistances) {
        let w = TieBreakWeights::generate(g, seed);
        let t = ShortestPathTree::build(g, &w, VertexId(0));
        let rd = ReplacementDistances::compute(g, &t, &ParallelConfig::serial());
        (t, rd)
    }

    #[test]
    fn cycle_failure_reroutes_the_long_way() {
        let g = generators::cycle(10);
        let (t, rd) = setup(&g, 3);
        // failing the first tree edge (0, x) forces x to go the long way
        for &e in t.tree_edges() {
            let child = t.child_endpoint(e).unwrap();
            let d = rd.dist(e, child).unwrap();
            assert!(d >= t.depth(child).unwrap());
            assert!(d != UNREACHABLE, "cycle stays connected after one failure");
        }
    }

    #[test]
    fn path_failure_disconnects_the_suffix() {
        let g = generators::path(6);
        let (t, rd) = setup(&g, 1);
        let e = g.find_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(rd.dist(e, VertexId(2)), Some(2));
        assert_eq!(rd.dist(e, VertexId(3)), Some(UNREACHABLE));
        assert_eq!(rd.dist(e, VertexId(5)), Some(UNREACHABLE));
        assert_eq!(rd.len(), 5);
        assert!(!rd.is_empty());
        assert_eq!(rd.edges().len(), 5);
        // every (edge, deeper vertex) pair is affected on a path: either
        // disconnected (not counted) or unchanged; so affected count is 0.
        assert_eq!(rd.count_affected_pairs(&t), 0);
    }

    #[test]
    fn non_tree_edges_are_not_covered() {
        let g = generators::complete(6);
        let (t, rd) = setup(&g, 9);
        let non_tree = g.edge_ids().find(|&e| !t.is_tree_edge(e)).unwrap();
        assert_eq!(rd.dist(non_tree, VertexId(1)), None);
        assert!(rd.row(non_tree).is_none());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let g = generators::grid(6, 6);
        let w = TieBreakWeights::generate(&g, 17);
        let t = ShortestPathTree::build(&g, &w, VertexId(0));
        let serial = ReplacementDistances::compute(&g, &t, &ParallelConfig::serial());
        let parallel = ReplacementDistances::compute(&g, &t, &ParallelConfig::with_threads(4));
        for &e in t.tree_edges() {
            assert_eq!(serial.row(e), parallel.row(e));
        }
    }

    #[test]
    fn replacement_distance_never_beats_original() {
        let g = generators::hypercube(4);
        let (t, rd) = setup(&g, 23);
        for &e in t.tree_edges() {
            for v in g.vertices() {
                let d0 = t.depth(v).unwrap();
                let d1 = rd.dist(e, v).unwrap();
                assert!(d1 >= d0, "removing an edge cannot shorten a distance");
            }
        }
        // the hypercube is 2-edge-connected, so nothing disconnects and many
        // pairs are affected
        assert!(rd.count_affected_pairs(&t) > 0);
    }
}
