//! Reusable banned-element canonical shortest-path-tree search.
//!
//! The replacement-path augmentation of the FT-BFS successors
//! (Parter–Peleg 2013, Parter 2015) runs one canonical
//! `(hops, Σ tie-weights)` shortest-path tree per fault set — `Θ(n)` trees
//! for the single-fault layer and `Θ(n²)` for the dual layer. A heap-based
//! [`LexSearch`](crate::LexSearch) per tree would pay `O(m log n)` plus an
//! allocation storm; [`CanonicalScratch`] computes the identical tree in two
//! allocation-free `O(n + m)` sweeps over caller-owned buffers:
//!
//! 1. a plain BFS establishes hop distances and a visit order that is
//!    non-decreasing in depth,
//! 2. a pass in that order picks, for every vertex, the parent minimising
//!    `(tie-weight sum, parent id)` among its depth-minus-one neighbours —
//!    the same lexicographic objective [`LexSearch`](crate::LexSearch)
//!    optimises, so the resulting parent pointers agree (asserted in tests).
//!
//! Faults are passed as a short [`Fault`] slice and filtered inline, which
//! beats any precomputed mask at the `|F| ≤ 2` sizes the augmentation uses.

use crate::weights::TieBreakWeights;
use crate::UNREACHABLE;
use ftb_graph::{EdgeId, Fault, Graph, VertexId};
use std::collections::VecDeque;

/// Scratch state for repeated canonical shortest-path-tree searches over
/// `G ∖ F`.
///
/// Create once (per worker thread) with [`CanonicalScratch::new`], then call
/// [`CanonicalScratch::run`] for every fault set; the buffers are reset and
/// reused, so a run allocates nothing.
#[derive(Clone, Debug)]
pub struct CanonicalScratch {
    dist: Vec<u32>,
    tie: Vec<u64>,
    parent: Vec<Option<(VertexId, EdgeId)>>,
    /// Visit order of the BFS sweep: non-decreasing in `dist`.
    order: Vec<VertexId>,
    queue: VecDeque<VertexId>,
}

impl CanonicalScratch {
    /// Scratch sized for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        CanonicalScratch {
            dist: vec![UNREACHABLE; n],
            tie: vec![0; n],
            parent: vec![None; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::with_capacity(n),
        }
    }

    /// Compute the canonical shortest-path tree from `source` in
    /// `graph ∖ banned` under `weights`.
    ///
    /// `banned` lists the failed elements (edges and/or vertices); a banned
    /// source yields an empty tree. The tree agrees with
    /// [`LexSearch`](crate::LexSearch) over the equivalent masked view:
    /// every reachable vertex's parent is the unique `(hops, tie, parent id)`
    /// minimiser.
    pub fn run(
        &mut self,
        graph: &Graph,
        weights: &TieBreakWeights,
        source: VertexId,
        banned: &[Fault],
    ) {
        let n = graph.num_vertices();
        debug_assert_eq!(self.dist.len(), n, "scratch sized for a different graph");
        self.dist.fill(UNREACHABLE);
        self.parent.fill(None);
        self.order.clear();
        self.queue.clear();
        if banned.contains(&Fault::Vertex(source)) {
            return;
        }
        let allowed = |w: VertexId, e: EdgeId| {
            !banned.contains(&Fault::Edge(e)) && !banned.contains(&Fault::Vertex(w))
        };

        // Sweep 1: hop distances by plain BFS; the pop order is the visit
        // order, non-decreasing in depth.
        self.dist[source.index()] = 0;
        self.queue.push_back(source);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u.index()];
            for (w, e) in graph.neighbors(u) {
                if self.dist[w.index()] == UNREACHABLE && allowed(w, e) {
                    self.dist[w.index()] = du + 1;
                    self.queue.push_back(w);
                }
            }
        }

        // Sweep 2: in visit order, settle each vertex's canonical parent.
        // All depth-d ties are final before any depth-(d+1) vertex is
        // processed, so one pass suffices.
        self.tie[source.index()] = 0;
        for &v in &self.order {
            if v == source {
                continue;
            }
            let dv = self.dist[v.index()];
            let mut best: Option<(u64, VertexId, EdgeId)> = None;
            for (u, e) in graph.neighbors(v) {
                if self.dist[u.index()] != dv.wrapping_sub(1) || !allowed(u, e) {
                    continue;
                }
                let cand = (self.tie[u.index()] + weights.weight(e), u, e);
                if best.is_none_or(|(bt, bu, _)| (cand.0, cand.1) < (bt, bu)) {
                    best = Some(cand);
                }
            }
            let (tie, u, e) = best.expect("every visited non-source vertex has a parent");
            self.tie[v.index()] = tie;
            self.parent[v.index()] = Some((u, e));
        }
    }

    /// Hop distance of `v` in the last run, if reachable.
    #[inline]
    pub fn dist(&self, v: VertexId) -> Option<u32> {
        let d = self.dist[v.index()];
        (d != UNREACHABLE).then_some(d)
    }

    /// Canonical parent `(vertex, edge)` of `v` in the last run, if `v` is
    /// reachable and not the source.
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        self.parent[v.index()]
    }

    /// The parent ("last leg") edge of `v` in the last run.
    #[inline]
    pub fn parent_edge(&self, v: VertexId) -> Option<EdgeId> {
        self.parent[v.index()].map(|(_, e)| e)
    }

    /// Vertices reached by the last run, in non-decreasing depth order
    /// (source first).
    pub fn visited(&self) -> &[VertexId] {
        &self.order
    }

    /// Collect the tree edges of the last run (one parent edge per reached
    /// non-source vertex) into `out`.
    pub fn collect_tree_edges(&self, out: &mut Vec<EdgeId>) {
        out.clear();
        for &v in &self.order {
            if let Some((_, e)) = self.parent[v.index()] {
                out.push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::LexSearch;
    use ftb_graph::{generators, SubgraphView, VertexMask};

    fn assert_matches_lex(graph: &Graph, seed: u64, banned: &[Fault]) {
        let weights = TieBreakWeights::generate(graph, seed);
        let mut scratch = CanonicalScratch::new(graph.num_vertices());
        scratch.run(graph, &weights, VertexId(0), banned);

        let edge_mask =
            ftb_graph::EdgeMask::removing(graph, banned.iter().filter_map(|f| f.as_edge()));
        let vertex_mask = VertexMask::removing(graph, banned.iter().filter_map(|f| f.as_vertex()));
        let view = SubgraphView::full(graph)
            .with_edge_mask(&edge_mask)
            .with_vertex_mask(&vertex_mask);
        let lex = LexSearch::run_view(&view, &weights, VertexId(0));
        for v in graph.vertices() {
            assert_eq!(
                scratch.dist(v),
                lex.hops(v),
                "dist of {v:?} under {banned:?}"
            );
            assert_eq!(
                scratch.parent(v),
                lex.parent(v),
                "parent of {v:?} under {banned:?}"
            );
        }
    }

    #[test]
    fn agrees_with_lex_search_fault_free() {
        for (g, seed) in [
            (generators::hypercube(4), 3u64),
            (generators::grid(5, 6), 7),
            (generators::complete(9), 11),
        ] {
            assert_matches_lex(&g, seed, &[]);
        }
    }

    #[test]
    fn agrees_with_lex_search_under_faults() {
        let g = generators::hypercube(4);
        for e in 0..g.num_edges().min(8) {
            assert_matches_lex(&g, 5, &[Fault::Edge(EdgeId(e as u32))]);
        }
        for v in 1..6u32 {
            assert_matches_lex(&g, 5, &[Fault::Vertex(VertexId(v))]);
            assert_matches_lex(&g, 5, &[Fault::Vertex(VertexId(v)), Fault::Edge(EdgeId(v))]);
        }
        assert_matches_lex(&g, 5, &[Fault::Edge(EdgeId(0)), Fault::Edge(EdgeId(5))]);
    }

    #[test]
    fn banned_source_yields_empty_tree() {
        let g = generators::cycle(6);
        let w = TieBreakWeights::generate(&g, 1);
        let mut s = CanonicalScratch::new(6);
        s.run(&g, &w, VertexId(0), &[Fault::Vertex(VertexId(0))]);
        assert!(s.visited().is_empty());
        assert_eq!(s.dist(VertexId(1)), None);
        let mut edges = vec![EdgeId(0)];
        s.collect_tree_edges(&mut edges);
        assert!(edges.is_empty());
    }

    #[test]
    fn visit_order_is_depth_sorted_and_tree_edges_span() {
        let g = generators::grid(4, 5);
        let w = TieBreakWeights::generate(&g, 9);
        let mut s = CanonicalScratch::new(g.num_vertices());
        s.run(&g, &w, VertexId(0), &[]);
        let order = s.visited();
        assert_eq!(order.len(), g.num_vertices());
        for pair in order.windows(2) {
            assert!(s.dist(pair[0]).unwrap() <= s.dist(pair[1]).unwrap());
        }
        let mut edges = Vec::new();
        s.collect_tree_edges(&mut edges);
        assert_eq!(edges.len(), g.num_vertices() - 1);
    }

    #[test]
    fn scratch_is_reusable_across_runs() {
        let g = generators::cycle(8);
        let w = TieBreakWeights::generate(&g, 2);
        let mut s = CanonicalScratch::new(8);
        s.run(&g, &w, VertexId(0), &[Fault::Edge(EdgeId(0))]);
        let with_fault = s.dist(VertexId(1));
        s.run(&g, &w, VertexId(0), &[]);
        let without = s.dist(VertexId(1));
        // cycle edge 0 is (0,1); removing it forces the long way round
        assert!(with_fault.unwrap() > without.unwrap() || without.unwrap() == 1);
        assert_eq!(s.visited().len(), 8);
    }
}
