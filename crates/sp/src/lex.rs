//! Lexicographic `(hops, tie-weight)` shortest paths.
//!
//! This is the computational realisation of the paper's `SP(s, v, G', W)`:
//! paths are compared first by hop count (the true BFS distance) and then by
//! the sum of the per-edge tie weights from [`crate::TieBreakWeights`], so
//! that in every (masked) subgraph the shortest path between two vertices is
//! unique. A final tie-break on predecessor vertex id makes the search fully
//! deterministic even in the (astronomically unlikely) event of a weight
//! collision.

use crate::path::Path;
use crate::weights::TieBreakWeights;
use ftb_graph::{EdgeId, Graph, SubgraphView, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The cost of a path under the lexicographic order: hop count first, then
/// the accumulated tie weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathCost {
    /// Number of edges on the path (the paper's `dist` in edges).
    pub hops: u32,
    /// Sum of the tie weights along the path.
    pub tie: u64,
}

impl PathCost {
    /// Cost of the empty path.
    pub const ZERO: PathCost = PathCost { hops: 0, tie: 0 };

    /// Extend by one edge of tie weight `w`.
    #[inline]
    pub fn step(self, w: u64) -> PathCost {
        PathCost {
            hops: self.hops + 1,
            tie: self.tie + w,
        }
    }
}

/// Heap entry for the lexicographic Dijkstra (min-heap via reversed order).
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    cost: PathCost,
    vertex: VertexId,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the smallest cost.
        other
            .cost
            .cmp(&self.cost)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a lexicographic single-source search: optimal cost and the
/// unique predecessor of every reached vertex.
#[derive(Clone, Debug)]
pub struct LexSearch {
    source: VertexId,
    dist: Vec<Option<PathCost>>,
    parent: Vec<Option<(VertexId, EdgeId)>>,
}

impl LexSearch {
    /// Run the search from `source` over the whole graph.
    pub fn run(graph: &Graph, weights: &TieBreakWeights, source: VertexId) -> Self {
        Self::run_view(&SubgraphView::full(graph), weights, source)
    }

    /// Run the search from `source` over a masked view of the graph.
    pub fn run_view(view: &SubgraphView<'_>, weights: &TieBreakWeights, source: VertexId) -> Self {
        Self::run_view_impl(view, weights, source, None)
    }

    /// Run the search from `source` but stop as soon as `target` is settled.
    ///
    /// Costs and parents are exact for every settled vertex (in particular
    /// for `target` if it is reachable); vertices that were not reached
    /// before termination report as unreachable. This is the hot entry point
    /// of Algorithm `Pcons`, which issues one bounded search per
    /// (terminal, failing edge) probe.
    pub fn run_view_target(
        view: &SubgraphView<'_>,
        weights: &TieBreakWeights,
        source: VertexId,
        target: VertexId,
    ) -> Self {
        Self::run_view_impl(view, weights, source, Some(target))
    }

    fn run_view_impl(
        view: &SubgraphView<'_>,
        weights: &TieBreakWeights,
        source: VertexId,
        stop_at: Option<VertexId>,
    ) -> Self {
        let n = view.graph().num_vertices();
        let mut dist: Vec<Option<PathCost>> = vec![None; n];
        let mut parent: Vec<Option<(VertexId, EdgeId)>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        if view.allows_vertex(source) {
            dist[source.index()] = Some(PathCost::ZERO);
            heap.push(HeapEntry {
                cost: PathCost::ZERO,
                vertex: source,
            });
        }
        while let Some(HeapEntry { cost, vertex }) = heap.pop() {
            let vi = vertex.index();
            if settled[vi] {
                continue;
            }
            settled[vi] = true;
            if stop_at == Some(vertex) {
                break;
            }
            for (w, e) in view.neighbors(vertex) {
                let wi = w.index();
                if settled[wi] {
                    continue;
                }
                let cand = cost.step(weights.weight(e));
                let better = match (dist[wi], parent[wi]) {
                    (None, _) => true,
                    (Some(cur), Some((cur_parent, _))) => {
                        cand < cur || (cand == cur && vertex < cur_parent)
                    }
                    (Some(cur), None) => cand < cur,
                };
                if better {
                    dist[wi] = Some(cand);
                    parent[wi] = Some((vertex, e));
                    heap.push(HeapEntry {
                        cost: cand,
                        vertex: w,
                    });
                }
            }
        }
        LexSearch {
            source,
            dist,
            parent,
        }
    }

    /// The search source.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// Optimal cost to `v`, if reachable.
    pub fn cost(&self, v: VertexId) -> Option<PathCost> {
        self.dist[v.index()]
    }

    /// Hop distance to `v`, if reachable.
    pub fn hops(&self, v: VertexId) -> Option<u32> {
        self.dist[v.index()].map(|c| c.hops)
    }

    /// Unique predecessor `(parent, edge)` of `v` on its canonical shortest
    /// path, if `v` is reachable and distinct from the source.
    pub fn parent(&self, v: VertexId) -> Option<(VertexId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Extract the canonical shortest path from the source to `v`.
    ///
    /// Returns `None` if `v` is unreachable.
    pub fn path_to(&self, v: VertexId) -> Option<Path> {
        self.dist[v.index()]?;
        let mut vertices = vec![v];
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            vertices.push(p);
            edges.push(e);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        vertices.reverse();
        edges.reverse();
        Some(Path::new(vertices, edges))
    }

    /// Number of reachable vertices (including the source).
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;

    #[test]
    fn hops_match_bfs_on_grid() {
        let g = generators::grid(6, 7);
        let w = TieBreakWeights::generate(&g, 3);
        let search = LexSearch::run(&g, &w, VertexId(0));
        let bfs = crate::bfs::bfs_distances(&g, VertexId(0));
        for v in g.vertices() {
            assert_eq!(search.hops(v).unwrap(), bfs[v.index()]);
        }
        assert_eq!(search.reachable_count(), g.num_vertices());
        assert_eq!(search.source(), VertexId(0));
    }

    #[test]
    fn paths_are_valid_and_have_matching_length() {
        let g = generators::complete(12);
        let w = TieBreakWeights::generate(&g, 5);
        let search = LexSearch::run(&g, &w, VertexId(4));
        for v in g.vertices() {
            let p = search.path_to(v).unwrap();
            p.validate(&g).unwrap();
            assert_eq!(p.len() as u32, search.hops(v).unwrap());
            assert_eq!(p.first(), VertexId(4));
            assert_eq!(p.last(), v);
        }
    }

    #[test]
    fn unreachable_vertices_have_no_path() {
        let g = generators::path(5);
        let e = g.find_edge(VertexId(2), VertexId(3)).unwrap();
        let view = SubgraphView::full(&g).without_edge(e);
        let w = TieBreakWeights::generate(&g, 1);
        let search = LexSearch::run_view(&view, &w, VertexId(0));
        assert!(search.cost(VertexId(3)).is_none());
        assert!(search.path_to(VertexId(4)).is_none());
        assert!(search.parent(VertexId(3)).is_none());
        assert_eq!(search.reachable_count(), 3);
    }

    #[test]
    fn tie_breaking_is_deterministic_across_runs() {
        let g = generators::complete(9);
        let w = TieBreakWeights::generate(&g, 11);
        let a = LexSearch::run(&g, &w, VertexId(0));
        let b = LexSearch::run(&g, &w, VertexId(0));
        for v in g.vertices() {
            assert_eq!(a.path_to(v), b.path_to(v));
        }
    }

    #[test]
    fn lower_tie_weight_path_wins_among_equal_hops() {
        // Square 0-1-2 and 0-3-2: both 2 hops from 0 to 2; the canonical
        // path must be the one with smaller total tie weight.
        let mut b = ftb_graph::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(0), VertexId(3));
        b.add_edge(VertexId(3), VertexId(2));
        let g = b.build();
        let w = TieBreakWeights::generate(&g, 42);
        let search = LexSearch::run(&g, &w, VertexId(0));
        let p = search.path_to(VertexId(2)).unwrap();
        let via1: u64 = w.weight(g.find_edge(VertexId(0), VertexId(1)).unwrap())
            + w.weight(g.find_edge(VertexId(1), VertexId(2)).unwrap());
        let via3: u64 = w.weight(g.find_edge(VertexId(0), VertexId(3)).unwrap())
            + w.weight(g.find_edge(VertexId(3), VertexId(2)).unwrap());
        let expected_mid = if via1 < via3 {
            VertexId(1)
        } else {
            VertexId(3)
        };
        assert_eq!(p.vertices()[1], expected_mid);
        assert_eq!(search.cost(VertexId(2)).unwrap().tie, via1.min(via3));
    }

    #[test]
    fn targeted_search_agrees_with_full_search() {
        let g = generators::grid(8, 8);
        let w = TieBreakWeights::generate(&g, 21);
        let full = LexSearch::run(&g, &w, VertexId(0));
        for v in g.vertices() {
            let view = SubgraphView::full(&g);
            let bounded = LexSearch::run_view_target(&view, &w, VertexId(0), v);
            assert_eq!(bounded.cost(v), full.cost(v));
            assert_eq!(bounded.path_to(v), full.path_to(v));
        }
    }

    #[test]
    fn targeted_search_on_unreachable_target_terminates() {
        let g = generators::path(5);
        let e = g.find_edge(VertexId(1), VertexId(2)).unwrap();
        let view = SubgraphView::full(&g).without_edge(e);
        let w = TieBreakWeights::generate(&g, 2);
        let bounded = LexSearch::run_view_target(&view, &w, VertexId(0), VertexId(4));
        assert!(bounded.cost(VertexId(4)).is_none());
        assert_eq!(bounded.hops(VertexId(1)), Some(1));
    }

    #[test]
    fn path_cost_ordering_is_lexicographic() {
        let a = PathCost { hops: 2, tie: 100 };
        let b = PathCost { hops: 3, tie: 1 };
        let c = PathCost { hops: 2, tie: 101 };
        assert!(a < b);
        assert!(a < c);
        assert_eq!(PathCost::ZERO.step(5), PathCost { hops: 1, tie: 5 });
    }

    #[test]
    fn vertex_masks_are_respected() {
        let g = generators::complete(5);
        let mask = ftb_graph::VertexMask::removing(&g, [VertexId(1), VertexId(2)]);
        let view = SubgraphView::full(&g).with_vertex_mask(&mask);
        let w = TieBreakWeights::generate(&g, 9);
        let search = LexSearch::run_view(&view, &w, VertexId(0));
        assert!(search.cost(VertexId(1)).is_none());
        assert!(search.cost(VertexId(2)).is_none());
        assert_eq!(search.hops(VertexId(3)), Some(1));
        let p = search.path_to(VertexId(4)).unwrap();
        assert!(!p.contains_vertex(VertexId(1)));
        assert!(!p.contains_vertex(VertexId(2)));
    }
}
