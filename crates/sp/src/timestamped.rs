//! Generation-stamped scratch vectors.
//!
//! A BFS scratch row has to look "all `UNREACHABLE`" at the start of every
//! sweep; filling an `O(n)` array per query is pure memory traffic that the
//! route-planning engines this project borrows its serving idioms from avoid
//! with *timestamped vectors*: every slot carries the epoch of its last
//! write, and a stale stamp makes the slot read as the default value. A
//! reset is then a single counter increment instead of an `O(n)` fill.
//!
//! [`TimestampedVector`] is the safe-Rust variant of that idiom used by the
//! query engine's per-context sweep scratch and by the incremental row
//! repair's affected-set marks.

/// A `Vec<T>` whose `clear` is `O(1)`: each slot is valid only if its epoch
/// stamp matches the vector's current epoch; stale slots read as the default.
#[derive(Clone, Debug)]
pub struct TimestampedVector<T: Copy> {
    data: Vec<T>,
    stamps: Vec<u32>,
    /// Epoch of valid slots. Starts at 1 with all stamps 0, so a fresh
    /// vector reads as all-default without any initial fill of `data`.
    current: u32,
    default: T,
}

impl<T: Copy> TimestampedVector<T> {
    /// A vector of `len` slots, all reading as `default`.
    pub fn new(len: usize, default: T) -> Self {
        TimestampedVector {
            data: vec![default; len],
            stamps: vec![0; len],
            current: 1,
            default,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a zero-length vector.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Invalidate every slot in `O(1)`: all slots read as the default again.
    ///
    /// On epoch wrap-around (once per `u32::MAX` resets) the stamps are
    /// hard-cleared so a stamp surviving from ~4 billion resets ago can
    /// never masquerade as current.
    pub fn reset(&mut self) {
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            self.stamps.fill(0);
            self.current = 1;
        }
    }

    /// Read slot `index`: the last value set since the latest
    /// [`TimestampedVector::reset`], or the default.
    #[inline]
    pub fn get(&self, index: usize) -> T {
        if self.stamps[index] == self.current {
            self.data[index]
        } else {
            self.default
        }
    }

    /// Write slot `index`, marking it valid for the current epoch.
    #[inline]
    pub fn set(&mut self, index: usize, value: T) {
        self.data[index] = value;
        self.stamps[index] = self.current;
    }

    /// `true` if slot `index` was written since the latest reset.
    #[inline]
    pub fn is_set(&self, index: usize) -> bool {
        self.stamps[index] == self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vector_reads_default_everywhere() {
        let v: TimestampedVector<u32> = TimestampedVector::new(4, u32::MAX);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        for i in 0..4 {
            assert_eq!(v.get(i), u32::MAX);
            assert!(!v.is_set(i));
        }
    }

    #[test]
    fn set_then_reset_restores_defaults_without_touching_data() {
        let mut v = TimestampedVector::new(3, 0u32);
        v.set(1, 42);
        assert_eq!(v.get(1), 42);
        assert!(v.is_set(1));
        v.reset();
        assert_eq!(v.get(1), 0, "stale slot must read as default");
        assert!(!v.is_set(1));
        v.set(1, 7);
        assert_eq!(v.get(1), 7);
        assert_eq!(v.get(0), 0);
    }

    #[test]
    fn epoch_wraparound_hard_clears_stamps() {
        let mut v = TimestampedVector::new(2, -1i32);
        v.set(0, 5);
        // Force the epoch to the wrap point and step over it.
        v.current = u32::MAX;
        v.set(1, 6);
        assert_eq!(v.get(1), 6);
        v.reset();
        assert_eq!(v.current, 1);
        assert_eq!(v.get(0), -1);
        assert_eq!(v.get(1), -1, "wrap must not resurrect old stamps");
    }

    #[test]
    fn zero_length_vector_is_fine() {
        let mut v: TimestampedVector<u8> = TimestampedVector::new(0, 0);
        assert!(v.is_empty());
        v.reset();
    }
}
