//! The tie-breaking weight assignment `W`.
//!
//! The paper assumes a positive weight assignment `W : E(G) → R_{>0}` chosen
//! so that shortest paths are unique in every subgraph `G' ⊆ G` (Section 2).
//! We realise `W` with independent uniform random integers in `[1, 2^40)`:
//! the *primary* path cost is still the hop count, and the tie weight only
//! discriminates between equal-hop paths. Sums of tie weights along simple
//! paths fit comfortably in `u64` (paths have fewer than `2^24` edges in any
//! workload we generate), and two distinct simple paths collide with
//! probability at most `n^2 / 2^40`, i.e. never in practice; the shortest
//! path tree construction asserts uniqueness in debug builds.

use ftb_graph::{EdgeId, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper bound (exclusive) on a single tie weight.
pub const MAX_TIE_WEIGHT: u64 = 1 << 40;

/// Per-edge tie-breaking weights implementing the paper's assignment `W`.
#[derive(Clone, Debug)]
pub struct TieBreakWeights {
    weights: Vec<u64>,
    seed: u64,
}

impl TieBreakWeights {
    /// Draw tie weights for every edge of `graph` from a seeded RNG.
    ///
    /// The same `(graph, seed)` pair always produces the same weights, which
    /// keeps every experiment reproducible.
    pub fn generate(graph: &Graph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = (0..graph.num_edges())
            .map(|_| rng.random_range(1..MAX_TIE_WEIGHT))
            .collect();
        TieBreakWeights { weights, seed }
    }

    /// A degenerate assignment giving every edge tie weight 1.
    ///
    /// Useful in tests where deterministic, structure-dependent tie-breaking
    /// (by vertex id) is preferred over random weights.
    pub fn uniform(graph: &Graph) -> Self {
        TieBreakWeights {
            weights: vec![1; graph.num_edges()],
            seed: 0,
        }
    }

    /// Tie weight of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// The seed the weights were drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of edges covered by the assignment.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the assignment covers no edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = generators::complete(20);
        let a = TieBreakWeights::generate(&g, 7);
        let b = TieBreakWeights::generate(&g, 7);
        let c = TieBreakWeights::generate(&g, 8);
        for e in g.edge_ids() {
            assert_eq!(a.weight(e), b.weight(e));
        }
        assert!(g.edge_ids().any(|e| a.weight(e) != c.weight(e)));
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn weights_are_positive_and_bounded() {
        let g = generators::grid(10, 10);
        let w = TieBreakWeights::generate(&g, 123);
        assert_eq!(w.len(), g.num_edges());
        assert!(!w.is_empty());
        for e in g.edge_ids() {
            assert!(w.weight(e) >= 1);
            assert!(w.weight(e) < MAX_TIE_WEIGHT);
        }
    }

    #[test]
    fn distinct_edges_rarely_collide() {
        let g = generators::complete(60);
        let w = TieBreakWeights::generate(&g, 99);
        let mut values: Vec<u64> = g.edge_ids().map(|e| w.weight(e)).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), g.num_edges(), "tie weights collided");
    }

    #[test]
    fn uniform_weights_are_all_one() {
        let g = generators::path(5);
        let w = TieBreakWeights::uniform(&g);
        for e in g.edge_ids() {
            assert_eq!(w.weight(e), 1);
        }
    }
}
