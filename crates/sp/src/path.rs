//! Concrete paths (vertex + edge sequences) extracted from searches.

use ftb_graph::{EdgeId, Graph, VertexId};

/// A simple path in a graph, stored as its vertex sequence and the edge ids
/// connecting consecutive vertices.
///
/// Invariant: `edges.len() + 1 == vertices.len()` (a single vertex is a
/// length-0 path with no edges).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// A path consisting of a single vertex.
    pub fn singleton(v: VertexId) -> Self {
        Path {
            vertices: vec![v],
            edges: Vec::new(),
        }
    }

    /// Build from parallel vertex/edge sequences.
    ///
    /// # Panics
    /// Panics if `edges.len() + 1 != vertices.len()` or `vertices` is empty.
    pub fn new(vertices: Vec<VertexId>, edges: Vec<EdgeId>) -> Self {
        assert!(!vertices.is_empty(), "a path has at least one vertex");
        assert_eq!(edges.len() + 1, vertices.len(), "path arity mismatch");
        Path { vertices, edges }
    }

    /// Number of edges (the paper's `|P|`).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for a single-vertex path.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First vertex.
    pub fn first(&self) -> VertexId {
        self.vertices[0]
    }

    /// Last vertex.
    pub fn last(&self) -> VertexId {
        *self.vertices.last().unwrap()
    }

    /// The paper's `LastE(P)`: the last edge, if the path has one.
    pub fn last_edge(&self) -> Option<EdgeId> {
        self.edges.last().copied()
    }

    /// First edge, if any.
    pub fn first_edge(&self) -> Option<EdgeId> {
        self.edges.first().copied()
    }

    /// Vertex sequence.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Edge sequence.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// `true` if `v` appears on the path.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// `true` if `e` appears on the path.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// Position of `v` on the path (0-based), if present.
    pub fn position_of(&self, v: VertexId) -> Option<usize> {
        self.vertices.iter().position(|&x| x == v)
    }

    /// The subpath `P[from, to]` between two vertices on the path (the
    /// paper's `P[u_i, u_j]` notation), inclusive of both endpoints.
    ///
    /// # Panics
    /// Panics if either vertex is not on the path or `from` appears after
    /// `to`.
    pub fn subpath(&self, from: VertexId, to: VertexId) -> Path {
        let i = self.position_of(from).expect("subpath: `from` not on path");
        let j = self.position_of(to).expect("subpath: `to` not on path");
        assert!(i <= j, "subpath: endpoints out of order");
        Path {
            vertices: self.vertices[i..=j].to_vec(),
            edges: self.edges[i..j].to_vec(),
        }
    }

    /// Concatenation `self ◦ other`; `other` must start where `self` ends.
    ///
    /// # Panics
    /// Panics if the endpoints do not line up.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(
            self.last(),
            other.first(),
            "concat: paths do not share an endpoint"
        );
        let mut vertices = self.vertices.clone();
        vertices.extend_from_slice(&other.vertices[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Path { vertices, edges }
    }

    /// Verify against `graph` that consecutive vertices are joined by the
    /// recorded edge ids and that the path is simple (no repeated vertex).
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        for (i, &e) in self.edges.iter().enumerate() {
            let edge = graph.edge(e);
            let (a, b) = (self.vertices[i], self.vertices[i + 1]);
            if !(edge.is_incident(a) && edge.is_incident(b) && a != b) {
                return Err(format!("edge {e:?} does not connect {a:?} and {b:?}"));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &v in &self.vertices {
            if !seen.insert(v) {
                return Err(format!("vertex {v:?} repeats on the path"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;

    fn path_graph_path(n: usize) -> (Graph, Path) {
        let g = generators::path(n);
        let vertices: Vec<VertexId> = (0..n).map(VertexId::new).collect();
        let edges: Vec<EdgeId> = (0..n - 1)
            .map(|i| g.find_edge(VertexId::new(i), VertexId::new(i + 1)).unwrap())
            .collect();
        let p = Path::new(vertices, edges);
        (g, p)
    }

    #[test]
    fn accessors() {
        let (g, p) = path_graph_path(5);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.first(), VertexId(0));
        assert_eq!(p.last(), VertexId(4));
        assert_eq!(p.last_edge(), g.find_edge(VertexId(3), VertexId(4)));
        assert_eq!(p.first_edge(), g.find_edge(VertexId(0), VertexId(1)));
        assert!(p.contains_vertex(VertexId(2)));
        assert!(!p.contains_vertex(VertexId(9)));
        assert_eq!(p.position_of(VertexId(3)), Some(3));
        p.validate(&g).unwrap();
    }

    #[test]
    fn singleton_path() {
        let p = Path::singleton(VertexId(7));
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.first(), VertexId(7));
        assert_eq!(p.last(), VertexId(7));
        assert_eq!(p.last_edge(), None);
    }

    #[test]
    fn subpath_and_concat() {
        let (_g, p) = path_graph_path(6);
        let mid = p.subpath(VertexId(1), VertexId(3));
        assert_eq!(mid.vertices(), &[VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(mid.len(), 2);
        let tail = p.subpath(VertexId(3), VertexId(5));
        let glued = mid.concat(&tail);
        assert_eq!(glued.first(), VertexId(1));
        assert_eq!(glued.last(), VertexId(5));
        assert_eq!(glued.len(), 4);
    }

    #[test]
    #[should_panic]
    fn concat_requires_shared_endpoint() {
        let (_g, p) = path_graph_path(6);
        let a = p.subpath(VertexId(0), VertexId(1));
        let b = p.subpath(VertexId(3), VertexId(4));
        let _ = a.concat(&b);
    }

    #[test]
    fn validate_rejects_wrong_edges() {
        let g = generators::cycle(4);
        // vertices 0-1-2 but claim the connecting edges are both edge 0
        let e0 = EdgeId(0);
        let p = Path::new(vec![VertexId(0), VertexId(1), VertexId(2)], vec![e0, e0]);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn validate_rejects_repeated_vertices() {
        let g = generators::cycle(4);
        let e01 = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let e10 = e01;
        let p = Path::new(vec![VertexId(0), VertexId(1), VertexId(0)], vec![e01, e10]);
        assert!(p.validate(&g).is_err());
    }
}
