//! Flat-binary snapshot encoding for plain-old-data engine state.
//!
//! The engine (`EngineCore` and the structures it owns) is a self-contained
//! owned value of flat `Vec`s — CSR arrays, distance rows, Euler-tour arrays.
//! This crate provides the `rust_road_router`-style `Load`/`Store` idiom over
//! that shape: every array is written as a `u64` element count followed by the
//! raw little-endian bytes of its elements, and read back with **one
//! allocation and one bulk pass per array** — there is no per-element framing,
//! no varints, no tags inside arrays. (The workspace forbids `unsafe`, so the
//! bulk pass is `chunks_exact` + `from_le_bytes`, which LLVM lowers to a
//! memcpy-style loop on little-endian targets.)
//!
//! On top of the primitive [`Writer`]/[`Reader`] pair sits a versioned
//! container ([`SnapshotWriter`]/[`SnapshotReader`]) with a fixed header —
//! magic, format version, layout hash, checksum, graph fingerprint — and a
//! per-section offset table, so higher layers can locate each section without
//! decoding the others.
//!
//! Decoding is **total**: any byte string either parses or returns a typed
//! [`SnapshotError`]. Truncated input, corrupt headers, bit flips (caught by
//! the whole-file checksum), lying length prefixes, and schema drift (caught
//! by the layout hash) all surface as errors, never panics, and length
//! prefixes are bounds-checked against the remaining input *before* any
//! allocation so hostile counts cannot trigger OOM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// Magic bytes identifying a snapshot file (8 bytes).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FTBSNAP\0";

/// Current snapshot container format version.
///
/// Bumped when the *container* layout (header fields, section table encoding)
/// changes. Schema changes to the payload of individual sections are caught
/// separately by the layout hash.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Byte offset of the checksum field within the header; the checksum covers
/// every byte *after* this field (fingerprint, section table, payload).
const CHECKSUM_OFFSET: usize = 20;
/// Fixed header size: magic(8) + version(4) + layout(8) + checksum(8) +
/// fingerprint(8) + section_count(4).
const HEADER_LEN: usize = 40;
/// Bytes per section-table entry: id(4) + offset(8) + len(8).
const TABLE_ENTRY_LEN: usize = 20;

/// FNV-1a hash over a byte string, used for layout hashes and the whole-file
/// checksum. Matches the constants used by `Graph::fingerprint`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Typed decoding failure. Every malformed input maps to exactly one of
/// these; decoding never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not begin with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The layout hash in the header does not match this build's schema —
    /// the snapshot was written by a build with different serialized fields.
    LayoutMismatch {
        /// Hash this build expects.
        expected: u64,
        /// Hash found in the header.
        found: u64,
    },
    /// The whole-file checksum does not match: the bytes were corrupted in
    /// storage or transit.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the received bytes.
        found: u64,
    },
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section decoded successfully but left unconsumed bytes behind.
    TrailingBytes {
        /// Which section had leftovers.
        section: &'static str,
        /// How many bytes were left.
        remaining: usize,
    },
    /// The section table has no entry for a required section.
    MissingSection {
        /// Section id that was required.
        id: u32,
    },
    /// A section's bytes decoded but violate an invariant of the target type.
    Malformed {
        /// Which section (or type) the violation was found in.
        section: &'static str,
        /// What invariant failed.
        detail: &'static str,
    },
    /// The snapshot was built for a different graph than expected
    /// (fingerprint comparison failed).
    GraphMismatch {
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint recorded in (or recomputed from) the snapshot.
        found: u64,
    },
    /// An underlying I/O error while reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads v{supported})"
            ),
            SnapshotError::LayoutMismatch { expected, found } => write!(
                f,
                "snapshot layout hash {found:#018x} does not match this build's schema {expected:#018x}"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, bytes hash to {found:#018x}"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} bytes, only {available} available"
            ),
            SnapshotError::TrailingBytes { section, remaining } => write!(
                f,
                "snapshot section `{section}` has {remaining} trailing bytes"
            ),
            SnapshotError::MissingSection { id } => {
                write!(f, "snapshot is missing required section {id}")
            }
            SnapshotError::Malformed { section, detail } => {
                write!(f, "snapshot section `{section}` is malformed: {detail}")
            }
            SnapshotError::GraphMismatch { expected, found } => write!(
                f,
                "snapshot was built for a different graph: expected fingerprint {expected:#018x}, found {found:#018x}"
            ),
            SnapshotError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// Append-only little-endian byte sink used to build section payloads.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` as 4 little-endian bytes.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` as 8 little-endian bytes.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (byte-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes with no framing.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u64` element count followed by the raw little-endian bytes
    /// of the slice — the canonical flat-array encoding.
    pub fn put_u32_slice(&mut self, vals: &[u32]) {
        self.put_u64(vals.len() as u64);
        self.buf.reserve(vals.len() * 4);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a `u64` element count followed by the raw little-endian bytes
    /// of the slice.
    pub fn put_u64_slice(&mut self, vals: &[u64]) {
        self.put_u64(vals.len() as u64);
        self.buf.reserve(vals.len() * 8);
        for &v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian cursor over a section's bytes.
///
/// Every read either succeeds or returns [`SnapshotError::Truncated`];
/// array reads validate the element count against the remaining input
/// *before* allocating.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor over `bytes`, starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` stored as its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `u64` element count (validated against remaining input) and
    /// that many little-endian `u32`s in one bulk pass.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let count = self.checked_count(4)?;
        let raw = self.take(count * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Read a `u64` element count (validated against remaining input) and
    /// that many little-endian `u64`s in one bulk pass.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let count = self.checked_count(8)?;
        let raw = self.take(count * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.checked_count(1)?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::Malformed {
            section: "string",
            detail: "invalid utf-8",
        })
    }

    /// Read a length prefix and validate it against the bytes actually
    /// remaining, so a lying count cannot drive a huge allocation.
    fn checked_count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let count = self.get_u64()?;
        let remaining = self.remaining();
        if count > (remaining / elem_size) as u64 {
            return Err(SnapshotError::Truncated {
                needed: (count as usize).saturating_mul(elem_size),
                available: remaining,
            });
        }
        Ok(count as usize)
    }

    /// Assert the section was consumed exactly.
    pub fn finish(self, section: &'static str) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                section,
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Types that can serialize themselves into a [`Writer`]. Infallible: the
/// in-memory value is always valid.
pub trait Store {
    /// Append this value's canonical encoding to `w`.
    fn store(&self, w: &mut Writer);
}

/// Types that can reconstruct themselves from a [`Reader`], validating every
/// invariant the in-memory type relies on.
pub trait Load: Sized {
    /// Decode one value, advancing the reader past exactly the bytes
    /// [`Store::store`] wrote.
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;
}

impl Store for u32 {
    fn store(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
}

impl Load for u32 {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.get_u32()
    }
}

impl Store for u64 {
    fn store(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
}

impl Load for u64 {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.get_u64()
    }
}

impl Store for f64 {
    fn store(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
}

impl Load for f64 {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.get_f64()
    }
}

impl Store for Vec<u32> {
    fn store(&self, w: &mut Writer) {
        w.put_u32_slice(self);
    }
}

impl Load for Vec<u32> {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.get_u32_vec()
    }
}

impl Store for Vec<u64> {
    fn store(&self, w: &mut Writer) {
        w.put_u64_slice(self);
    }
}

impl Load for Vec<u64> {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.get_u64_vec()
    }
}

/// Builds a complete snapshot file: fixed header + section table + payload.
///
/// File layout (all integers little-endian):
///
/// ```text
/// offset  size  field
///      0     8  magic                b"FTBSNAP\0"
///      8     4  format version       u32
///     12     8  layout hash          u64 (FNV-1a of the schema description)
///     20     8  checksum             u64 (FNV-1a of every byte from offset 28)
///     28     8  graph fingerprint    u64 (Graph::fingerprint())
///     36     4  section count        u32
///     40   20k  section table        k × { id u32, offset u64, len u64 }
///      …        payload              concatenated section bytes
/// ```
///
/// Section offsets are relative to the start of the payload. The checksum
/// covers the fingerprint, the table, and the payload, so any single bit
/// flip after the checksum field is detected; flips *in* the earlier header
/// fields are caught by the magic/version/layout checks themselves.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// New snapshot with no sections.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a section by id, building its payload with `fill`.
    pub fn section(&mut self, id: u32, fill: impl FnOnce(&mut Writer)) {
        let mut w = Writer::new();
        fill(&mut w);
        self.sections.push((id, w.into_bytes()));
    }

    /// Add a section whose payload is an opaque byte string.
    pub fn raw_section(&mut self, id: u32, bytes: Vec<u8>) {
        self.sections.push((id, bytes));
    }

    /// Assemble the final file bytes.
    pub fn finish(self, layout_hash: u64, fingerprint: u64) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, b)| b.len()).sum();
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let mut out = Vec::with_capacity(HEADER_LEN + table_len + payload_len);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&layout_hash.to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // checksum patched below
        out.extend_from_slice(&fingerprint.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset: u64 = 0;
        for (id, bytes) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            offset += bytes.len() as u64;
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
        }
        let checksum = fnv1a(&out[CHECKSUM_OFFSET + 8..]);
        out[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Parsed view over a snapshot file: header validated, sections located but
/// not yet decoded.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    fingerprint: u64,
    payload: &'a [u8],
    table: Vec<(u32, usize, usize)>,
}

impl<'a> SnapshotReader<'a> {
    /// Validate the container: magic, version, checksum, layout hash, and
    /// section-table bounds. Individual sections are decoded lazily via
    /// [`SnapshotReader::section`].
    pub fn parse(bytes: &'a [u8], expected_layout: u64) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated {
                needed: HEADER_LEN,
                available: bytes.len(),
            });
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = Reader::new(&bytes[8..]);
        let version = r.get_u32()?;
        if version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let layout = r.get_u64()?;
        let checksum = r.get_u64()?;
        // Verify the checksum before trusting the layout hash or table: a
        // bit flip anywhere past the checksum field must surface as
        // ChecksumMismatch, not as a confusing downstream decode error.
        let actual = fnv1a(&bytes[CHECKSUM_OFFSET + 8..]);
        if actual != checksum {
            return Err(SnapshotError::ChecksumMismatch {
                expected: checksum,
                found: actual,
            });
        }
        if layout != expected_layout {
            return Err(SnapshotError::LayoutMismatch {
                expected: expected_layout,
                found: layout,
            });
        }
        let fingerprint = r.get_u64()?;
        let count = r.get_u32()? as usize;
        let table_bytes = HEADER_LEN + count * TABLE_ENTRY_LEN;
        if bytes.len() < table_bytes {
            return Err(SnapshotError::Truncated {
                needed: table_bytes,
                available: bytes.len(),
            });
        }
        let payload = &bytes[table_bytes..];
        let mut table = Vec::with_capacity(count);
        let mut tr = Reader::new(&bytes[HEADER_LEN..table_bytes]);
        for _ in 0..count {
            let id = tr.get_u32()?;
            let off = tr.get_u64()?;
            let len = tr.get_u64()?;
            let end = off.checked_add(len).ok_or(SnapshotError::Malformed {
                section: "section table",
                detail: "offset + len overflows",
            })?;
            if end > payload.len() as u64 {
                return Err(SnapshotError::Truncated {
                    needed: table_bytes + end as usize,
                    available: bytes.len(),
                });
            }
            table.push((id, off as usize, len as usize));
        }
        Ok(Self {
            fingerprint,
            payload,
            table,
        })
    }

    /// Graph fingerprint recorded in the header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Raw bytes of a section, or `MissingSection`.
    pub fn section_bytes(&self, id: u32) -> Result<&'a [u8], SnapshotError> {
        self.table
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .map(|&(_, off, len)| &self.payload[off..off + len])
            .ok_or(SnapshotError::MissingSection { id })
    }

    /// A [`Reader`] positioned at the start of a section's bytes.
    pub fn section(&self, id: u32) -> Result<Reader<'a>, SnapshotError> {
        Ok(Reader::new(self.section_bytes(id)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.25);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[]);
        w.put_str("erdos-renyi");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -0.25);
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_vec().unwrap(), Vec::<u64>::new());
        assert_eq!(r.get_str().unwrap(), "erdos-renyi");
        r.finish("test").unwrap();
    }

    #[test]
    fn lying_count_is_truncated_not_oom() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims u64::MAX elements follow
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_u32_vec(),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.get_u32().unwrap();
        assert_eq!(
            r.finish("x"),
            Err(SnapshotError::TrailingBytes {
                section: "x",
                remaining: 1
            })
        );
    }

    fn sample_snapshot() -> Vec<u8> {
        let mut snap = SnapshotWriter::new();
        snap.section(1, |w| w.put_u32_slice(&[10, 20, 30]));
        snap.raw_section(2, b"note".to_vec());
        snap.finish(0x1234, 0x5678)
    }

    #[test]
    fn container_roundtrip() {
        let bytes = sample_snapshot();
        let snap = SnapshotReader::parse(&bytes, 0x1234).unwrap();
        assert_eq!(snap.fingerprint(), 0x5678);
        let mut r = snap.section(1).unwrap();
        assert_eq!(r.get_u32_vec().unwrap(), vec![10, 20, 30]);
        r.finish("s1").unwrap();
        assert_eq!(snap.section_bytes(2).unwrap(), b"note");
        assert_eq!(
            snap.section(3).unwrap_err(),
            SnapshotError::MissingSection { id: 3 }
        );
    }

    #[test]
    fn container_rejects_bad_magic() {
        let mut bytes = sample_snapshot();
        bytes[0] ^= 1;
        assert_eq!(
            SnapshotReader::parse(&bytes, 0x1234).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn container_rejects_version_skew() {
        let mut bytes = sample_snapshot();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes, 0x1234).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn container_rejects_layout_mismatch() {
        let bytes = sample_snapshot();
        assert!(matches!(
            SnapshotReader::parse(&bytes, 0x9999).unwrap_err(),
            SnapshotError::LayoutMismatch { .. }
        ));
    }

    #[test]
    fn container_rejects_any_payload_bit_flip() {
        let bytes = sample_snapshot();
        for byte in CHECKSUM_OFFSET + 8..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x10;
            assert!(
                matches!(
                    SnapshotReader::parse(&flipped, 0x1234).unwrap_err(),
                    SnapshotError::ChecksumMismatch { .. }
                ),
                "flip at byte {byte} not caught"
            );
        }
    }

    #[test]
    fn container_rejects_every_strict_prefix() {
        let bytes = sample_snapshot();
        for len in 0..bytes.len() {
            assert!(
                SnapshotReader::parse(&bytes[..len], 0x1234).is_err(),
                "prefix of len {len} parsed"
            );
        }
    }
}
