//! Minimal data-parallel helpers built on `crossbeam::scope`.
//!
//! The FT-BFS construction repeats the same independent computation over a
//! large index range many times (one constrained shortest-path search per
//! failing tree edge, one `Pcons` run per terminal vertex, one protection
//! check per tree edge). These loops are embarrassingly parallel, so a small
//! chunk-stealing parallel-for over scoped threads is all we need — we keep
//! the harness tiny and dependency-light instead of pulling in a full
//! work-stealing runtime.
//!
//! The entry points are:
//! * [`parallel_for_each`] — run a closure for every index in `0..n`,
//! * [`parallel_map`] — compute a `Vec<R>` with `out[i] = f(i)`,
//! * [`parallel_map_init`] — like `parallel_map`, but each worker creates a
//!   reusable mutable state once (the primitive behind per-thread query
//!   contexts in sharded fault-query serving),
//! * [`parallel_map_reduce`] — map then fold with an associative combiner,
//! * [`ParallelConfig`] — thread-count control (including forcing serial
//!   execution, which the experiment harness uses for timing baselines, and
//!   the [`config::FORCE_THREADS_ENV`] CI override pinning the default
//!   width).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod executor;
pub mod reduce;

pub use config::{ParallelConfig, FORCE_THREADS_ENV};
pub use executor::{parallel_for_each, parallel_map, parallel_map_init};
pub use reduce::{parallel_map_reduce, parallel_sum};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn end_to_end_smoke() {
        let cfg = ParallelConfig::default();
        let touched = AtomicUsize::new(0);
        parallel_for_each(&cfg, 1000, |_| {
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 1000);

        let squares = parallel_map(&cfg, 100, |i| i * i);
        assert_eq!(squares[7], 49);

        let total = parallel_sum(&cfg, 100, |i| i as u64);
        assert_eq!(total, 4950);
    }
}
