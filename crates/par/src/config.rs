//! Thread-count configuration for the parallel helpers.

/// Controls how many worker threads the parallel helpers use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
    /// Work items per grab from the shared counter; larger chunks reduce
    /// contention, smaller chunks balance skewed workloads better.
    chunk_size: usize,
}

impl ParallelConfig {
    /// Use all available cores (as reported by the OS).
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParallelConfig {
            threads,
            chunk_size: 16,
        }
    }

    /// Use exactly `threads` worker threads (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            chunk_size: 16,
        }
    }

    /// Force strictly sequential execution on the calling thread.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// Override the chunk size (minimum 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Work items grabbed per atomic fetch.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// `true` if the configuration degenerates to sequential execution.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_at_least_one_thread() {
        let cfg = ParallelConfig::default();
        assert!(cfg.threads() >= 1);
        assert!(cfg.chunk_size() >= 1);
    }

    #[test]
    fn explicit_thread_count_is_clamped() {
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        assert!(ParallelConfig::serial().is_serial());
        assert!(!ParallelConfig::with_threads(2).is_serial());
    }

    #[test]
    fn chunk_size_is_clamped() {
        let cfg = ParallelConfig::with_threads(2).with_chunk_size(0);
        assert_eq!(cfg.chunk_size(), 1);
        let cfg = ParallelConfig::with_threads(2).with_chunk_size(128);
        assert_eq!(cfg.chunk_size(), 128);
    }
}
