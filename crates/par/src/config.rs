//! Thread-count configuration for the parallel helpers.

/// Controls how many worker threads the parallel helpers use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    threads: usize,
    /// Work items per grab from the shared counter; larger chunks reduce
    /// contention, smaller chunks balance skewed workloads better.
    chunk_size: usize,
}

/// Environment variable overriding the thread count of
/// [`ParallelConfig::new`] / [`ParallelConfig::default`].
///
/// CI sets this to force the multi-threaded code paths (construction sweeps,
/// sharded `query_many`) even where a default would pick the core count, and
/// to pin them to a known width. Explicit configurations
/// ([`ParallelConfig::serial`], [`ParallelConfig::with_threads`]) are never
/// overridden.
pub const FORCE_THREADS_ENV: &str = "FTBFS_FORCE_THREADS";

/// Parse the value of [`FORCE_THREADS_ENV`]: a positive integer thread count,
/// anything else (missing, empty, unparsable, zero) means "no override".
fn parse_forced_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

impl ParallelConfig {
    /// Use all available cores (as reported by the OS), unless the
    /// [`FORCE_THREADS_ENV`] environment variable pins an explicit count.
    pub fn new() -> Self {
        let forced = std::env::var(FORCE_THREADS_ENV).ok();
        let threads = parse_forced_threads(forced.as_deref()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ParallelConfig {
            threads,
            chunk_size: 16,
        }
    }

    /// Use exactly `threads` worker threads (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            chunk_size: 16,
        }
    }

    /// Force strictly sequential execution on the calling thread.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// Override the chunk size (minimum 1).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Work items grabbed per atomic fetch.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// `true` if the configuration degenerates to sequential execution.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_at_least_one_thread() {
        let cfg = ParallelConfig::default();
        assert!(cfg.threads() >= 1);
        assert!(cfg.chunk_size() >= 1);
    }

    #[test]
    fn explicit_thread_count_is_clamped() {
        assert_eq!(ParallelConfig::with_threads(0).threads(), 1);
        assert_eq!(ParallelConfig::with_threads(4).threads(), 4);
        assert!(ParallelConfig::serial().is_serial());
        assert!(!ParallelConfig::with_threads(2).is_serial());
    }

    #[test]
    fn forced_thread_parsing_accepts_only_positive_integers() {
        assert_eq!(parse_forced_threads(None), None);
        assert_eq!(parse_forced_threads(Some("")), None);
        assert_eq!(parse_forced_threads(Some("abc")), None);
        assert_eq!(parse_forced_threads(Some("0")), None);
        assert_eq!(parse_forced_threads(Some("-3")), None);
        assert_eq!(parse_forced_threads(Some("4")), Some(4));
        assert_eq!(parse_forced_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn chunk_size_is_clamped() {
        let cfg = ParallelConfig::with_threads(2).with_chunk_size(0);
        assert_eq!(cfg.chunk_size(), 1);
        let cfg = ParallelConfig::with_threads(2).with_chunk_size(128);
        assert_eq!(cfg.chunk_size(), 128);
    }
}
