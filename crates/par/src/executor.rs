//! Chunked parallel-for and parallel-map over index ranges.

use crate::config::ParallelConfig;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(i)` for every `i` in `0..len`, distributing indices over worker
/// threads in chunks.
///
/// `f` must be `Sync` because it is shared by all workers; per-index mutable
/// state should live inside `f` (e.g. thread-local scratch) or behind
/// synchronisation.
pub fn parallel_for_each<F>(config: &ParallelConfig, len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if len == 0 {
        return;
    }
    if config.is_serial() || len <= config.chunk_size() {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let chunk = config.chunk_size();
    let workers = config.threads().min(len.div_ceil(chunk));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("parallel_for_each worker panicked");
}

/// Compute `vec![f(0), f(1), ..., f(len-1)]` in parallel.
///
/// The output order matches the index order regardless of scheduling.
pub fn parallel_map<R, F>(config: &ParallelConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_map_init(config, len, || (), |(), i| f(i))
}

/// Compute `vec![f(s, 0), f(s, 1), ..., f(s, len-1)]` in parallel, where `s`
/// is a per-worker mutable state created once by `init` and reused across
/// every index that worker processes.
///
/// This is the primitive behind sharded fault-query serving: `init` builds a
/// per-thread scratch context (buffers, caches), and `f` reuses it for each
/// work item instead of allocating per item. With a serial configuration a
/// single state is created and the loop degenerates to a plain fold-map.
///
/// The output order matches the index order regardless of scheduling.
pub fn parallel_map_init<S, R, I, F>(config: &ParallelConfig, len: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    if config.is_serial() || len <= config.chunk_size() {
        let mut state = init();
        return (0..len).map(|i| f(&mut state, i)).collect();
    }
    // Collect (index, value) pairs per worker, then scatter into place. This
    // avoids unsafe writes into uninitialised memory while keeping each
    // worker's allocations local.
    let buckets: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let chunk = config.chunk_size();
    let workers = config.threads().min(len.div_ceil(chunk));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    for i in start..end {
                        local.push((i, f(&mut state, i)));
                    }
                }
                buckets.lock().push(local);
            });
        }
    })
    .expect("parallel_map worker panicked");

    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for bucket in buckets.into_inner() {
        for (i, v) in bucket {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map missed an index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_every_index_once() {
        let cfg = ParallelConfig::with_threads(4).with_chunk_size(3);
        let n = 1013;
        let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_each(&cfg, n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_handles_empty_and_tiny_ranges() {
        let cfg = ParallelConfig::with_threads(8);
        parallel_for_each(&cfg, 0, |_| panic!("must not be called"));
        let hit = AtomicU64::new(0);
        parallel_for_each(&cfg, 1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_preserves_index_order() {
        let cfg = ParallelConfig::with_threads(4).with_chunk_size(2);
        let out = parallel_map(&cfg, 500, |i| i * 3);
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn serial_config_matches_parallel_results() {
        let serial = ParallelConfig::serial();
        let parallel = ParallelConfig::with_threads(4);
        let a = parallel_map(&serial, 300, |i| (i as u64).wrapping_mul(2654435761));
        let b = parallel_map(&parallel, 300, |i| (i as u64).wrapping_mul(2654435761));
        assert_eq!(a, b);
    }

    /// Deterministic splitmix64 step — a cheap stand-in for a seeded RNG so
    /// the workload below is randomized but reproducible.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn serial_and_multithread_configs_agree_on_a_randomized_workload() {
        // Randomized per-item work with a skewed cost profile: expensive items
        // scattered through the range make workers finish chunks out of order,
        // which is exactly the scheduling the index-order guarantee must
        // survive.
        let mut seed = 0xF7B5_2024u64;
        let work: Vec<u64> = (0..700).map(|_| splitmix64(&mut seed)).collect();
        let eval = |items: &[u64], i: usize| -> u64 {
            let spin = (items[i] % 97) * (items[i] % 13);
            let mut acc = items[i];
            for _ in 0..spin {
                acc = acc.rotate_left(7) ^ 0xA5A5_A5A5_A5A5_A5A5;
            }
            acc
        };
        let expected = parallel_map(&ParallelConfig::serial(), work.len(), |i| eval(&work, i));
        for threads in [2usize, 4, 8] {
            for chunk in [1usize, 3, 16] {
                let cfg = ParallelConfig::with_threads(threads).with_chunk_size(chunk);
                let got = parallel_map(&cfg, work.len(), |i| eval(&work, i));
                assert_eq!(
                    got, expected,
                    "threads = {threads}, chunk = {chunk}: output diverged from serial"
                );
                for (i, v) in got.iter().enumerate() {
                    assert_eq!(*v, eval(&work, i), "index order broken at {i}");
                }
            }
        }
    }

    #[test]
    fn map_init_reuses_worker_state_and_preserves_order() {
        let inits = AtomicU64::new(0);
        let cfg = ParallelConfig::with_threads(4).with_chunk_size(2);
        let n = 600usize;
        // Each worker's state counts how many items it has seen; the result
        // pairs the index with a strictly positive per-worker sequence number.
        let out = parallel_map_init(
            &cfg,
            n,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out.len(), n);
        let total_inits = inits.load(Ordering::Relaxed);
        assert!(
            total_inits <= 4,
            "states must be per worker, not per item (got {total_inits} inits)"
        );
        let mut seen_per_state_total = 0usize;
        for (i, (idx, seq)) in out.iter().enumerate() {
            assert_eq!(*idx, i, "index order broken at {i}");
            assert!(*seq >= 1);
            seen_per_state_total = seen_per_state_total.max(*seq);
        }
        assert!(seen_per_state_total >= n / 4, "state reuse did not happen");
    }

    #[test]
    fn map_init_serial_uses_one_state_and_empty_skips_init() {
        let inits = AtomicU64::new(0);
        let out = parallel_map_init(
            &ParallelConfig::serial(),
            5,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |(), i| i * 2,
        );
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
        assert_eq!(inits.load(Ordering::Relaxed), 1);

        let out = parallel_map_init(
            &ParallelConfig::with_threads(4),
            0,
            || panic!("init must not run for an empty range"),
            |(), i| i,
        );
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn map_matches_sequential_for_arbitrary_sizes(len in 0usize..400, threads in 1usize..8, chunk in 1usize..32) {
            let cfg = ParallelConfig::with_threads(threads).with_chunk_size(chunk);
            let expected: Vec<usize> = (0..len).map(|i| i ^ 0xABCD).collect();
            let got = parallel_map(&cfg, len, |i| i ^ 0xABCD);
            prop_assert_eq!(got, expected);
        }
    }
}
