//! Chunked parallel-for and parallel-map over index ranges.

use crate::config::ParallelConfig;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f(i)` for every `i` in `0..len`, distributing indices over worker
/// threads in chunks.
///
/// `f` must be `Sync` because it is shared by all workers; per-index mutable
/// state should live inside `f` (e.g. thread-local scratch) or behind
/// synchronisation.
pub fn parallel_for_each<F>(config: &ParallelConfig, len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if len == 0 {
        return;
    }
    if config.is_serial() || len <= config.chunk_size() {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let chunk = config.chunk_size();
    let workers = config.threads().min(len.div_ceil(chunk));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for i in start..end {
                    f(i);
                }
            });
        }
    })
    .expect("parallel_for_each worker panicked");
}

/// Compute `vec![f(0), f(1), ..., f(len-1)]` in parallel.
///
/// The output order matches the index order regardless of scheduling.
pub fn parallel_map<R, F>(config: &ParallelConfig, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if config.is_serial() || len <= config.chunk_size() {
        return (0..len).map(f).collect();
    }
    // Collect (index, value) pairs per worker, then scatter into place. This
    // avoids unsafe writes into uninitialised memory while keeping each
    // worker's allocations local.
    let buckets: Mutex<Vec<Vec<(usize, R)>>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    let chunk = config.chunk_size();
    let workers = config.threads().min(len.div_ceil(chunk));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    for i in start..end {
                        local.push((i, f(i)));
                    }
                }
                buckets.lock().push(local);
            });
        }
    })
    .expect("parallel_map worker panicked");

    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for bucket in buckets.into_inner() {
        for (i, v) in bucket {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map missed an index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn for_each_visits_every_index_once() {
        let cfg = ParallelConfig::with_threads(4).with_chunk_size(3);
        let n = 1013;
        let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_each(&cfg, n, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_handles_empty_and_tiny_ranges() {
        let cfg = ParallelConfig::with_threads(8);
        parallel_for_each(&cfg, 0, |_| panic!("must not be called"));
        let hit = AtomicU64::new(0);
        parallel_for_each(&cfg, 1, |i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_preserves_index_order() {
        let cfg = ParallelConfig::with_threads(4).with_chunk_size(2);
        let out = parallel_map(&cfg, 500, |i| i * 3);
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn serial_config_matches_parallel_results() {
        let serial = ParallelConfig::serial();
        let parallel = ParallelConfig::with_threads(4);
        let a = parallel_map(&serial, 300, |i| (i as u64).wrapping_mul(2654435761));
        let b = parallel_map(&parallel, 300, |i| (i as u64).wrapping_mul(2654435761));
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn map_matches_sequential_for_arbitrary_sizes(len in 0usize..400, threads in 1usize..8, chunk in 1usize..32) {
            let cfg = ParallelConfig::with_threads(threads).with_chunk_size(chunk);
            let expected: Vec<usize> = (0..len).map(|i| i ^ 0xABCD).collect();
            let got = parallel_map(&cfg, len, |i| i ^ 0xABCD);
            prop_assert_eq!(got, expected);
        }
    }
}
