//! Parallel map-reduce over index ranges.

use crate::config::ParallelConfig;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Map every index through `map` and fold the results with the associative
/// combiner `reduce`, starting from `identity` on every worker.
///
/// `reduce` must be associative and `identity` must be its neutral element;
/// the grouping of the fold is unspecified (it depends on scheduling), but
/// for associative combiners the result is deterministic.
pub fn parallel_map_reduce<R, M, C>(
    config: &ParallelConfig,
    len: usize,
    identity: R,
    map: M,
    reduce: C,
) -> R
where
    R: Send + Sync + Clone,
    M: Fn(usize) -> R + Sync,
    C: Fn(R, R) -> R + Sync + Send,
{
    if config.is_serial() || len <= config.chunk_size() {
        return (0..len).map(map).fold(identity, reduce);
    }
    let next = AtomicUsize::new(0);
    let chunk = config.chunk_size();
    let workers = config.threads().min(len.div_ceil(chunk).max(1));
    let partials: Mutex<Vec<R>> = Mutex::new(Vec::with_capacity(workers));
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut acc = identity.clone();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    for i in start..end {
                        acc = reduce(acc, map(i));
                    }
                }
                partials.lock().push(acc);
            });
        }
    })
    .expect("parallel_map_reduce worker panicked");
    partials.into_inner().into_iter().fold(identity, reduce)
}

/// Parallel sum of `f(i)` for `i` in `0..len`.
pub fn parallel_sum<F>(config: &ParallelConfig, len: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    parallel_map_reduce(config, len, 0u64, f, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sum_matches_closed_form() {
        let cfg = ParallelConfig::with_threads(4).with_chunk_size(7);
        let n = 10_000u64;
        assert_eq!(
            parallel_sum(&cfg, n as usize, |i| i as u64),
            n * (n - 1) / 2
        );
    }

    #[test]
    fn reduce_with_max_combiner() {
        let cfg = ParallelConfig::with_threads(3).with_chunk_size(5);
        let data: Vec<u64> = (0..257).map(|i| (i * 7919) % 1009).collect();
        let expected = *data.iter().max().unwrap();
        let got = parallel_map_reduce(&cfg, data.len(), 0u64, |i| data[i], |a, b| a.max(b));
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_range_returns_identity() {
        let cfg = ParallelConfig::with_threads(4);
        assert_eq!(parallel_sum(&cfg, 0, |_| 1), 0);
        let got = parallel_map_reduce(&cfg, 0, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(got, 42);
    }

    proptest! {
        #[test]
        fn parallel_sum_matches_sequential(values in proptest::collection::vec(0u64..1000, 0..500),
                                           threads in 1usize..8) {
            let cfg = ParallelConfig::with_threads(threads).with_chunk_size(4);
            let expected: u64 = values.iter().sum();
            let got = parallel_sum(&cfg, values.len(), |i| values[i]);
            prop_assert_eq!(got, expected);
        }
    }
}
