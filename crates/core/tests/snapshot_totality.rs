//! Property tests for the engine snapshot container: decoding is *total*.
//! Arbitrary bytes, every strict prefix of a valid snapshot, and any
//! single-bit corruption of one must map to a typed [`SnapshotError`] —
//! never to a panic, an abort, or a silently-wrong engine.
//!
//! Mirrors the wire-protocol totality suite in
//! `crates/server/tests/protocol_roundtrip.rs`: the snapshot file is the
//! other untrusted byte stream the serving stack consumes.

use ftb_core::{
    build_augmented_structure, BuildConfig, BuildPlan, EngineCore, EngineOptions, Sources,
};
use ftb_graph::VertexId;
use ftb_workloads::{Workload, WorkloadFamily};
use proptest::collection;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small augmented engine snapshot, built once and shared by every
/// proptest case (the build dominates; the properties only mutate bytes).
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let graph = Workload::new(WorkloadFamily::ErdosRenyi, 140, 11).generate();
        let sources = Sources::single(VertexId(0));
        let config = BuildConfig::new(0.3).with_seed(11);
        let augmented =
            build_augmented_structure(&graph, &sources, BuildPlan::Tradeoff { eps: 0.3 }, &config)
                .expect("augmented build succeeds");
        let core = EngineCore::build_augmented_with(&graph, augmented, EngineOptions::new())
            .expect("engine build succeeds");
        core.write_snapshot(b"totality-suite note")
    })
}

#[test]
fn valid_snapshot_round_trips() {
    let bytes = snapshot_bytes();
    let (core, note) =
        EngineCore::read_snapshot(bytes, EngineOptions::new()).expect("own snapshot loads");
    assert_eq!(note, b"totality-suite note");
    // Save→load→save is a fixed point: the restored engine re-serializes
    // to the exact same bytes.
    assert_eq!(core.write_snapshot(&note), bytes);
}

#[test]
fn every_strict_prefix_is_rejected() {
    let bytes = snapshot_bytes();
    for cut in 0..bytes.len() {
        assert!(
            EngineCore::read_snapshot(&bytes[..cut], EngineOptions::new()).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_are_rejected(garbage in collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        prop_assert!(EngineCore::read_snapshot(&bytes, EngineOptions::new()).is_err());
    }

    #[test]
    fn single_bit_flips_are_rejected(flip_pos in 0u64..u64::MAX, flip_bit in 0u8..8) {
        // Every byte of the container is covered by a structural check
        // (magic, version, layout hash) or by the checksum, so *any*
        // one-bit corruption must surface as a typed error.
        let mut bytes = snapshot_bytes().to_vec();
        let pos = (flip_pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;
        prop_assert!(
            EngineCore::read_snapshot(&bytes, EngineOptions::new()).is_err(),
            "flip at byte {pos} bit {flip_bit} decoded"
        );
    }

    #[test]
    fn truncation_at_random_cut_is_rejected(cut_permille in 0u32..1000) {
        let bytes = snapshot_bytes();
        let cut = (bytes.len() as u64 * cut_permille as u64 / 1000) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(EngineCore::read_snapshot(&bytes[..cut], EngineOptions::new()).is_err());
    }
}
