//! The observability invariants, checked end to end against live engines:
//!
//! 1. **Counter consistency** — per workload family, every tier counter
//!    delta equals the sample count of the matching tier histogram. The
//!    attribution model records exactly one sample per answer
//!    (`Histogram::record_n` with the counter delta), so this holds by
//!    construction; the test proves the construction is wired through
//!    every entry point, single-target and batched alike.
//! 2. **Stage sums stay inside the wall** — stage spans nest inside the
//!    entry-point windows, so the total nanoseconds recorded by the stage
//!    histograms can never exceed the measured wall time of the replay
//!    (and the tier histograms' sum reconstructs the entry-point windows,
//!    also bounded by the wall).
//! 3. **Registry under concurrency** — writer threads hammer one shared
//!    counter/histogram pair while a reader renders snapshots mid-flight;
//!    the final totals are exact and every intermediate snapshot is a
//!    plausible prefix. Thread count follows the `FTBFS_FORCE_THREADS`
//!    convention (default 4) so CI can pin it.

use ftb_core::{
    EngineObs, EngineOptions, FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder,
};
use ftb_graph::{FaultSet, Graph, VertexId};
use ftb_workloads::{FaultScenario, Workload, WorkloadFamily};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 9;
const SOURCE: VertexId = VertexId(0);

/// Build an instrumented engine over `family` and replay a mixed workload
/// (single-target, batched sparse, batched dense) with sampling on.
/// Returns the obs handles, the final engine stats, and the measured wall
/// time of the instrumented region in nanoseconds.
fn instrumented_replay(family: WorkloadFamily) -> (Arc<EngineObs>, ftb_core::QueryStats, u64) {
    let graph: Graph = Workload::new(family, 300, SEED).generate();
    let n = graph.num_vertices();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(SOURCE))
        .expect("workload graphs are valid input");
    let mut engine =
        FaultQueryEngine::with_options(&graph, structure, EngineOptions::new().serial())
            .expect("matching graph");
    let obs = EngineObs::detached();
    engine.attach_obs(Arc::clone(&obs));
    ftb_obs::set_sampling(true);

    let mut sets: Vec<FaultSet> = [
        FaultScenario::RandomEdges,
        FaultScenario::TreeConcentrated,
        FaultScenario::CorrelatedVertices,
    ]
    .into_iter()
    .flat_map(|s| s.generate(&graph, SOURCE, 2, 12, SEED))
    .filter(|s| !s.is_empty())
    .collect();
    sets.push(FaultSet::new()); // the fault-free row tier
    let sparse: Vec<VertexId> = (0..10u64)
        .map(|i| VertexId((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as u32))
        .collect();
    let dense: Vec<VertexId> = graph.vertices().collect();

    let t0 = Instant::now();
    for fs in &sets {
        for &v in &sparse {
            engine.dist_after_faults(v, fs).expect("in range");
        }
        engine
            .dist_many_after_faults(&sparse, fs)
            .expect("in range");
        engine.dist_many_after_faults(&dense, fs).expect("in range");
    }
    let wall = t0.elapsed().as_nanos() as u64;
    (obs, engine.query_stats(), wall)
}

#[test]
fn tier_histogram_counts_equal_tier_counters_per_family() {
    for &family in WorkloadFamily::all() {
        let (obs, stats, _) = instrumented_replay(family);
        let t = stats.tiers;
        let pairs = [
            (
                "fault_free_row",
                obs.tier_fault_free_row.count(),
                t.fault_free_row,
            ),
            (
                "unaffected_fast_path",
                obs.tier_unaffected_fast_path.count(),
                t.unaffected_fast_path,
            ),
            (
                "batched_unaffected",
                obs.tier_batched_unaffected.count(),
                t.batched_unaffected,
            ),
            (
                "sparse_h_bfs",
                obs.tier_sparse_h_bfs.count(),
                t.sparse_h_bfs,
            ),
            (
                "augmented_bfs",
                obs.tier_augmented_bfs.count(),
                t.augmented_bfs,
            ),
            (
                "full_graph_bfs",
                obs.tier_full_graph_bfs.count(),
                t.full_graph_bfs,
            ),
        ];
        for (tier, sampled, counted) in pairs {
            assert_eq!(
                sampled,
                counted as u64,
                "{}: tier {tier} histogram samples diverge from the counter",
                family.name()
            );
        }
        assert!(
            obs.tier_sample_count() > 0,
            "{}: the replay answered nothing",
            family.name()
        );
    }
}

#[test]
fn stage_and_tier_sums_stay_inside_the_wall() {
    let (obs, _, wall) = instrumented_replay(WorkloadFamily::ErdosRenyi);
    let tier_sum = obs.tier_sample_sum();
    let stage_sum = obs.stage_sample_sum();
    assert!(stage_sum > 0, "the replay exercised no instrumented stage");
    // Per-answer attribution floors (`elapsed / total` per sample), so the
    // tier sum reconstructs the entry windows from below; both sums are
    // bounded by the wall clock around the whole replay.
    assert!(
        tier_sum <= wall,
        "tier sum {tier_sum}ns exceeds the replay wall {wall}ns"
    );
    assert!(
        stage_sum <= wall,
        "stage sum {stage_sum}ns exceeds the replay wall {wall}ns"
    );
}

#[test]
fn detached_contexts_record_nothing() {
    let graph: Graph = Workload::new(WorkloadFamily::ErdosRenyi, 200, SEED).generate();
    let structure = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(SEED).serial())
        .build(&graph, &Sources::single(SOURCE))
        .expect("valid input");
    let mut engine =
        FaultQueryEngine::with_options(&graph, structure, EngineOptions::new().serial())
            .expect("matching graph");
    // No obs attached: queries run regardless of the sampling flag.
    ftb_obs::set_sampling(true);
    engine
        .dist_after_fault(VertexId(7), ftb_graph::EdgeId(0))
        .expect("in range");
    assert!(engine.query_stats().tiers.total() > 0);
}

#[test]
fn registry_totals_are_exact_under_concurrent_writers() {
    let threads: usize = std::env::var("FTBFS_FORCE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4);
    const PER_THREAD: u64 = 20_000;

    let registry = ftb_obs::Registry::new();
    let counter = registry.counter("obs_test_ops_total", "test", &[]);
    let histogram = registry.histogram("obs_test_latency", "test", &[]);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let counter = Arc::clone(&counter);
            let histogram = Arc::clone(&histogram);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    histogram.record(w as u64 * 1_000 + i % 977);
                }
            });
        }
        // Concurrent reader: snapshots taken mid-flight are plausible
        // prefixes (monotone, internally consistent), never torn below
        // zero or above the final total.
        let counter = Arc::clone(&counter);
        let histogram = Arc::clone(&histogram);
        scope.spawn(move || {
            let ceiling = threads as u64 * PER_THREAD;
            let mut last = 0;
            for _ in 0..50 {
                let c = counter.get();
                let s = histogram.snapshot();
                assert!(c >= last, "counter moved backwards");
                assert!(c <= ceiling, "counter overshot the writers");
                assert!(s.count() <= ceiling);
                last = c;
                std::thread::yield_now();
            }
        });
    });

    let expected = threads as u64 * PER_THREAD;
    assert_eq!(counter.get(), expected);
    let snap = histogram.snapshot();
    assert_eq!(snap.count(), expected);
    let text = registry.render_prometheus();
    assert!(
        text.contains(&format!("obs_test_ops_total {expected}")),
        "{text}"
    );
    assert!(
        text.contains(&format!("obs_test_latency_count {expected}")),
        "{text}"
    );
}
