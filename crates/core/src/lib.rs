//! `(b, r)` fault-tolerant BFS structures: the reinforcement–backup tradeoff.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Parter & Peleg, *Fault Tolerant BFS Structures: A Reinforcement-Backup
//! Tradeoff*, SPAA 2015). Given an undirected graph `G`, a source `s` and a
//! parameter `ε ∈ [0, 1]`, [`build_ft_bfs`] constructs a subgraph `H ⊆ G`
//! together with a set of *reinforced* edges `E' ⊆ E(H)` such that for every
//! vertex `v` and every non-reinforced edge `e`,
//!
//! ```text
//! dist(s, v, H \ {e}) ≤ dist(s, v, G \ {e}),
//! ```
//!
//! with `|E(H) ∖ E'| = O(min{1/ε · n^{1+ε} log n, n^{3/2}})` backup edges and
//! `|E'| = O(1/ε · n^{1-ε} log n)` reinforced edges (Theorem 3.1).
//!
//! # Quick start
//!
//! ```
//! use ftb_core::{build_ft_bfs, BuildConfig};
//! use ftb_graph::{generators, VertexId};
//!
//! let graph = generators::hypercube(4);
//! let config = BuildConfig::new(0.3).with_seed(7);
//! let structure = build_ft_bfs(&graph, VertexId(0), &config);
//! assert!(structure.num_edges() <= graph.num_edges());
//! println!(
//!     "b = {}, r = {}",
//!     structure.num_backup(),
//!     structure.num_reinforced()
//! );
//! ```
//!
//! The other entry points are:
//! * [`baseline::build_baseline_ftbfs`] — the ESA'13 `Θ(n^{3/2})` FT-BFS
//!   baseline (the `ε = 1` extreme),
//! * [`baseline::build_reinforced_tree`] — the `ε = 0` extreme,
//! * [`mbfs::build_ft_mbfs`] — multi-source structures,
//! * [`verify::verify_structure`] — definition-level validation,
//! * [`cost::CostModel`] — the `B/R` price model and optimal-ε selection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod baseline;
pub mod config;
pub mod cost;
pub mod mbfs;
pub mod phase_s1;
pub mod phase_s2;
pub mod stats;
pub mod structure;
pub mod verify;

pub use algorithm::{build_ft_bfs, build_ft_bfs_with_eps};
pub use baseline::{build_baseline_ftbfs, build_reinforced_tree};
pub use config::BuildConfig;
pub use cost::CostModel;
pub use mbfs::{build_ft_mbfs, MultiSourceStructure};
pub use stats::BuildStats;
pub use structure::FtBfsStructure;
pub use verify::{unprotected_edges, verify_structure, VerificationReport, Violation};
