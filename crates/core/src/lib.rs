//! `(b, r)` fault-tolerant BFS structures: the reinforcement–backup tradeoff.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Parter & Peleg, *Fault Tolerant BFS Structures: A Reinforcement-Backup
//! Tradeoff*, SPAA 2015). Given an undirected graph `G`, a source `s` and a
//! parameter `ε ∈ [0, 1]`, the construction produces a subgraph `H ⊆ G`
//! together with a set of *reinforced* edges `E' ⊆ E(H)` such that for every
//! vertex `v` and every non-reinforced edge `e`,
//!
//! ```text
//! dist(s, v, H \ {e}) ≤ dist(s, v, G \ {e}),
//! ```
//!
//! with `|E(H) ∖ E'| = O(min{1/ε · n^{1+ε} log n, n^{3/2}})` backup edges and
//! `|E'| = O(1/ε · n^{1-ε} log n)` reinforced edges (Theorem 3.1).
//!
//! # Building structures
//!
//! All construction strategies sit behind the [`StructureBuilder`] trait:
//! [`TradeoffBuilder`] (ε-parameterised Theorem 3.1), [`BaselineBuilder`]
//! (the ESA'13 `Θ(n^{3/2})` extreme), [`ReinforcedTreeBuilder`] (the `ε = 0`
//! extreme) and [`MultiSourceBuilder`] (Theorem 5.4 unions). Builders
//! validate input up front and report problems as [`FtbfsError`] — nothing
//! behind the trait panics. [`BuildPlan`] names a strategy as plain data for
//! sweeps and configuration.
//!
//! ```
//! use ftb_core::{BuildConfig, Sources, StructureBuilder, TradeoffBuilder};
//! use ftb_graph::{generators, VertexId};
//!
//! let graph = generators::hypercube(4);
//! let structure = TradeoffBuilder::new(0.3)
//!     .with_config(|c| c.with_seed(7))
//!     .build(&graph, &Sources::single(VertexId(0)))
//!     .expect("hypercube input is valid");
//! println!(
//!     "b = {}, r = {}",
//!     structure.num_backup(),
//!     structure.num_reinforced()
//! );
//! ```
//!
//! # Serving queries
//!
//! A built structure becomes a server through the [`engine`] module: an
//! immutable [`EngineCore`] (shareable across threads via `Arc`), cheap
//! per-thread [`QueryContext`]s, and the [`FaultQueryEngine`] /
//! [`MultiSourceEngine`] facades. Build once, then answer
//! `dist_after_fault` / `path_after_fault` /
//! [`FaultQueryEngine::query_many`] with no per-query allocation; batches
//! are grouped by fault and sharded across worker threads. Beyond single
//! edge failures, the engines accept arbitrary [`FaultSet`]s (edges *and*
//! vertices, up to [`engine::EngineOptions::max_faults`] simultaneous
//! faults) through `dist_after_faults` / `path_after_faults` /
//! `query_many_faults`; see the [`engine`] module docs for the answering
//! model. To serve vertex faults, dual failures and reinforced-edge
//! hypotheticals by **sparse** search instead of full-graph recomputation,
//! run the [`ftbfs`] replacement-path augmentation stage
//! ([`build_augmented_structure`] or [`FtBfsAugmenter`]) and build the
//! engine from the resulting [`AugmentedStructure`].
//!
//! ```
//! use ftb_core::{FaultQueryEngine, Sources, StructureBuilder, TradeoffBuilder};
//! use ftb_graph::{generators, EdgeId, VertexId};
//!
//! let graph = generators::hypercube(4);
//! let structure = TradeoffBuilder::new(0.3)
//!     .build(&graph, &Sources::single(VertexId(0)))
//!     .expect("valid input");
//! let mut engine = FaultQueryEngine::new(&graph, structure).expect("matching graph");
//! let d = engine.dist_after_fault(VertexId(9), EdgeId(0)).expect("in range");
//! assert!(d.is_some(), "one hypercube failure never disconnects");
//! ```
//!
//! # Legacy free functions
//!
//! The original entry points (`build_ft_bfs`, `build_ft_bfs_with_eps`,
//! `build_baseline_ftbfs`, `build_reinforced_tree`, `build_ft_mbfs`) remain
//! available as deprecated shims that panic on invalid input; migrate to the
//! builders or the `try_*` functions ([`try_build_ft_bfs`],
//! [`try_build_baseline_ftbfs`], [`try_build_reinforced_tree`],
//! [`try_build_ft_mbfs`]).
//!
//! The remaining entry points are [`verify::verify_structure`]
//! (definition-level validation) and [`cost::CostModel`] (the `B/R` price
//! model and optimal-ε selection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod baseline;
pub mod builder;
pub mod config;
pub mod cost;
pub mod engine;
pub mod error;
pub mod ftbfs;
pub mod mbfs;
pub mod phase_s1;
pub mod phase_s2;
mod snapshot;
pub mod stats;
pub mod structure;
pub mod verify;

pub use algorithm::try_build_ft_bfs;
#[allow(deprecated)]
pub use algorithm::{build_ft_bfs, build_ft_bfs_with_eps};
#[allow(deprecated)]
pub use baseline::{build_baseline_ftbfs, build_reinforced_tree};
pub use baseline::{try_build_baseline_ftbfs, try_build_reinforced_tree};
pub use builder::{
    build_augmented_structure, build_structure, BaselineBuilder, BuildPlan, MultiSourceBuilder,
    ReinforcedTreeBuilder, Sources, StructureBuilder, TradeoffBuilder,
};
pub use config::BuildConfig;
pub use cost::CostModel;
pub use engine::{
    engine_layout_hash, AtomicQueryStats, EngineCore, EngineObs, EngineOptions, FaultQueryEngine,
    MultiSourceEngine, QueryContext, QueryStats, TierCounters, FORCE_FULL_SWEEP_ENV,
};
pub use error::FtbfsError;
pub use ftbfs::{AugmentCoverage, AugmentStats, AugmentedStructure, FtBfsAugmenter};
#[allow(deprecated)]
pub use mbfs::build_ft_mbfs;
pub use mbfs::{try_build_ft_mbfs, MultiSourceStructure};
pub use stats::BuildStats;
pub use structure::FtBfsStructure;
pub use verify::{
    cross_check_fault_sets, dist_after_faults_brute, unprotected_edges, verify_structure,
    FaultSetMismatch, VerificationReport, Violation,
};

// The fault model lives next to the id types in `ftb_graph`; re-export it
// here so engine callers need only one crate in scope.
pub use ftb_graph::{Fault, FaultSet};

// Snapshot serialization: the `Store`/`Load` traits and typed decode errors
// live in `ftb_io`; re-export the pieces snapshot consumers need so the
// serving tier depends on one crate for engine persistence.
pub use ftb_io::{SnapshotError, Store as SnapshotStore, SNAPSHOT_FORMAT_VERSION};
