//! The backup/reinforcement cost model and optimal-ε selection.
//!
//! With per-edge prices `B` (backup) and `R` (reinforced), a `(b, r)` FT-BFS
//! structure costs `B·b(n) + R·r(n) = Õ(B·n^{1+ε} + R·n^{1-ε})`. Balancing
//! the two terms gives the paper's corollary: the minimum cost is achieved at
//! `ε ≈ log(R/B) / (2 log n)` — more precisely the balance point of
//! `B·n^{1+ε} = R·n^{1-ε}` — clamped to the meaningful range `[0, 1/2]`.

use crate::structure::FtBfsStructure;

/// Per-edge prices of the two protection mechanisms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Price of a fault-prone backup edge (`B`).
    pub backup_cost: f64,
    /// Price of a fault-resistant reinforced edge (`R`).
    pub reinforce_cost: f64,
}

impl CostModel {
    /// Create a cost model; prices must be positive.
    pub fn new(backup_cost: f64, reinforce_cost: f64) -> Self {
        assert!(
            backup_cost > 0.0 && reinforce_cost > 0.0,
            "prices must be positive"
        );
        CostModel {
            backup_cost,
            reinforce_cost,
        }
    }

    /// The price ratio `R / B`.
    pub fn ratio(&self) -> f64 {
        self.reinforce_cost / self.backup_cost
    }

    /// Cost of a structure with `b` backup and `r` reinforced edges.
    pub fn cost_of_counts(&self, b: usize, r: usize) -> f64 {
        self.backup_cost * b as f64 + self.reinforce_cost * r as f64
    }

    /// Cost of a constructed structure.
    pub fn cost_of(&self, structure: &FtBfsStructure) -> f64 {
        self.cost_of_counts(structure.num_backup(), structure.num_reinforced())
    }

    /// The ε balancing the asymptotic cost `B·n^{1+ε} + R·n^{1-ε}` for an
    /// `n`-vertex graph, clamped to `[0, 1/2]` (beyond 1/2 the `n^{3/2}`
    /// branch dominates anyway).
    pub fn optimal_eps(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        let eps = (self.ratio().ln() / (2.0 * (n as f64).ln())).max(0.0);
        eps.min(0.5)
    }

    /// The asymptotic cost estimate `B·n^{1+ε} + R·n^{1-ε}` (ignoring
    /// logarithmic factors); used to sanity-check sweeps against the theory.
    pub fn asymptotic_cost(&self, n: usize, eps: f64) -> f64 {
        let nf = n as f64;
        self.backup_cost * nf.powf(1.0 + eps) + self.reinforce_cost * nf.powf(1.0 - eps)
    }

    /// Among the given ε grid, the one with the smallest
    /// [`CostModel::asymptotic_cost`].
    pub fn best_eps_on_grid(&self, n: usize, grid: &[f64]) -> f64 {
        grid.iter()
            .copied()
            .min_by(|a, b| {
                self.asymptotic_cost(n, *a)
                    .partial_cmp(&self.asymptotic_cost(n, *b))
                    .unwrap()
            })
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_prices_favour_reinforcement() {
        // With R = B the optimum is ε = 0: reinforce the n-1 tree edges.
        let m = CostModel::new(1.0, 1.0);
        assert_eq!(m.optimal_eps(10_000), 0.0);
        assert!((m.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expensive_reinforcement_pushes_eps_up() {
        let n = 10_000usize;
        let cheap = CostModel::new(1.0, 10.0);
        let pricey = CostModel::new(1.0, 1e6);
        assert!(cheap.optimal_eps(n) < pricey.optimal_eps(n));
        // R/B = n gives exactly ε = 1/2
        let balanced = CostModel::new(1.0, n as f64);
        assert!((balanced.optimal_eps(n) - 0.5).abs() < 1e-9);
        // astronomically expensive reinforcement clamps at 1/2
        let extreme = CostModel::new(1.0, 1e30);
        assert!((extreme.optimal_eps(n) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn optimal_eps_matches_grid_minimum() {
        let grid: Vec<f64> = (0..=50).map(|i| i as f64 / 100.0).collect();
        for ratio in [1.0, 5.0, 50.0, 500.0, 5_000.0] {
            let m = CostModel::new(1.0, ratio);
            let n = 5000;
            let closed_form = m.optimal_eps(n);
            let grid_best = m.best_eps_on_grid(n, &grid);
            assert!(
                (closed_form - grid_best).abs() <= 0.02,
                "ratio {ratio}: closed form {closed_form} vs grid {grid_best}"
            );
        }
    }

    #[test]
    fn cost_of_counts_is_linear() {
        let m = CostModel::new(2.0, 7.0);
        assert!((m.cost_of_counts(10, 3) - 41.0).abs() < 1e-12);
        assert!((m.cost_of_counts(0, 0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_positive_prices_are_rejected() {
        CostModel::new(0.0, 1.0);
    }

    #[test]
    fn tiny_graphs_default_to_zero_eps() {
        let m = CostModel::new(1.0, 100.0);
        assert_eq!(m.optimal_eps(1), 0.0);
        assert_eq!(m.optimal_eps(0), 0.0);
    }
}
