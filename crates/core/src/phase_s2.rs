//! Phase S2: handling the `(∼)`-sets via tree and path decompositions.
//!
//! The input is the collection of `(∼)`-sets `S = {P^C_0 = I2, P^C_1, …,
//! P^C_K}` (the initial non-interfering set plus one set per Phase S1 round).
//! Phase S2 proceeds in four sub-phases:
//!
//! * **S2.0** — build the heavy-path decomposition `TD` of `T0`,
//! * **S2.1** — for every terminal add the last edges of the new-ending
//!   replacement paths protecting *glue* edges `E⁻(TD)`,
//! * **S2.2** — per `(∼)`-set and terminal, decompose `π(s, v)` into
//!   `O(log n)` exponentially shrinking segments; *light* segments (fewer
//!   than `⌈n^ε⌉` distinct last edges) are fully covered, and the topmost
//!   protected edge of every segment is always covered,
//! * **S2.3** — per decomposition path `ψ` crossing `π(s, v)`, cover the
//!   topmost protected edge on `ψ ∩ π(s, v)` and fully cover the boundary
//!   segments `π_U`/`π_L` when they are cheap (≤ `⌈n^ε⌉` last edges).
//!
//! Everything added here is a *backup* edge; the edges that remain
//! unprotected at the end of Phase S2 are exactly the ones the driver
//! reinforces.

use crate::config::BuildConfig;
use ftb_graph::{BitSet, EdgeId, VertexId};
use ftb_rp::{PairId, ReplacementPaths};
use ftb_sp::ShortestPathTree;
use ftb_tree::{HeavyPathDecomposition, SegmentDecomposition};
use std::collections::HashMap;

/// Outcome of Phase S2.
#[derive(Clone, Debug, Default)]
pub struct PhaseS2Outcome {
    /// Edges newly added while protecting glue edges (Sub-phase S2.1).
    pub glue_added: usize,
    /// Edges newly added by Sub-phases S2.2–S2.3.
    pub added: usize,
    /// Number of `(∼)`-sets processed.
    pub sim_sets_processed: usize,
}

/// Run Phase S2, inserting last edges into the structure edge set `h`.
pub fn run_phase_s2(
    rp: &ReplacementPaths,
    tree: &ShortestPathTree,
    hld: &HeavyPathDecomposition,
    config: &BuildConfig,
    n: usize,
    sim_sets: &[Vec<PairId>],
    h: &mut BitSet,
) -> PhaseS2Outcome {
    let mut outcome = PhaseS2Outcome::default();
    let budget = config.budget(n);

    // Sub-phase S2.1: protect the glue edges E⁻(TD) for every terminal.
    for &p in rp.uncovered() {
        let item = rp.get(p);
        if hld.is_glue_edge(item.pair.failing_edge) && h.insert(item.last_edge.index()) {
            outcome.glue_added += 1;
        }
    }

    // Sub-phases S2.2 / S2.3, per (∼)-set.
    for sim_set in sim_sets {
        outcome.sim_sets_processed += 1;
        // Group the set's pairs by terminal.
        let mut by_terminal: HashMap<VertexId, Vec<PairId>> = HashMap::new();
        for &p in sim_set {
            by_terminal
                .entry(rp.get(p).pair.terminal)
                .or_default()
                .push(p);
        }
        for (v, pairs) in by_terminal {
            outcome.added += cover_terminal(rp, tree, hld, budget, v, &pairs, h);
        }
    }
    outcome
}

/// Sub-phases S2.2 and S2.3 for a fixed `(∼)`-set restricted to terminal `v`.
/// Returns the number of edges newly added to `h`.
fn cover_terminal(
    rp: &ReplacementPaths,
    tree: &ShortestPathTree,
    hld: &HeavyPathDecomposition,
    budget: usize,
    v: VertexId,
    pairs: &[PairId],
    h: &mut BitSet,
) -> usize {
    let mut added = 0usize;
    let Some(depth) = tree.depth(v) else {
        return 0;
    };
    let path_len = depth as usize;
    if path_len == 0 {
        return 0;
    }
    let seg = SegmentDecomposition::new(path_len);
    let pi_edges = tree.path_edges_to(v);

    let add = |edge: EdgeId, h: &mut BitSet, added: &mut usize| {
        if h.insert(edge.index()) {
            *added += 1;
        }
    };

    // --- Sub-phase S2.2: segment covers ---------------------------------
    // Edge index of a pair on π(s, v) is failing_edge_depth - 1.
    let mut per_segment: HashMap<usize, Vec<PairId>> = HashMap::new();
    for &p in pairs {
        let idx = rp.get(p).failing_edge_depth as usize - 1;
        if let Some(j) = seg.segment_of(idx) {
            per_segment.entry(j).or_default().push(p);
        }
    }
    for seg_pairs in per_segment.values() {
        let distinct_last: std::collections::HashSet<usize> = seg_pairs
            .iter()
            .map(|&p| rp.get(p).last_edge.index())
            .collect();
        let light = distinct_last.len() < budget;
        if light {
            for &p in seg_pairs {
                add(rp.get(p).last_edge, h, &mut added);
            }
        }
        // Always cover the first (closest to s) protected edge of the
        // segment so that surviving replacement paths diverge inside it.
        if let Some(&top) = seg_pairs
            .iter()
            .min_by_key(|&&p| rp.get(p).failing_edge_depth)
        {
            add(rp.get(top).last_edge, h, &mut added);
        }
    }

    // --- Sub-phase S2.3: covers along decomposition paths ----------------
    // Group the terminal's pairs by the decomposition path of their failing
    // edge (glue-edge pairs were handled in S2.1).
    let mut per_psi: HashMap<usize, Vec<PairId>> = HashMap::new();
    for &p in pairs {
        if let Some(psi) = hld.path_of_edge(rp.get(p).pair.failing_edge) {
            per_psi.entry(psi.id).or_default().push(p);
        }
    }
    for (psi_id, psi_pairs) in &per_psi {
        // topmost protected edge on ψ ∩ π(s, v)
        if let Some(&top) = psi_pairs
            .iter()
            .min_by_key(|&&p| rp.get(p).failing_edge_depth)
        {
            add(rp.get(top).last_edge, h, &mut added);
        }

        // Which segments of π(s, v) does ψ intersect, and is the
        // intersection proper (segment not fully contained in ψ)?
        let on_psi = |edge_idx: usize| -> bool {
            hld.path_of_edge(pi_edges[edge_idx])
                .map(|p| p.id == *psi_id)
                .unwrap_or(false)
        };
        let mut boundary_segments: Vec<usize> = Vec::new();
        for j in 0..seg.num_segments() {
            let range = seg.segment_range(j);
            let mut any = false;
            let mut all = true;
            for i in range {
                if on_psi(i) {
                    any = true;
                } else {
                    all = false;
                }
            }
            if any && !all {
                boundary_segments.push(j);
            }
        }
        // π_U is the first such segment, π_L the last.
        let candidates: Vec<usize> = match (boundary_segments.first(), boundary_segments.last()) {
            (Some(&f), Some(&l)) if f != l => vec![f, l],
            (Some(&f), _) => vec![f],
            _ => vec![],
        };
        for j in candidates {
            let range = seg.segment_range(j);
            let boundary_pairs: Vec<PairId> = psi_pairs
                .iter()
                .copied()
                .filter(|&p| {
                    let idx = rp.get(p).failing_edge_depth as usize - 1;
                    range.contains(&idx) && on_psi(idx)
                })
                .collect();
            if boundary_pairs.is_empty() {
                continue;
            }
            let distinct_last: std::collections::HashSet<usize> = boundary_pairs
                .iter()
                .map(|&p| rp.get(p).last_edge.index())
                .collect();
            if distinct_last.len() <= budget {
                for &p in &boundary_pairs {
                    add(rp.get(p).last_edge, h, &mut added);
                }
            }
            if let Some(&top) = boundary_pairs
                .iter()
                .min_by_key(|&&p| rp.get(p).failing_edge_depth)
            {
                add(rp.get(top).last_edge, h, &mut added);
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::Graph;
    use ftb_par::ParallelConfig;
    use ftb_rp::InterferenceIndex;
    use ftb_sp::{ReplacementDistances, TieBreakWeights};
    use ftb_tree::TreeIndex;
    use ftb_workloads::families;

    struct Fixture {
        graph: Graph,
        tree: ShortestPathTree,
        rp: ReplacementPaths,
        index: TreeIndex,
        hld: HeavyPathDecomposition,
    }

    fn fixture(graph: Graph, seed: u64) -> Fixture {
        let weights = TieBreakWeights::generate(&graph, seed);
        let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
        let dists = ReplacementDistances::compute(&graph, &tree, &ParallelConfig::serial());
        let rp =
            ReplacementPaths::compute(&graph, &weights, &tree, &dists, &ParallelConfig::serial());
        let index = TreeIndex::build(&tree);
        let hld = HeavyPathDecomposition::build(&tree);
        Fixture {
            graph,
            tree,
            rp,
            index,
            hld,
        }
    }

    #[test]
    fn glue_edge_pairs_are_always_covered() {
        let f = fixture(families::erdos_renyi_gnp(80, 0.08, 5), 5);
        let mut h = BitSet::new(f.graph.num_edges());
        let out = run_phase_s2(
            &f.rp,
            &f.tree,
            &f.hld,
            &BuildConfig::new(0.3),
            f.graph.num_vertices(),
            &[],
            &mut h,
        );
        for &p in f.rp.uncovered() {
            let item = f.rp.get(p);
            if f.hld.is_glue_edge(item.pair.failing_edge) {
                assert!(h.contains(item.last_edge.index()));
            }
        }
        assert_eq!(out.glue_added, h.len());
        assert_eq!(out.sim_sets_processed, 0);
    }

    #[test]
    fn light_segments_are_fully_covered() {
        // With a huge budget every segment is light, so every pair of every
        // (∼)-set must end up with its last edge in H.
        let f = fixture(families::layered_random(6, 10, 3, 0.4, 9), 9);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (_i1, i2) = interference.split_i1_i2();
        let config = BuildConfig {
            budget_override: Some(usize::MAX / 2),
            ..BuildConfig::new(0.3)
        };
        let mut h = BitSet::new(f.graph.num_edges());
        run_phase_s2(
            &f.rp,
            &f.tree,
            &f.hld,
            &config,
            f.graph.num_vertices(),
            std::slice::from_ref(&i2),
            &mut h,
        );
        for &p in &i2 {
            assert!(
                h.contains(f.rp.get(p).last_edge.index()),
                "pair {p} not covered despite unbounded budget"
            );
        }
    }

    #[test]
    fn zero_sim_sets_only_covers_glue_pairs() {
        let f = fixture(families::erdos_renyi_gnp(60, 0.1, 13), 13);
        let mut h = BitSet::new(f.graph.num_edges());
        let out = run_phase_s2(
            &f.rp,
            &f.tree,
            &f.hld,
            &BuildConfig::new(0.25),
            f.graph.num_vertices(),
            &[],
            &mut h,
        );
        assert_eq!(out.added, 0);
        assert_eq!(out.glue_added, h.len());
    }

    #[test]
    fn added_counts_match_inserted_edges() {
        let f = fixture(families::erdos_renyi_gnp(70, 0.1, 17), 17);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, i2) = interference.split_i1_i2();
        let mut h = BitSet::new(f.graph.num_edges());
        let out = run_phase_s2(
            &f.rp,
            &f.tree,
            &f.hld,
            &BuildConfig::new(0.3),
            f.graph.num_vertices(),
            &[i2, i1],
            &mut h,
        );
        assert_eq!(out.glue_added + out.added, h.len());
        assert_eq!(out.sim_sets_processed, 2);
    }

    #[test]
    fn topmost_pair_of_each_segment_is_covered() {
        let f = fixture(families::layered_random(8, 8, 3, 0.3, 21), 21);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (_i1, i2) = interference.split_i1_i2();
        let config = BuildConfig::new(0.2);
        let mut h = BitSet::new(f.graph.num_edges());
        run_phase_s2(
            &f.rp,
            &f.tree,
            &f.hld,
            &config,
            f.graph.num_vertices(),
            std::slice::from_ref(&i2),
            &mut h,
        );
        // For every terminal and segment holding pairs of I2, the pair with
        // the shallowest failing edge must be covered.
        let mut by_terminal: HashMap<VertexId, Vec<PairId>> = HashMap::new();
        for &p in &i2 {
            by_terminal
                .entry(f.rp.get(p).pair.terminal)
                .or_default()
                .push(p);
        }
        for (v, pairs) in by_terminal {
            let depth = f.tree.depth(v).unwrap() as usize;
            let seg = SegmentDecomposition::new(depth);
            let mut per_segment: HashMap<usize, Vec<PairId>> = HashMap::new();
            for &p in &pairs {
                let idx = f.rp.get(p).failing_edge_depth as usize - 1;
                if let Some(j) = seg.segment_of(idx) {
                    per_segment.entry(j).or_default().push(p);
                }
            }
            for (_j, seg_pairs) in per_segment {
                let top = seg_pairs
                    .iter()
                    .min_by_key(|&&p| f.rp.get(p).failing_edge_depth)
                    .copied()
                    .unwrap();
                assert!(h.contains(f.rp.get(top).last_edge.index()));
            }
        }
    }
}
