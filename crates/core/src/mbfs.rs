//! Multi-source fault-tolerant BFS structures (FT-MBFS).
//!
//! For a source set `S ⊆ V`, an ε FT-MBFS structure must satisfy the FT-BFS
//! guarantee simultaneously for every `s ∈ S`. The construction simply takes
//! the union of the per-source structures (this is how the paper defines the
//! object; its Theorem 5.4 lower bound shows the union-style cost
//! `Ω(σ^{1-ε} n^{1+ε})` is essentially unavoidable).

use crate::algorithm::build_ft_bfs;
use crate::config::BuildConfig;
use crate::structure::FtBfsStructure;
use ftb_graph::{BitSet, EdgeId, Graph, VertexId};

/// A multi-source FT-BFS structure: the union of one [`FtBfsStructure`] per
/// source.
#[derive(Clone, Debug)]
pub struct MultiSourceStructure {
    sources: Vec<VertexId>,
    per_source: Vec<FtBfsStructure>,
    union_edges: BitSet,
    union_reinforced: BitSet,
    eps: f64,
}

impl MultiSourceStructure {
    /// The source set.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Per-source structures, in the order of [`Self::sources`].
    pub fn per_source(&self) -> &[FtBfsStructure] {
        &self.per_source
    }

    /// The ε parameter used for every source.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Total number of edges of the union structure.
    pub fn num_edges(&self) -> usize {
        self.union_edges.len()
    }

    /// Number of reinforced edges in the union (an edge reinforced for any
    /// source is reinforced in the union).
    pub fn num_reinforced(&self) -> usize {
        self.union_reinforced.len()
    }

    /// Number of backup edges of the union.
    pub fn num_backup(&self) -> usize {
        self.num_edges() - self.num_reinforced()
    }

    /// `true` if `e` belongs to the union structure.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.union_edges.contains(e.index())
    }

    /// `true` if `e` is reinforced in the union.
    pub fn is_reinforced(&self, e: EdgeId) -> bool {
        self.union_reinforced.contains(e.index())
    }

    /// The union edge set.
    pub fn edge_set(&self) -> &BitSet {
        &self.union_edges
    }

    /// The union reinforced set.
    pub fn reinforced_set(&self) -> &BitSet {
        &self.union_reinforced
    }
}

/// Build an ε FT-MBFS structure for the given sources.
///
/// Duplicate sources are ignored.
pub fn build_ft_mbfs(
    graph: &Graph,
    sources: &[VertexId],
    config: &BuildConfig,
) -> MultiSourceStructure {
    let mut uniq: Vec<VertexId> = Vec::new();
    for &s in sources {
        if !uniq.contains(&s) {
            uniq.push(s);
        }
    }
    let mut union_edges = BitSet::new(graph.num_edges());
    let mut union_reinforced = BitSet::new(graph.num_edges());
    let mut per_source = Vec::with_capacity(uniq.len());
    for &s in &uniq {
        let structure = build_ft_bfs(graph, s, config);
        union_edges.union_with(structure.edge_set());
        union_reinforced.union_with(structure.reinforced_set());
        per_source.push(structure);
    }
    MultiSourceStructure {
        sources: uniq,
        per_source,
        union_edges,
        union_reinforced,
        eps: config.eps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_structure;
    use ftb_par::ParallelConfig;
    use ftb_sp::{ShortestPathTree, TieBreakWeights};
    use ftb_workloads::families;

    #[test]
    fn union_contains_every_per_source_structure() {
        let g = families::erdos_renyi_gnp(60, 0.1, 3);
        let sources = [VertexId(0), VertexId(5), VertexId(17)];
        let config = BuildConfig::new(0.3).with_seed(3).serial();
        let m = build_ft_mbfs(&g, &sources, &config);
        assert_eq!(m.sources().len(), 3);
        assert_eq!(m.per_source().len(), 3);
        for s in m.per_source() {
            for e in s.edges() {
                assert!(m.contains_edge(e));
            }
            for e in s.reinforced_edges() {
                assert!(m.is_reinforced(e));
            }
        }
        assert!(m.num_edges() >= m.per_source()[0].num_edges());
        assert_eq!(m.num_edges(), m.num_backup() + m.num_reinforced());
        assert!((m.eps() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn each_source_view_remains_a_valid_ftbfs() {
        // The union only adds edges, and the union's reinforced set only
        // grows, so validity per source is preserved. Verify per source
        // against the union's reinforced set.
        let g = families::erdos_renyi_gnp(50, 0.12, 7);
        let sources = [VertexId(0), VertexId(10)];
        let config = BuildConfig::new(0.25).with_seed(7).serial();
        let m = build_ft_mbfs(&g, &sources, &config);
        for (i, &s) in m.sources().iter().enumerate() {
            let weights = TieBreakWeights::generate(&g, config.seed);
            let tree = ShortestPathTree::build(&g, &weights, s);
            // structure = union edges, reinforced = union reinforced
            let st = crate::structure::FtBfsStructure::new(
                s,
                config.eps,
                m.edge_set().clone(),
                m.reinforced_set().clone(),
                m.per_source()[i].stats().clone(),
            );
            let report = verify_structure(&g, &tree, &st, &ParallelConfig::serial(), false);
            assert!(report.is_valid(), "source {s:?} invalid in the union");
        }
    }

    #[test]
    fn duplicate_sources_are_deduplicated() {
        let g = families::erdos_renyi_gnp(40, 0.15, 11);
        let config = BuildConfig::new(0.3).serial();
        let m = build_ft_mbfs(&g, &[VertexId(0), VertexId(0), VertexId(1)], &config);
        assert_eq!(m.sources().len(), 2);
    }

    #[test]
    fn more_sources_cost_more_edges() {
        let g = families::erdos_renyi_gnp(70, 0.1, 13);
        let config = BuildConfig::new(0.3).with_seed(13).serial();
        let one = build_ft_mbfs(&g, &[VertexId(0)], &config);
        let three = build_ft_mbfs(&g, &[VertexId(0), VertexId(20), VertexId(40)], &config);
        assert!(three.num_edges() >= one.num_edges());
    }
}
