//! Multi-source fault-tolerant BFS structures (FT-MBFS).
//!
//! For a source set `S ⊆ V`, an ε FT-MBFS structure must satisfy the FT-BFS
//! guarantee simultaneously for every `s ∈ S`. The construction simply takes
//! the union of the per-source structures (this is how the paper defines the
//! object; its Theorem 5.4 lower bound shows the union-style cost
//! `Ω(σ^{1-ε} n^{1+ε})` is essentially unavoidable).
//!
//! The checked entry point is [`try_build_ft_mbfs`]; the
//! [`crate::MultiSourceBuilder`] wraps it behind the
//! [`crate::StructureBuilder`] trait.

use crate::algorithm::{build_tradeoff_impl, validate_input};
use crate::baseline::{build_baseline_impl, build_reinforced_tree_impl};
use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::stats::BuildStats;
use crate::structure::FtBfsStructure;
use ftb_graph::{BitSet, EdgeId, Graph, VertexId};

/// Which single-source construction a multi-source union is built from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SingleSourcePlan {
    /// The Theorem 3.1 tradeoff construction.
    Tradeoff,
    /// The ESA'13 `Θ(n^{3/2})` baseline (`ε = 1` extreme).
    Baseline,
    /// The reinforced BFS tree (`ε = 0` extreme).
    ReinforcedTree,
}

impl SingleSourcePlan {
    pub(crate) fn build(
        self,
        graph: &Graph,
        source: VertexId,
        config: &BuildConfig,
    ) -> FtBfsStructure {
        match self {
            SingleSourcePlan::Tradeoff => build_tradeoff_impl(graph, source, config),
            SingleSourcePlan::Baseline => build_baseline_impl(graph, source, config),
            SingleSourcePlan::ReinforcedTree => build_reinforced_tree_impl(graph, source, config),
        }
    }
}

/// A multi-source FT-BFS structure: the union of one [`FtBfsStructure`] per
/// source.
#[derive(Clone, Debug)]
pub struct MultiSourceStructure {
    sources: Vec<VertexId>,
    per_source: Vec<FtBfsStructure>,
    union_edges: BitSet,
    union_reinforced: BitSet,
    eps: f64,
}

impl MultiSourceStructure {
    /// The source set.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Per-source structures, in the order of [`Self::sources`].
    pub fn per_source(&self) -> &[FtBfsStructure] {
        &self.per_source
    }

    /// The ε parameter used for every source.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Total number of edges of the union structure.
    pub fn num_edges(&self) -> usize {
        self.union_edges.len()
    }

    /// Number of reinforced edges in the union (an edge reinforced for any
    /// source is reinforced in the union).
    pub fn num_reinforced(&self) -> usize {
        self.union_reinforced.len()
    }

    /// Number of backup edges of the union.
    pub fn num_backup(&self) -> usize {
        self.num_edges() - self.num_reinforced()
    }

    /// `true` if `e` belongs to the union structure.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.union_edges.contains(e.index())
    }

    /// `true` if `e` is reinforced in the union.
    pub fn is_reinforced(&self, e: EdgeId) -> bool {
        self.union_reinforced.contains(e.index())
    }

    /// The union edge set.
    pub fn edge_set(&self) -> &BitSet {
        &self.union_edges
    }

    /// The union reinforced set.
    pub fn reinforced_set(&self) -> &BitSet {
        &self.union_reinforced
    }

    /// Collapse the union into a single [`FtBfsStructure`] rooted at the
    /// first source.
    ///
    /// The result carries the union edge and reinforced sets and aggregated
    /// statistics (per-source counters summed). Because the union only adds
    /// edges and reinforcement on top of the first source's structure, the
    /// collapsed structure still satisfies the FT-BFS guarantee for that
    /// root; use [`Self::per_source`] when per-source views are needed.
    pub fn into_union_structure(self) -> FtBfsStructure {
        let source = self.sources[0];
        let mut stats = BuildStats::default();
        for s in &self.per_source {
            let p = s.stats();
            stats.num_vertices = p.num_vertices;
            stats.num_graph_edges = p.num_graph_edges;
            stats.num_tree_edges = stats.num_tree_edges.max(p.num_tree_edges);
            stats.num_pairs += p.num_pairs;
            stats.num_uncovered_pairs += p.num_uncovered_pairs;
            stats.num_i1_pairs += p.num_i1_pairs;
            stats.num_i2_pairs += p.num_i2_pairs;
            stats.s1_iterations += p.s1_iterations;
            stats.s1_added_edges += p.s1_added_edges;
            stats.s1_leftover_pairs += p.s1_leftover_pairs;
            stats.s2_glue_added_edges += p.s2_glue_added_edges;
            stats.s2_added_edges += p.s2_added_edges;
            stats.s2_sim_sets += p.s2_sim_sets;
            stats.hld_levels = stats.hld_levels.max(p.hld_levels);
            stats.k_rounds = stats.k_rounds.max(p.k_rounds);
            stats.used_baseline |= p.used_baseline;
            stats.construction_ms += p.construction_ms;
            stats.s0_ms += p.s0_ms;
            stats.s1_ms += p.s1_ms;
            stats.s2_ms += p.s2_ms;
            stats.reinforce_ms += p.reinforce_ms;
        }
        stats.reinforced_edges = self.union_reinforced.len();
        FtBfsStructure::new(
            source,
            self.eps,
            self.union_edges,
            self.union_reinforced,
            stats,
        )
    }
}

/// Build an ε FT-MBFS structure for the given sources, validating the input
/// first. Duplicate sources are ignored.
///
/// # Errors
///
/// [`FtbfsError::EmptySources`] for an empty source slice, plus everything
/// [`crate::algorithm::try_build_ft_bfs`] reports (checked per source).
pub fn try_build_ft_mbfs(
    graph: &Graph,
    sources: &[VertexId],
    config: &BuildConfig,
) -> Result<MultiSourceStructure, FtbfsError> {
    try_build_ft_mbfs_plan(graph, sources, config, SingleSourcePlan::Tradeoff)
}

/// Plan-parameterised union build shared by the multi-source builders.
pub(crate) fn try_build_ft_mbfs_plan(
    graph: &Graph,
    sources: &[VertexId],
    config: &BuildConfig,
    plan: SingleSourcePlan,
) -> Result<MultiSourceStructure, FtbfsError> {
    let mut uniq: Vec<VertexId> = Vec::new();
    for &s in sources {
        if !uniq.contains(&s) {
            uniq.push(s);
        }
    }
    if uniq.is_empty() {
        return Err(FtbfsError::EmptySources);
    }
    for &s in &uniq {
        validate_input(graph, s, config)?;
    }
    let mut union_edges = BitSet::new(graph.num_edges());
    let mut union_reinforced = BitSet::new(graph.num_edges());
    let mut per_source = Vec::with_capacity(uniq.len());
    for &s in &uniq {
        let structure = plan.build(graph, s, config);
        union_edges.union_with(structure.edge_set());
        union_reinforced.union_with(structure.reinforced_set());
        per_source.push(structure);
    }
    Ok(MultiSourceStructure {
        sources: uniq,
        per_source,
        union_edges,
        union_reinforced,
        eps: config.eps,
    })
}

/// Build an ε FT-MBFS structure, panicking on invalid input.
#[deprecated(
    since = "0.2.0",
    note = "use `MultiSourceBuilder` (or `try_build_ft_mbfs`) which reports \
            invalid input as `FtbfsError` instead of panicking"
)]
pub fn build_ft_mbfs(
    graph: &Graph,
    sources: &[VertexId],
    config: &BuildConfig,
) -> MultiSourceStructure {
    try_build_ft_mbfs(graph, sources, config).expect("invalid FT-MBFS construction input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_structure;
    use ftb_par::ParallelConfig;
    use ftb_sp::{ShortestPathTree, TieBreakWeights};
    use ftb_workloads::families;

    #[test]
    fn union_contains_every_per_source_structure() {
        let g = families::erdos_renyi_gnp(60, 0.1, 3);
        let sources = [VertexId(0), VertexId(5), VertexId(17)];
        let config = BuildConfig::new(0.3).with_seed(3).serial();
        let m = try_build_ft_mbfs(&g, &sources, &config).expect("valid input");
        assert_eq!(m.sources().len(), 3);
        assert_eq!(m.per_source().len(), 3);
        for s in m.per_source() {
            for e in s.edges() {
                assert!(m.contains_edge(e));
            }
            for e in s.reinforced_edges() {
                assert!(m.is_reinforced(e));
            }
        }
        assert!(m.num_edges() >= m.per_source()[0].num_edges());
        assert_eq!(m.num_edges(), m.num_backup() + m.num_reinforced());
        assert!((m.eps() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn each_source_view_remains_a_valid_ftbfs() {
        // The union only adds edges, and the union's reinforced set only
        // grows, so validity per source is preserved. Verify per source
        // against the union's reinforced set.
        let g = families::erdos_renyi_gnp(50, 0.12, 7);
        let sources = [VertexId(0), VertexId(10)];
        let config = BuildConfig::new(0.25).with_seed(7).serial();
        let m = try_build_ft_mbfs(&g, &sources, &config).expect("valid input");
        for (i, &s) in m.sources().iter().enumerate() {
            let weights = TieBreakWeights::generate(&g, config.seed);
            let tree = ShortestPathTree::build(&g, &weights, s);
            // structure = union edges, reinforced = union reinforced
            let st = crate::structure::FtBfsStructure::new(
                s,
                config.eps,
                m.edge_set().clone(),
                m.reinforced_set().clone(),
                m.per_source()[i].stats().clone(),
            );
            let report = verify_structure(&g, &tree, &st, &ParallelConfig::serial(), false);
            assert!(report.is_valid(), "source {s:?} invalid in the union");
        }
    }

    #[test]
    fn duplicate_sources_are_deduplicated() {
        let g = families::erdos_renyi_gnp(40, 0.15, 11);
        let config = BuildConfig::new(0.3).serial();
        let m = try_build_ft_mbfs(&g, &[VertexId(0), VertexId(0), VertexId(1)], &config)
            .expect("valid input");
        assert_eq!(m.sources().len(), 2);
    }

    #[test]
    fn more_sources_cost_more_edges() {
        let g = families::erdos_renyi_gnp(70, 0.1, 13);
        let config = BuildConfig::new(0.3).with_seed(13).serial();
        let one = try_build_ft_mbfs(&g, &[VertexId(0)], &config).expect("valid input");
        let three = try_build_ft_mbfs(&g, &[VertexId(0), VertexId(20), VertexId(40)], &config)
            .expect("valid input");
        assert!(three.num_edges() >= one.num_edges());
    }

    #[test]
    fn empty_and_invalid_source_sets_are_typed_errors() {
        let g = families::erdos_renyi_gnp(30, 0.2, 5);
        let config = BuildConfig::new(0.3).serial();
        assert_eq!(
            try_build_ft_mbfs(&g, &[], &config).unwrap_err(),
            FtbfsError::EmptySources
        );
        let bad = try_build_ft_mbfs(&g, &[VertexId(0), VertexId(500)], &config);
        assert!(matches!(bad, Err(FtbfsError::SourceOutOfRange { .. })));
    }

    #[test]
    fn deprecated_shim_matches_the_checked_api_and_panics_on_bad_input() {
        let g = families::erdos_renyi_gnp(30, 0.2, 5);
        let config = BuildConfig::new(0.3).serial();
        #[allow(deprecated)]
        let shim = build_ft_mbfs(&g, &[VertexId(0), VertexId(5)], &config);
        let checked =
            try_build_ft_mbfs(&g, &[VertexId(0), VertexId(5)], &config).expect("valid input");
        assert_eq!(shim.num_edges(), checked.num_edges());
        assert_eq!(shim.num_reinforced(), checked.num_reinforced());
        let panicked = std::panic::catch_unwind(|| {
            #[allow(deprecated)]
            build_ft_mbfs(&g, &[], &config)
        });
        assert!(panicked.is_err(), "the 0.1 shim must panic on bad input");
    }

    #[test]
    fn union_structure_collapse_preserves_counts() {
        let g = families::erdos_renyi_gnp(50, 0.12, 9);
        let config = BuildConfig::new(0.25).with_seed(9).serial();
        let m = try_build_ft_mbfs(&g, &[VertexId(0), VertexId(7)], &config).expect("valid input");
        let (edges, reinforced) = (m.num_edges(), m.num_reinforced());
        let collapsed = m.into_union_structure();
        assert_eq!(collapsed.num_edges(), edges);
        assert_eq!(collapsed.num_reinforced(), reinforced);
        assert_eq!(collapsed.source(), VertexId(0));
        assert!(collapsed.stats().construction_ms >= 0.0);
    }
}
