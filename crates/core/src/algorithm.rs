//! The main `(b, r)` FT-BFS construction (Theorem 3.1).
//!
//! Driver orchestrating the phases:
//!
//! 1. **S0** — tie-break weights `W`, BFS tree `T0`, replacement distances,
//!    Algorithm `Pcons` (crate `ftb-rp`),
//! 2. split of the uncovered pairs into `I1` / `I2` by `(≁)`-interference,
//! 3. **S1** — `K = ⌈1/ε⌉ + 2` rounds over `I1` ([`crate::phase_s1`]),
//! 4. **S2** — heavy-path / segment decomposition covers over the `(∼)`-sets
//!    ([`crate::phase_s2`]),
//! 5. reinforcement — every tree edge that is still *last-unprotected*
//!    (some pair's chosen last edge missing from `H`) is reinforced; by
//!    Observation 2.2 all remaining edges are protected. Optionally the exact
//!    verifier shrinks this set to the truly unprotected edges.
//!
//! For `ε ≥ 1/2` the `n^{3/2}` branch (the ESA'13 baseline) is used, and for
//! `ε = 0` the reinforced BFS tree — matching the two extremes discussed in
//! the paper.
//!
//! The canonical entry point is [`try_build_ft_bfs`], which validates its
//! input and reports problems as [`FtbfsError`]; construction is normally
//! driven through the [`crate::StructureBuilder`] implementations instead of
//! calling this module directly.

use crate::baseline::{build_baseline_impl, build_reinforced_tree_impl};
use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::phase_s1::run_phase_s1;
use crate::phase_s2::run_phase_s2;
use crate::stats::BuildStats;
use crate::structure::FtBfsStructure;
use crate::verify::unprotected_edges;
use ftb_graph::{BitSet, Graph, VertexId};
use ftb_rp::{InterferenceIndex, ReplacementPaths};
use ftb_sp::{ReplacementDistances, ShortestPathTree, TieBreakWeights, UNREACHABLE};
use ftb_tree::{HeavyPathDecomposition, TreeIndex};
use std::time::Instant;

/// Validate `(graph, source, config)` as a construction input.
///
/// Shared by every [`crate::StructureBuilder`] implementation and the
/// `try_*` construction functions.
pub(crate) fn validate_input(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> Result<(), FtbfsError> {
    config.validate_for(graph.num_vertices())?;
    if source.index() >= graph.num_vertices() {
        return Err(FtbfsError::SourceOutOfRange {
            source,
            num_vertices: graph.num_vertices(),
        });
    }
    if config.require_connected {
        let dist = ftb_sp::bfs_distances(graph, source);
        let num_unreachable = dist.iter().filter(|&&d| d == UNREACHABLE).count();
        if num_unreachable > 0 {
            return Err(FtbfsError::DisconnectedSource {
                source,
                num_unreachable,
            });
        }
    }
    Ok(())
}

/// Build an `ε` FT-BFS (equivalently, a `(b, r)` FT-BFS) structure for
/// `graph` rooted at `source`, validating the input first.
///
/// The returned structure satisfies
/// `dist(s, v, H ∖ {e}) ≤ dist(s, v, G ∖ {e})` for every vertex `v` and every
/// non-reinforced edge `e`, with `O(1/ε · n^{1+ε} · log n)` backup edges and
/// `O(1/ε · n^{1-ε} · log n)` reinforced edges (Theorem 3.1).
///
/// # Errors
///
/// * [`FtbfsError::InvalidEps`] — `config.eps` outside `[0, 1]`,
/// * [`FtbfsError::SourceOutOfRange`] — `source` not a vertex of `graph`,
/// * [`FtbfsError::DisconnectedSource`] — only with
///   [`BuildConfig::require_connected`],
/// * [`FtbfsError::BudgetOverflow`] — degenerate or overflowing ablation
///   overrides.
pub fn try_build_ft_bfs(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> Result<FtBfsStructure, FtbfsError> {
    validate_input(graph, source, config)?;
    Ok(build_tradeoff_impl(graph, source, config))
}

/// The unvalidated construction body; callers must have validated the input.
pub(crate) fn build_tradeoff_impl(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> FtBfsStructure {
    if config.use_baseline_branch() {
        return build_baseline_impl(graph, source, config);
    }
    if config.eps <= 0.0 {
        return build_reinforced_tree_impl(graph, source, config);
    }
    let start = Instant::now();
    let n = graph.num_vertices();
    let phase_ms = |t0: Instant| t0.elapsed().as_secs_f64() * 1e3;

    // --- Phase S0 ---------------------------------------------------------
    let weights = TieBreakWeights::generate(graph, config.seed);
    let tree = ShortestPathTree::build(graph, &weights, source);
    let dists = ReplacementDistances::compute(graph, &tree, &config.parallel);
    let rp = ReplacementPaths::compute(graph, &weights, &tree, &dists, &config.parallel);
    let tree_index = TreeIndex::build(&tree);

    // H starts as the BFS tree.
    let mut h = BitSet::new(graph.num_edges());
    for &e in tree.tree_edges() {
        h.insert(e.index());
    }
    let num_tree_edges = h.len();

    // --- Interference split ------------------------------------------------
    let interference = InterferenceIndex::build(&rp, &tree, &tree_index);
    let (i1, i2) = interference.split_i1_i2();
    let (num_i1, num_i2) = (i1.len(), i2.len());
    let s0_ms = phase_ms(start);

    // --- Phase S1 -----------------------------------------------------------
    let t_s1 = Instant::now();
    let s1 = run_phase_s1(&rp, &interference, config, n, i1, &mut h);
    let s1_ms = phase_ms(t_s1);

    // --- Phase S2 -----------------------------------------------------------
    let t_s2 = Instant::now();
    let mut sim_sets: Vec<Vec<ftb_rp::PairId>> = vec![i2];
    sim_sets.extend(s1.sim_sets.iter().cloned());
    let (s2, hld_levels) = if config.enable_phase_s2 {
        let hld = HeavyPathDecomposition::build(&tree);
        let out = run_phase_s2(&rp, &tree, &hld, config, n, &sim_sets, &mut h);
        (out, hld.num_levels())
    } else {
        (Default::default(), 0)
    };
    let s2_ms = phase_ms(t_s2);

    // --- Reinforcement -------------------------------------------------------
    let t_reinforce = Instant::now();
    // A tree edge is reinforced when some pair's chosen last edge is missing
    // from H (the edge is then possibly last-unprotected); all other tree
    // edges are last-protected and hence protected (Observation 2.2).
    let mut reinforced = BitSet::new(graph.num_edges());
    for &p in rp.uncovered() {
        let item = rp.get(p);
        if !h.contains(item.last_edge.index()) {
            reinforced.insert(item.pair.failing_edge.index());
        }
    }
    if config.exact_reinforcement {
        // Replace by the exact set of unprotected edges (always a subset of
        // the algorithmic set on correct inputs, and never larger than it in
        // effect on validity).
        let exact = unprotected_edges(graph, &tree, &h, &config.parallel);
        reinforced = BitSet::new(graph.num_edges());
        for e in exact {
            reinforced.insert(e.index());
        }
    }

    let stats = BuildStats {
        num_vertices: n,
        num_graph_edges: graph.num_edges(),
        num_tree_edges,
        num_pairs: rp.len(),
        num_uncovered_pairs: rp.uncovered().len(),
        num_i1_pairs: num_i1,
        num_i2_pairs: num_i2,
        s1_iterations: s1.iterations,
        s1_added_edges: s1.added_edges,
        s1_leftover_pairs: s1.leftover_pairs,
        s2_glue_added_edges: s2.glue_added,
        s2_added_edges: s2.added,
        s2_sim_sets: s2.sim_sets_processed,
        reinforced_edges: reinforced.len(),
        hld_levels,
        k_rounds: config.k_rounds(),
        used_baseline: false,
        construction_ms: start.elapsed().as_secs_f64() * 1e3,
        s0_ms,
        s1_ms,
        s2_ms,
        reinforce_ms: phase_ms(t_reinforce),
    };
    FtBfsStructure::new(source, config.eps, h, reinforced, stats)
}

/// Build an FT-BFS structure, panicking on invalid input.
#[deprecated(
    since = "0.2.0",
    note = "use `TradeoffBuilder` (or `try_build_ft_bfs`) which reports \
            invalid input as `FtbfsError` instead of panicking"
)]
pub fn build_ft_bfs(graph: &Graph, source: VertexId, config: &BuildConfig) -> FtBfsStructure {
    try_build_ft_bfs(graph, source, config).expect("invalid FT-BFS construction input")
}

/// Convenience wrapper: build with default configuration for a given `ε`.
#[deprecated(
    since = "0.2.0",
    note = "use `TradeoffBuilder::new(eps)` (or `try_build_ft_bfs`) instead"
)]
pub fn build_ft_bfs_with_eps(graph: &Graph, source: VertexId, eps: f64) -> FtBfsStructure {
    try_build_ft_bfs(graph, source, &BuildConfig::new(eps))
        .expect("invalid FT-BFS construction input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_structure;
    use ftb_graph::generators;
    use ftb_par::ParallelConfig;
    use ftb_workloads::{families, Workload, WorkloadFamily};

    fn check_valid(graph: &Graph, eps: f64, seed: u64) -> FtBfsStructure {
        let config = BuildConfig::new(eps).with_seed(seed).serial();
        let s = try_build_ft_bfs(graph, VertexId(0), &config).expect("valid input");
        let weights = TieBreakWeights::generate(graph, seed);
        let tree = ShortestPathTree::build(graph, &weights, VertexId(0));
        let report = verify_structure(graph, &tree, &s, &ParallelConfig::serial(), false);
        assert!(
            report.is_valid(),
            "structure invalid (eps={eps}): {} violations over {} checked edges",
            report.violations.len(),
            report.checked_edges
        );
        s
    }

    #[test]
    fn constructed_structures_are_valid_across_eps() {
        let g = families::erdos_renyi_gnp(80, 0.08, 5);
        for eps in [0.0, 0.1, 0.25, 0.4, 0.5, 0.75, 1.0] {
            let s = check_valid(&g, eps, 5);
            assert!(s.num_edges() >= g.num_vertices() - 1);
        }
    }

    #[test]
    fn constructed_structures_are_valid_across_families() {
        for &family in WorkloadFamily::all() {
            let g = Workload::new(family, 70, 11).generate();
            let s = check_valid(&g, 0.3, 11);
            assert!(s.num_edges() <= g.num_edges());
        }
    }

    #[test]
    fn reinforcement_decreases_with_eps() {
        // Larger ε means a larger backup budget and hence fewer reinforced
        // edges (weak monotonicity checked across a coarse grid).
        let g = families::layered_random(8, 12, 3, 0.4, 7);
        let r_small = check_valid(&g, 0.1, 7).num_reinforced();
        let r_big = check_valid(&g, 0.45, 7).num_reinforced();
        assert!(
            r_big <= r_small,
            "reinforcement should not grow with eps: r(0.1)={r_small}, r(0.45)={r_big}"
        );
    }

    #[test]
    fn eps_one_matches_baseline_and_eps_zero_matches_tree() {
        let g = families::erdos_renyi_gnp(60, 0.1, 3);
        let s1 = check_valid(&g, 1.0, 3);
        assert!(s1.stats().used_baseline);
        assert_eq!(s1.num_reinforced(), 0);

        let s0 = check_valid(&g, 0.0, 3);
        assert_eq!(s0.num_backup(), 0);
        assert_eq!(s0.num_edges(), g.num_vertices() - 1);
    }

    #[test]
    fn structure_contains_the_bfs_tree() {
        let g = generators::hypercube(4);
        let config = BuildConfig::new(0.3).serial();
        let s = try_build_ft_bfs(&g, VertexId(0), &config).expect("valid input");
        let weights = TieBreakWeights::generate(&g, config.seed);
        let tree = ShortestPathTree::build(&g, &weights, VertexId(0));
        for &e in tree.tree_edges() {
            assert!(s.contains_edge(e));
        }
    }

    #[test]
    fn exact_reinforcement_is_no_larger_and_stays_valid() {
        let g = families::erdos_renyi_gnp(70, 0.1, 13);
        let approx = BuildConfig::new(0.25).with_seed(13).serial();
        let exact = approx.clone().with_exact_reinforcement(true);
        let sa = try_build_ft_bfs(&g, VertexId(0), &approx).expect("valid input");
        let se = try_build_ft_bfs(&g, VertexId(0), &exact).expect("valid input");
        assert!(se.num_reinforced() <= sa.num_reinforced());
        let weights = TieBreakWeights::generate(&g, 13);
        let tree = ShortestPathTree::build(&g, &weights, VertexId(0));
        assert!(verify_structure(&g, &tree, &se, &ParallelConfig::serial(), false).is_valid());
    }

    #[test]
    fn disabling_phase_s2_keeps_validity_but_costs_reinforcement() {
        let g = families::layered_random(7, 10, 3, 0.4, 17);
        let full = BuildConfig::new(0.2).with_seed(17).serial();
        let ablated = full.clone().with_phase_s2(false);
        let sf = try_build_ft_bfs(&g, VertexId(0), &full).expect("valid input");
        let sa = try_build_ft_bfs(&g, VertexId(0), &ablated).expect("valid input");
        let weights = TieBreakWeights::generate(&g, 17);
        let tree = ShortestPathTree::build(&g, &weights, VertexId(0));
        assert!(verify_structure(&g, &tree, &sa, &ParallelConfig::serial(), false).is_valid());
        assert!(sa.num_reinforced() >= sf.num_reinforced());
    }

    #[test]
    fn hld_levels_are_surfaced_when_phase_s2_runs() {
        let g = families::layered_random(7, 10, 3, 0.4, 23);
        let full = BuildConfig::new(0.2).with_seed(23).serial();
        let s = try_build_ft_bfs(&g, VertexId(0), &full).expect("valid input");
        assert!(
            s.stats().hld_levels >= 1,
            "phase S2 ran, so the decomposition depth must be recorded"
        );
        let ablated = full.clone().with_phase_s2(false);
        let sa = try_build_ft_bfs(&g, VertexId(0), &ablated).expect("valid input");
        assert_eq!(sa.stats().hld_levels, 0, "no S2, no decomposition");
    }

    #[test]
    fn parallel_and_serial_construction_agree() {
        let g = families::erdos_renyi_gnp(60, 0.1, 19);
        let serial = BuildConfig::new(0.3).with_seed(19).serial();
        let parallel = BuildConfig::new(0.3)
            .with_seed(19)
            .with_parallel(ParallelConfig::with_threads(4));
        let ss = try_build_ft_bfs(&g, VertexId(0), &serial).expect("valid input");
        let sp = try_build_ft_bfs(&g, VertexId(0), &parallel).expect("valid input");
        assert_eq!(ss.num_edges(), sp.num_edges());
        assert_eq!(ss.num_reinforced(), sp.num_reinforced());
        assert_eq!(ss.edge_set().to_vec(), sp.edge_set().to_vec());
    }

    #[test]
    fn deprecated_wrappers_match_the_checked_api() {
        let g = generators::grid(5, 5);
        #[allow(deprecated)]
        let a = build_ft_bfs_with_eps(&g, VertexId(0), 0.3);
        #[allow(deprecated)]
        let b = build_ft_bfs(&g, VertexId(0), &BuildConfig::new(0.3));
        let c = try_build_ft_bfs(&g, VertexId(0), &BuildConfig::new(0.3)).expect("valid input");
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.num_reinforced(), b.num_reinforced());
        assert_eq!(b.num_edges(), c.num_edges());
        assert_eq!(b.num_reinforced(), c.num_reinforced());
    }

    #[test]
    fn invalid_inputs_surface_as_typed_errors() {
        let g = generators::grid(4, 4);
        let bad_eps = try_build_ft_bfs(&g, VertexId(0), &BuildConfig::new(2.0));
        assert!(matches!(bad_eps, Err(FtbfsError::InvalidEps { .. })));

        let bad_source = try_build_ft_bfs(&g, VertexId(999), &BuildConfig::new(0.3));
        assert!(matches!(
            bad_source,
            Err(FtbfsError::SourceOutOfRange { .. })
        ));
    }

    #[test]
    fn disconnected_inputs_error_only_when_required() {
        // Two disjoint triangles.
        let mut b = ftb_graph::GraphBuilder::new(6);
        for (x, y) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(VertexId(x), VertexId(y));
        }
        let g = b.build();
        let lenient = BuildConfig::new(0.3).serial();
        let strict = lenient.clone().with_require_connected(true);
        assert!(try_build_ft_bfs(&g, VertexId(0), &lenient).is_ok());
        let err = try_build_ft_bfs(&g, VertexId(0), &strict).unwrap_err();
        assert_eq!(
            err,
            FtbfsError::DisconnectedSource {
                source: VertexId(0),
                num_unreachable: 3
            }
        );
    }
}
