//! The `(b, r)` FT-BFS structure type.

use crate::stats::BuildStats;
use ftb_graph::{BitSet, EdgeId, Graph, SubgraphView, VertexId};

/// A constructed `(b, r)` fault-tolerant BFS structure `H ⊆ G`.
///
/// The structure consists of:
/// * an edge set `E(H)` (always containing the BFS tree `T0`),
/// * a subset `E' ⊆ E(H)` of **reinforced** edges, assumed to never fail,
/// * the remaining `E(H) ∖ E'` **backup** edges.
///
/// The defining guarantee (verified by [`crate::verify`]) is that for every
/// vertex `v` and every non-reinforced edge `e`,
/// `dist(s, v, H ∖ {e}) ≤ dist(s, v, G ∖ {e})`.
#[derive(Clone, Debug)]
pub struct FtBfsStructure {
    source: VertexId,
    eps: f64,
    edges: BitSet,
    reinforced: BitSet,
    stats: BuildStats,
}

impl FtBfsStructure {
    /// Assemble a structure from its parts. `reinforced` must be a subset of
    /// `edges`.
    pub fn new(
        source: VertexId,
        eps: f64,
        edges: BitSet,
        reinforced: BitSet,
        stats: BuildStats,
    ) -> Self {
        debug_assert!(reinforced.iter().all(|e| edges.contains(e)));
        FtBfsStructure {
            source,
            eps,
            edges,
            reinforced,
            stats,
        }
    }

    /// The BFS source the structure protects.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The `ε` parameter the structure was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Total number of edges `|E(H)|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of reinforced edges `r`.
    pub fn num_reinforced(&self) -> usize {
        self.reinforced.len()
    }

    /// Number of backup edges `b = |E(H)| - r`.
    pub fn num_backup(&self) -> usize {
        self.num_edges() - self.num_reinforced()
    }

    /// `true` if edge `e` belongs to the structure.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(e.index())
    }

    /// `true` if edge `e` is reinforced.
    pub fn is_reinforced(&self, e: EdgeId) -> bool {
        self.reinforced.contains(e.index())
    }

    /// The edge set of `H` as a bitset over the parent graph's edge ids.
    pub fn edge_set(&self) -> &BitSet {
        &self.edges
    }

    /// The reinforced edge set as a bitset.
    pub fn reinforced_set(&self) -> &BitSet {
        &self.reinforced
    }

    /// Iterate over all edges of the structure.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().map(EdgeId::new)
    }

    /// Iterate over the reinforced edges.
    pub fn reinforced_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.reinforced.iter().map(EdgeId::new)
    }

    /// Iterate over the backup edges (edges of `H` that are not reinforced).
    pub fn backup_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .filter(|&e| !self.reinforced.contains(e))
            .map(EdgeId::new)
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// A masked view of the parent graph restricted to the structure's edges.
    pub fn as_view<'a>(&'a self, graph: &'a Graph) -> SubgraphView<'a> {
        SubgraphView::full(graph).with_allowed_edges(&self.edges)
    }

    /// Materialise the structure as a standalone [`Graph`] (vertex ids are
    /// preserved); also returns the mapping from new edge ids to the parent
    /// graph's edge ids.
    pub fn to_graph(&self, graph: &Graph) -> (Graph, Vec<EdgeId>) {
        ftb_graph::subgraph::extract_edge_subgraph(graph, &self.edges)
    }

    /// Total monetary cost under a backup/reinforcement price pair.
    pub fn total_cost(&self, backup_cost: f64, reinforce_cost: f64) -> f64 {
        self.num_backup() as f64 * backup_cost + self.num_reinforced() as f64 * reinforce_cost
    }

    /// Replace the reinforced set (used by the exact-reinforcement
    /// post-processing step). The new set must still be a subset of `E(H)`.
    pub fn with_reinforced(mut self, reinforced: BitSet) -> Self {
        debug_assert!(reinforced.iter().all(|e| self.edges.contains(e)));
        self.reinforced = reinforced;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::generators;

    fn sample_structure(g: &Graph) -> FtBfsStructure {
        let mut edges = BitSet::new(g.num_edges());
        let mut reinforced = BitSet::new(g.num_edges());
        for e in 0..g.num_edges().min(5) {
            edges.insert(e);
        }
        reinforced.insert(0);
        FtBfsStructure::new(VertexId(0), 0.3, edges, reinforced, BuildStats::default())
    }

    #[test]
    fn counts_are_consistent() {
        let g = generators::complete(6);
        let s = sample_structure(&g);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.num_reinforced(), 1);
        assert_eq!(s.num_backup(), 4);
        assert_eq!(s.source(), VertexId(0));
        assert!((s.eps() - 0.3).abs() < 1e-12);
        assert_eq!(s.edges().count(), 5);
        assert_eq!(s.backup_edges().count(), 4);
        assert_eq!(s.reinforced_edges().count(), 1);
    }

    #[test]
    fn membership_queries() {
        let g = generators::complete(6);
        let s = sample_structure(&g);
        assert!(s.contains_edge(EdgeId(0)));
        assert!(s.is_reinforced(EdgeId(0)));
        assert!(s.contains_edge(EdgeId(3)));
        assert!(!s.is_reinforced(EdgeId(3)));
        assert!(!s.contains_edge(EdgeId(10)));
    }

    #[test]
    fn cost_accounting() {
        let g = generators::complete(6);
        let s = sample_structure(&g);
        assert!((s.total_cost(1.0, 10.0) - (4.0 + 10.0)).abs() < 1e-9);
        assert!((s.total_cost(2.0, 0.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn view_and_extraction_match_edge_set() {
        let g = generators::complete(6);
        let s = sample_structure(&g);
        assert_eq!(s.as_view(&g).count_edges(), 5);
        let (sub, mapping) = s.to_graph(&g);
        assert_eq!(sub.num_edges(), 5);
        assert_eq!(mapping.len(), 5);
        assert_eq!(sub.num_vertices(), g.num_vertices());
    }

    #[test]
    fn with_reinforced_swaps_the_set() {
        let g = generators::complete(6);
        let s = sample_structure(&g);
        let mut r = BitSet::new(g.num_edges());
        r.insert(1);
        r.insert(2);
        let s2 = s.with_reinforced(r);
        assert_eq!(s2.num_reinforced(), 2);
        assert!(!s2.is_reinforced(EdgeId(0)));
        assert!(s2.is_reinforced(EdgeId(2)));
    }
}
