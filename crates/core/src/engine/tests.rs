use super::*;
use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::mbfs::try_build_ft_mbfs;
use crate::verify::dist_after_faults_brute;
use ftb_graph::{generators, EdgeId, Fault, FaultSet, Graph, SubgraphView, VertexId};
use ftb_par::ParallelConfig;
use ftb_sp::{bfs_distances_view, UNREACHABLE};
use std::sync::Arc;

fn engine_for(graph: &Graph, eps: f64, seed: u64) -> FaultQueryEngine<'_> {
    let s = TradeoffBuilder::new(eps)
        .with_config(|c| c.with_seed(seed).serial())
        .build(graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    FaultQueryEngine::new(graph, s).expect("matching graph")
}

fn brute_force_from(graph: &Graph, s: VertexId, v: VertexId, e: EdgeId) -> Option<u32> {
    let view = SubgraphView::full(graph).without_edge(e);
    let d = bfs_distances_view(&view, s)[v.index()];
    if d == UNREACHABLE {
        None
    } else {
        Some(d)
    }
}

fn brute_force(graph: &Graph, v: VertexId, e: EdgeId) -> Option<u32> {
    brute_force_from(graph, VertexId(0), v, e)
}

fn brute_faults(graph: &Graph, s: VertexId, v: VertexId, faults: &FaultSet) -> Option<u32> {
    let d = dist_after_faults_brute(graph, s, faults)[v.index()];
    (d != UNREACHABLE).then_some(d)
}

/// Options with the repair/fast path pinned **on**, so these tests keep
/// exercising the repaired pipeline even under `FTBFS_FORCE_FULL_SWEEP=1`
/// (CI runs the whole suite that way to cover the escape hatch).
fn repaired_options() -> EngineOptions {
    EngineOptions::new().serial().with_force_full_sweep(false)
}

#[test]
fn engine_core_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineCore>();
    assert_send_sync::<Arc<EngineCore>>();
    fn assert_send<T: Send>() {}
    assert_send::<QueryContext>();
}

#[test]
fn distances_match_brute_force_on_all_pairs() {
    for (name, graph) in [
        ("hypercube", generators::hypercube(3)),
        ("grid", generators::grid(4, 4)),
        ("clique_pendant", generators::clique_with_pendant(10)),
        ("cycle", generators::cycle(12)),
    ] {
        let mut engine = engine_for(&graph, 0.3, 7);
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let got = engine.dist_after_fault(v, e).expect("in range");
                let want = brute_force(&graph, v, e);
                assert_eq!(got, want, "{name}: vertex {v:?}, edge {e:?}");
            }
        }
    }
}

#[test]
fn paths_are_valid_witnesses_of_the_distances() {
    let graph = generators::grid(4, 5);
    let mut engine = engine_for(&graph, 0.25, 3);
    for e in graph.edge_ids() {
        for v in graph.vertices() {
            let d = engine.dist_after_fault(v, e).expect("in range");
            let p = engine.path_after_fault(v, e).expect("in range");
            match (d, p) {
                (None, None) => {}
                (Some(d), Some(p)) => {
                    assert_eq!(p.len() as u32, d, "path length mismatch at {v:?}/{e:?}");
                    assert_eq!(p.first(), VertexId(0));
                    assert_eq!(p.last(), v);
                    assert!(!p.contains_edge(e), "path uses the failed edge");
                    // consecutive vertices really are joined by the edges
                    for (i, &pe) in p.edges().iter().enumerate() {
                        let edge = graph.edge(pe);
                        let (a, b) = (p.vertices()[i], p.vertices()[i + 1]);
                        assert!(edge.is_incident(a) && edge.is_incident(b));
                    }
                }
                (d, p) => panic!("distance {d:?} but path {p:?}"),
            }
        }
    }
}

#[test]
fn batched_queries_match_single_queries() {
    let graph = generators::hypercube(4);
    let mut engine = engine_for(&graph, 0.3, 5);
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let batch = engine.query_many(&queries).expect("in range");
    let mut engine2 = engine_for(&graph, 0.3, 5);
    for (i, &(v, e)) in queries.iter().enumerate() {
        assert_eq!(batch[i], engine2.dist_after_fault(v, e).expect("in range"));
    }
    // grouping by edge keeps the number of sweeps at one per distinct
    // structure edge at most
    let stats = engine.query_stats();
    assert!(stats.structure_bfs_runs + stats.full_graph_bfs_runs <= graph.num_edges());
    assert_eq!(stats.queries, queries.len());
}

#[test]
fn sharded_and_serial_batches_are_identical() {
    let graph = generators::grid(6, 6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(9).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let mut serial =
        FaultQueryEngine::with_options(&graph, s.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let mut sharded = FaultQueryEngine::with_options(
        &graph,
        s,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    let a = serial.query_many(&queries).expect("in range");
    let b = sharded.query_many(&queries).expect("in range");
    assert_eq!(a, b, "sharded batch diverged from the serial path");
    // Both paths account for every query in their counters.
    assert_eq!(serial.query_stats().queries, queries.len());
    assert_eq!(sharded.query_stats().queries, queries.len());
}

#[test]
fn repeated_edge_queries_hit_the_row_cache() {
    let graph = generators::grid(5, 5);
    let mut engine = engine_for(&graph, 0.3, 11);
    let e = *engine
        .structure()
        .edges()
        .collect::<Vec<_>>()
        .first()
        .expect("structure has edges");
    for v in graph.vertices() {
        engine.dist_after_fault(v, e).expect("in range");
    }
    let stats = engine.query_stats();
    assert!(stats.structure_bfs_runs + stats.full_graph_bfs_runs <= 1);
    assert!(stats.cached_answers >= graph.num_vertices() - 1);
}

#[test]
fn lru_capacity_bounds_recomputation() {
    let graph = generators::grid(5, 5);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(11).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let edges: Vec<EdgeId> = s.edges().take(3).collect();
    assert!(edges.len() >= 3, "structure too small for the LRU test");

    // Force full sweeps: this test counts one search per miss, and the
    // unaffected fast path would answer some probes without any row.
    // Capacity 1 (the 0.2 one-row behaviour): a round-robin over three
    // failures evicts on every step, so every query repeats its BFS.
    let mut one = FaultQueryEngine::with_options(
        &graph,
        s.clone(),
        EngineOptions::new()
            .with_lru_rows(1)
            .serial()
            .with_force_full_sweep(true),
    )
    .expect("matching graph");
    for _ in 0..4 {
        for &e in &edges {
            one.dist_after_fault(VertexId(1), e).expect("in range");
        }
    }
    let one_runs = one.query_stats().structure_bfs_runs + one.query_stats().full_graph_bfs_runs;
    assert_eq!(one_runs, 12, "capacity 1 must recompute on every rotation");

    // Capacity 4: the working set fits, so each failure is searched once.
    let mut four = FaultQueryEngine::with_options(
        &graph,
        s,
        EngineOptions::new()
            .with_lru_rows(4)
            .serial()
            .with_force_full_sweep(true),
    )
    .expect("matching graph");
    for _ in 0..4 {
        for &e in &edges {
            four.dist_after_fault(VertexId(1), e).expect("in range");
        }
    }
    let four_runs = four.query_stats().structure_bfs_runs + four.query_stats().full_graph_bfs_runs;
    assert_eq!(four_runs, 3, "capacity 4 must keep the working set cached");
    assert_eq!(four.query_stats().cached_answers, 9);
}

#[test]
fn non_structure_edges_answer_from_the_fault_free_row() {
    let graph = generators::complete(8);
    let mut engine = engine_for(&graph, 0.3, 13);
    let outside = graph
        .edge_ids()
        .find(|&e| !engine.structure().contains_edge(e))
        .expect("K8 structure is sparse");
    let before = engine.query_stats();
    for v in graph.vertices() {
        let d = engine.dist_after_fault(v, outside).expect("in range");
        assert_eq!(d, engine.fault_free_dist(v).expect("in range"));
    }
    let after = engine.query_stats();
    assert_eq!(before.structure_bfs_runs, after.structure_bfs_runs);
    assert_eq!(before.full_graph_bfs_runs, after.full_graph_bfs_runs);
}

#[test]
fn out_of_range_queries_are_typed_errors() {
    let graph = generators::grid(3, 3);
    let mut engine = engine_for(&graph, 0.3, 1);
    assert!(matches!(
        engine.dist_after_fault(VertexId(99), EdgeId(0)),
        Err(FtbfsError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        engine.dist_after_fault(VertexId(0), EdgeId(999)),
        Err(FtbfsError::EdgeOutOfRange { .. })
    ));
    assert!(matches!(
        engine.path_after_fault(VertexId(99), EdgeId(0)),
        Err(FtbfsError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        engine.query_many(&[(VertexId(0), EdgeId(999))]),
        Err(FtbfsError::EdgeOutOfRange { .. })
    ));
}

#[test]
fn contexts_are_tied_to_their_core() {
    let g1 = generators::grid(3, 3);
    let g2 = generators::grid(3, 3);
    let build = |g: &Graph| {
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.serial())
            .build(g, &Sources::single(VertexId(0)))
            .expect("valid input");
        EngineCore::build(g, s).expect("matching graph")
    };
    let core1 = build(&g1);
    let core2 = build(&g2);
    let mut ctx1 = core1.new_context();
    assert!(ctx1
        .dist_after_fault(&core1, VertexId(1), EdgeId(0))
        .is_ok());
    assert_eq!(
        ctx1.dist_after_fault(&core2, VertexId(1), EdgeId(0)),
        Err(FtbfsError::ContextMismatch)
    );
    assert_eq!(
        ctx1.query_many(&core2, &[(VertexId(1), EdgeId(0))]),
        Err(FtbfsError::ContextMismatch)
    );
}

#[test]
fn mismatched_structure_is_rejected() {
    let g1 = generators::grid(3, 3);
    let g2 = generators::complete(6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.serial())
        .build(&g1, &Sources::single(VertexId(0)))
        .expect("valid input");
    assert!(matches!(
        FaultQueryEngine::new(&g2, s),
        Err(FtbfsError::StructureMismatch { .. })
    ));
}

#[test]
fn mismatched_structure_with_equal_edge_count_is_rejected() {
    // complete(7) and cycle(21) both have 21 edges, so the capacity
    // check alone cannot tell them apart. The K7 structure is sparse
    // (far fewer than 21 edges), and any proper edge subset of a cycle
    // distorts distances, so the fault-free cross-check must fire.
    let k7 = generators::complete(7);
    let cycle = generators::cycle(21);
    assert_eq!(k7.num_edges(), cycle.num_edges());
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.serial())
        .build(&k7, &Sources::single(VertexId(0)))
        .expect("valid input");
    assert!(
        s.num_edges() < k7.num_edges(),
        "K7 structure must be sparse"
    );
    assert!(matches!(
        FaultQueryEngine::new(&cycle, s),
        Err(FtbfsError::FaultFreeDistanceMismatch { .. })
    ));
}

#[test]
fn disconnecting_failures_return_none() {
    let graph = generators::path(5);
    let mut engine = engine_for(&graph, 0.3, 2);
    let e = graph
        .find_edge(VertexId(1), VertexId(2))
        .expect("path edge");
    assert_eq!(
        engine.dist_after_fault(VertexId(4), e).expect("in range"),
        None
    );
    assert_eq!(
        engine.path_after_fault(VertexId(4), e).expect("in range"),
        None
    );
    assert_eq!(
        engine.dist_after_fault(VertexId(1), e).expect("in range"),
        Some(1)
    );
}

#[test]
fn reinforced_edge_fallback_is_exact() {
    // eps = 0 reinforces every tree edge, so every tree-edge query takes
    // the full-graph fallback; the answers must still be exact.
    let graph = generators::cycle(9);
    let s = crate::baseline::try_build_reinforced_tree(
        &graph,
        VertexId(0),
        &BuildConfig::new(0.0).serial(),
    )
    .expect("valid input");
    let mut engine = FaultQueryEngine::new(&graph, s).expect("matching graph");
    for e in graph.edge_ids() {
        for v in graph.vertices() {
            assert_eq!(
                engine.dist_after_fault(v, e).expect("in range"),
                brute_force(&graph, v, e)
            );
        }
    }
    assert!(engine.query_stats().full_graph_bfs_runs > 0);
}

#[test]
fn shared_core_serves_a_second_facade() {
    let graph = generators::grid(4, 4);
    let mut a = engine_for(&graph, 0.3, 21);
    let mut b = FaultQueryEngine::from_core(&graph, a.core().clone()).expect("same graph");
    for e in graph.edge_ids().take(6) {
        assert_eq!(
            a.dist_after_fault(VertexId(9), e).expect("in range"),
            b.dist_after_fault(VertexId(9), e).expect("in range"),
        );
    }
    let other = generators::complete(9);
    assert!(matches!(
        FaultQueryEngine::from_core(&other, a.core().clone()),
        Err(FtbfsError::CoreGraphMismatch { .. })
    ));
}

#[test]
fn multi_source_engine_is_exact_per_source() {
    let graph = generators::grid(5, 5);
    let sources = [VertexId(0), VertexId(12), VertexId(24)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.3).with_seed(3).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::new(&graph, m).expect("matching graph");
    assert_eq!(engine.sources(), &sources);
    for &s in &sources {
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let got = engine.dist_after_fault(s, v, e).expect("in range");
                let want = brute_force_from(&graph, s, v, e);
                assert_eq!(got, want, "source {s:?}, vertex {v:?}, edge {e:?}");
            }
        }
    }
}

#[test]
fn multi_source_batches_match_singles_and_check_sources() {
    let graph = generators::hypercube(4);
    let sources = [VertexId(0), VertexId(15)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.3).with_seed(5).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::with_options(
        &graph,
        m.clone(),
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    let mut queries: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
    for e in graph.edge_ids() {
        for &s in &sources {
            for v in graph.vertices() {
                queries.push((s, v, e));
            }
        }
    }
    let batch = engine.query_many(&queries).expect("in range");
    let mut single = MultiSourceEngine::new(&graph, m).expect("matching graph");
    for (i, &(s, v, e)) in queries.iter().enumerate() {
        assert_eq!(
            batch[i],
            single.dist_after_fault(s, v, e).expect("in range")
        );
    }
    assert_eq!(
        single.dist_after_fault(VertexId(7), VertexId(0), EdgeId(0)),
        Err(FtbfsError::SourceNotServed {
            source: VertexId(7)
        })
    );
    assert!(matches!(
        single.query_many(&[(VertexId(7), VertexId(0), EdgeId(0))]),
        Err(FtbfsError::SourceNotServed { .. })
    ));
}

#[test]
fn multi_source_paths_are_witnesses() {
    let graph = generators::grid(4, 4);
    let sources = [VertexId(0), VertexId(15)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.25).with_seed(7).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::new(&graph, m).expect("matching graph");
    for &s in &sources {
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let d = engine.dist_after_fault(s, v, e).expect("in range");
                let p = engine.path_after_fault(s, v, e).expect("in range");
                match (d, p) {
                    (None, None) => {}
                    (Some(d), Some(p)) => {
                        assert_eq!(p.len() as u32, d);
                        assert_eq!(p.first(), s);
                        assert_eq!(p.last(), v);
                        assert!(!p.contains_edge(e));
                    }
                    (d, p) => panic!("distance {d:?} but path {p:?}"),
                }
            }
        }
    }
}

#[test]
fn concurrent_contexts_share_one_core() {
    // EngineCore owns its data, so Arc<EngineCore> moves into real spawned
    // threads; each thread gets its own context and must agree with the
    // serial engine on every answer.
    let graph = generators::grid(6, 5);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(31).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let core = Arc::new(EngineCore::build(&graph, s).expect("matching graph"));
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let expected: Vec<Option<u32>> = {
        let mut ctx = core.new_context();
        queries
            .iter()
            .map(|&(v, e)| ctx.dist_after_fault(&core, v, e).expect("in range"))
            .collect()
    };
    let mut handles = Vec::new();
    for t in 0..4usize {
        let core = Arc::clone(&core);
        let queries = queries.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = core.new_context();
            // Different threads walk the batch from different offsets so the
            // LRU states genuinely diverge.
            let n = queries.len();
            for i in 0..n {
                let (v, e) = queries[(i + t * n / 4) % n];
                let got = ctx.dist_after_fault(&core, v, e).expect("in range");
                assert_eq!(got, expected[(i + t * n / 4) % n]);
            }
            ctx.stats().queries
        }));
    }
    for h in handles {
        assert_eq!(h.join().expect("worker panicked"), queries.len());
    }
}

#[test]
fn engine_options_from_build_config() {
    let cfg = BuildConfig::new(0.3)
        .with_engine_lru_rows(5)
        .with_max_faults(3)
        .serial();
    let opts = EngineOptions::from_build_config(&cfg);
    assert_eq!(opts.lru_rows, 5);
    assert_eq!(opts.max_faults, 3);
    assert!(opts.parallel.is_serial());
    assert_eq!(EngineOptions::new().with_lru_rows(0).lru_rows, 1);
    assert_eq!(EngineOptions::new().with_max_faults(0).max_faults, 1);
    assert_eq!(
        EngineOptions::default().lru_rows,
        EngineOptions::DEFAULT_LRU_ROWS
    );
    assert_eq!(
        EngineOptions::default().max_faults,
        EngineOptions::DEFAULT_MAX_FAULTS
    );
}

#[test]
fn fault_set_queries_match_brute_force_on_all_pairs_and_singletons() {
    for (name, graph) in [
        ("hypercube", generators::hypercube(3)),
        ("grid", generators::grid(4, 4)),
        ("clique_pendant", generators::clique_with_pendant(8)),
    ] {
        let mut engine = engine_for(&graph, 0.3, 7);
        for faults in ftb_graph::enumerate_fault_sets(&graph, 2) {
            for v in graph.vertices() {
                let got = engine.dist_after_faults(v, &faults).expect("in range");
                let want = brute_faults(&graph, VertexId(0), v, &faults);
                assert_eq!(got, want, "{name}: vertex {v:?}, faults {faults}");
            }
        }
    }
}

#[test]
fn single_edge_api_and_singleton_sets_are_byte_identical() {
    let graph = generators::grid(5, 4);
    let mut a = engine_for(&graph, 0.3, 9);
    let mut b = engine_for(&graph, 0.3, 9);
    for e in graph.edge_ids() {
        let singleton = FaultSet::from(e);
        for v in graph.vertices() {
            assert_eq!(
                a.dist_after_fault(v, e).expect("in range"),
                b.dist_after_faults(v, &singleton).expect("in range"),
            );
            assert_eq!(
                a.path_after_fault(v, e).expect("in range"),
                b.path_after_faults(v, &singleton).expect("in range"),
            );
        }
    }
    // Both engines did exactly the same work: the singleton-set path is the
    // single-edge path.
    assert_eq!(a.query_stats(), b.query_stats());
}

#[test]
fn single_edge_and_singleton_set_share_one_lru_row() {
    let graph = generators::grid(5, 5);
    let mut engine = engine_for(&graph, 0.3, 11);
    let e = engine
        .structure()
        .backup_edges()
        .next()
        .expect("structure has backup edges");
    engine.dist_after_fault(VertexId(1), e).expect("in range");
    let after_first = engine.query_stats();
    // The singleton-set twin of the same failure must hit the cached row.
    engine
        .dist_after_faults(VertexId(2), &FaultSet::from(e))
        .expect("in range");
    let after_second = engine.query_stats();
    assert_eq!(
        after_first.structure_bfs_runs + after_first.full_graph_bfs_runs,
        after_second.structure_bfs_runs + after_second.full_graph_bfs_runs,
        "singleton set must not recompute the single-edge row"
    );
    assert_eq!(after_second.cached_answers, after_first.cached_answers + 1);
}

#[test]
fn vertex_faults_disconnect_target_and_source() {
    let graph = generators::path(5); // 0-1-2-3-4
    let mut engine = engine_for(&graph, 0.3, 3);
    // Failing vertex 2 cuts the suffix off.
    let mid = FaultSet::single_vertex(VertexId(2));
    assert_eq!(
        engine.dist_after_faults(VertexId(1), &mid).unwrap(),
        Some(1)
    );
    assert_eq!(engine.dist_after_faults(VertexId(2), &mid).unwrap(), None);
    assert_eq!(engine.dist_after_faults(VertexId(4), &mid).unwrap(), None);
    assert_eq!(engine.path_after_faults(VertexId(4), &mid).unwrap(), None);
    // Failing the source disconnects everything, the source included — and
    // the all-unreachable row is a fill, not a search, so no sweep is
    // counted.
    let before = engine.query_stats();
    let src = FaultSet::single_vertex(VertexId(0));
    for v in graph.vertices() {
        assert_eq!(engine.dist_after_faults(v, &src).unwrap(), None, "{v:?}");
    }
    let after = engine.query_stats();
    assert_eq!(after.structure_bfs_runs, before.structure_bfs_runs);
    assert_eq!(after.full_graph_bfs_runs, before.full_graph_bfs_runs);
}

#[test]
fn fault_paths_avoid_every_failed_element() {
    let graph = generators::grid(4, 4);
    let mut engine = engine_for(&graph, 0.25, 13);
    for faults in ftb_graph::enumerate_fault_sets(&graph, 2) {
        for v in graph.vertices() {
            let d = engine.dist_after_faults(v, &faults).expect("in range");
            let p = engine.path_after_faults(v, &faults).expect("in range");
            match (d, p) {
                (None, None) => {}
                (Some(d), Some(p)) => {
                    assert_eq!(p.len() as u32, d);
                    assert_eq!(p.first(), VertexId(0));
                    assert_eq!(p.last(), v);
                    for e in faults.edges() {
                        assert!(!p.contains_edge(e), "path uses failed edge {e:?}");
                    }
                    for fv in faults.vertices() {
                        assert!(
                            !p.vertices().contains(&fv),
                            "path visits failed vertex {fv:?}"
                        );
                    }
                }
                (d, p) => panic!("distance {d:?} but path {p:?}"),
            }
        }
    }
}

#[test]
fn fault_set_cap_and_invalid_faults_are_typed_errors() {
    let graph = generators::grid(3, 3);
    let mut engine = engine_for(&graph, 0.3, 1);
    let three: FaultSet = (0..3).map(|i| Fault::Edge(EdgeId(i))).collect();
    assert_eq!(
        engine.dist_after_faults(VertexId(1), &three),
        Err(FtbfsError::FaultSetTooLarge { got: 3, max: 2 })
    );
    assert!(matches!(
        engine.path_after_faults(VertexId(1), &three),
        Err(FtbfsError::FaultSetTooLarge { .. })
    ));
    assert!(matches!(
        engine.query_many_faults(&[(VertexId(1), three)]),
        Err(FtbfsError::FaultSetTooLarge { .. })
    ));
    let bad_vertex = FaultSet::single_vertex(VertexId(500));
    assert!(matches!(
        engine.dist_after_faults(VertexId(1), &bad_vertex),
        Err(FtbfsError::InvalidFault {
            fault: Fault::Vertex(VertexId(500)),
            ..
        })
    ));
    let bad_edge = FaultSet::single_edge(EdgeId(500));
    assert!(matches!(
        engine.dist_after_faults(VertexId(1), &bad_edge),
        Err(FtbfsError::InvalidFault { .. })
    ));
}

#[test]
fn raising_max_faults_accepts_larger_sets() {
    let graph = generators::hypercube(4);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(17).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let mut engine =
        FaultQueryEngine::with_options(&graph, s, EngineOptions::new().with_max_faults(4).serial())
            .expect("matching graph");
    let faults: FaultSet = [
        Fault::Edge(EdgeId(0)),
        Fault::Edge(EdgeId(5)),
        Fault::Vertex(VertexId(3)),
        Fault::Vertex(VertexId(9)),
    ]
    .into_iter()
    .collect();
    for v in graph.vertices() {
        assert_eq!(
            engine.dist_after_faults(v, &faults).expect("in range"),
            brute_faults(&graph, VertexId(0), v, &faults),
            "{v:?}"
        );
    }
}

#[test]
fn lru_eviction_order_under_fault_set_keying() {
    let graph = generators::grid(5, 5);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(11).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let edges: Vec<EdgeId> = s.backup_edges().take(2).collect();
    assert_eq!(edges.len(), 2, "structure too small for the LRU test");
    // Three distinct row keys: two single-edge sets and one mixed set.
    let keys: Vec<FaultSet> = vec![
        FaultSet::from(edges[0]),
        FaultSet::from(edges[1]),
        [Fault::Edge(edges[0]), Fault::Vertex(VertexId(24))]
            .into_iter()
            .collect(),
    ];
    // Forced full sweeps: the probes below count one search per miss, which
    // the unaffected fast path would short-circuit for some vertices.
    let mut engine = FaultQueryEngine::with_options(
        &graph,
        s,
        EngineOptions::new()
            .with_lru_rows(2)
            .serial()
            .with_force_full_sweep(true),
    )
    .expect("matching graph");
    let runs = |e: &FaultQueryEngine| {
        let st = e.query_stats();
        st.structure_bfs_runs + st.full_graph_bfs_runs
    };
    // Fill the two slots with keys[0], keys[1]: two sweeps.
    engine.dist_after_faults(VertexId(1), &keys[0]).unwrap();
    engine.dist_after_faults(VertexId(1), &keys[1]).unwrap();
    assert_eq!(runs(&engine), 2);
    // Touch keys[0] so keys[1] becomes the least recently used…
    engine.dist_after_faults(VertexId(2), &keys[0]).unwrap();
    assert_eq!(runs(&engine), 2, "touch must be a cache hit");
    // …then insert keys[2]: evicts keys[1], keeps keys[0].
    engine.dist_after_faults(VertexId(1), &keys[2]).unwrap();
    assert_eq!(runs(&engine), 3);
    engine.dist_after_faults(VertexId(3), &keys[0]).unwrap();
    assert_eq!(runs(&engine), 3, "recently used key must survive eviction");
    engine.dist_after_faults(VertexId(3), &keys[1]).unwrap();
    assert_eq!(runs(&engine), 4, "evicted key must recompute");
}

#[test]
fn query_many_faults_matches_singles_serial_and_sharded() {
    let graph = generators::grid(5, 5);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(19).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let sets = ftb_graph::enumerate_fault_sets(&graph, 2);
    // A spread of fault sets of all shapes, every vertex probed.
    let queries: Vec<(VertexId, FaultSet)> = sets
        .iter()
        .step_by(7)
        .flat_map(|f| graph.vertices().map(move |v| (v, f.clone())))
        .collect();
    let mut serial =
        FaultQueryEngine::with_options(&graph, s.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let expected = serial.query_many_faults(&queries).expect("in range");
    for (i, (v, f)) in queries.iter().enumerate() {
        assert_eq!(
            expected[i],
            brute_faults(&graph, VertexId(0), *v, f),
            "query {i}: {v:?} under {f}"
        );
    }
    for threads in [2usize, 4] {
        let mut sharded = FaultQueryEngine::with_options(
            &graph,
            s.clone(),
            EngineOptions::new().with_parallel(ParallelConfig::with_threads(threads)),
        )
        .expect("matching graph");
        let got = sharded.query_many_faults(&queries).expect("in range");
        assert_eq!(got, expected, "{threads}-thread batch diverged");
        assert_eq!(sharded.query_stats().queries, queries.len());
    }
}

#[test]
fn skewed_batches_split_across_workers_and_stay_identical() {
    // Every query hits the same failing fault: pre-split, this serialised
    // the whole batch on one worker.
    let graph = generators::grid(6, 6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(23).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let hot = s.backup_edges().next().expect("structure has backup edges");
    let hot_set = FaultSet::from(hot);
    let queries: Vec<(VertexId, FaultSet)> = (0..600)
        .map(|i| (VertexId::new(i % graph.num_vertices()), hot_set.clone()))
        .collect();

    let mut serial =
        FaultQueryEngine::with_options(&graph, s.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let expected = serial.query_many_faults(&queries).expect("in range");
    let serial_sweeps = {
        let st = serial.query_stats();
        st.structure_bfs_runs + st.full_graph_bfs_runs
    };
    assert_eq!(serial_sweeps, 1, "serial path still runs one BFS");

    let mut sharded = FaultQueryEngine::with_options(
        &graph,
        s,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    let got = sharded.query_many_faults(&queries).expect("in range");
    assert_eq!(got, expected, "split batch diverged from serial");
    let st = sharded.query_stats();
    assert_eq!(st.queries, queries.len());
    // The group was split into several units; each worker that touched the
    // hot fault ran its own BFS (bounded by the worker count), and the LRU
    // absorbed the units beyond the first per worker.
    let sweeps = st.structure_bfs_runs + st.full_graph_bfs_runs;
    assert!(
        (1..=4).contains(&sweeps),
        "expected 1..=4 sweeps across workers, got {sweeps}"
    );
}

#[test]
fn multi_source_fault_sets_are_exact_per_source() {
    let graph = generators::grid(4, 4);
    let sources = [VertexId(0), VertexId(15)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.3).with_seed(29).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::new(&graph, m.clone()).expect("matching graph");
    let sets = ftb_graph::enumerate_fault_sets(&graph, 2);
    let mut queries: Vec<(VertexId, VertexId, FaultSet)> = Vec::new();
    for f in sets.iter().step_by(5) {
        for &s in &sources {
            for v in graph.vertices() {
                queries.push((s, v, f.clone()));
            }
        }
    }
    let batch = engine.query_many_faults(&queries).expect("in range");
    for (i, (s, v, f)) in queries.iter().enumerate() {
        assert_eq!(
            batch[i],
            brute_faults(&graph, *s, *v, f),
            "source {s:?}, vertex {v:?}, faults {f}"
        );
        assert_eq!(
            batch[i],
            engine.dist_after_faults(*s, *v, f).expect("in range")
        );
    }
    // Sharded agrees with the serial reference.
    let mut sharded = MultiSourceEngine::with_options(
        &graph,
        m,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    assert_eq!(
        sharded.query_many_faults(&queries).expect("in range"),
        batch
    );
    // Unserved sources stay typed errors on the fault-set path too.
    assert!(matches!(
        engine.dist_after_faults(VertexId(7), VertexId(0), &FaultSet::single_edge(EdgeId(0))),
        Err(FtbfsError::SourceNotServed { .. })
    ));
}

#[test]
fn tier_counters_sum_to_queries_and_attribute_lru_hits() {
    let graph = generators::complete(9);
    // Forced full sweeps so every probe resolves a row and the per-tier
    // attribution below is exact (the fast path has its own tests).
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(31).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let mut engine = FaultQueryEngine::with_options(
        &graph,
        s,
        EngineOptions::new().serial().with_force_full_sweep(true),
    )
    .expect("matching graph");
    let outside = graph
        .edge_ids()
        .find(|&e| !engine.structure().contains_edge(e))
        .expect("a sparse structure leaves edges out");
    let inside = engine
        .structure()
        .backup_edges()
        .next()
        .expect("structure has backup edges");
    // Fault-free tier, then sparse-H tier twice (second is an LRU hit) and
    // a vertex fault on the full-graph tier (no augmentation here).
    let _ = engine.dist_after_fault(VertexId(7), outside).unwrap();
    let _ = engine.dist_after_fault(VertexId(7), inside).unwrap();
    let _ = engine.dist_after_fault(VertexId(8), inside).unwrap();
    let _ = engine
        .dist_after_faults(VertexId(7), &FaultSet::single_vertex(VertexId(3)))
        .unwrap();
    let stats = engine.query_stats();
    assert_eq!(stats.queries, 4);
    assert_eq!(stats.tiers.total(), stats.queries);
    assert_eq!(stats.tiers.fault_free_row, 1);
    assert_eq!(stats.tiers.sparse_h_bfs, 2, "LRU hit keeps its tier");
    assert_eq!(stats.tiers.full_graph_bfs, 1);
    assert_eq!(stats.tiers.augmented_bfs, 0);
    assert_eq!(stats.structure_bfs_runs, 1, "one sweep serves both probes");
}

#[test]
fn stats_delta_since_subtracts_fieldwise() {
    let graph = generators::grid(4, 5);
    let mut engine = engine_for(&graph, 0.3, 33);
    let e = engine
        .structure()
        .backup_edges()
        .next()
        .expect("structure has backup edges");
    let _ = engine.dist_after_fault(VertexId(3), e).unwrap();
    let before = engine.query_stats();
    let _ = engine.dist_after_fault(VertexId(4), e).unwrap();
    let _ = engine
        .dist_after_faults(VertexId(4), &FaultSet::single_vertex(VertexId(2)))
        .unwrap();
    let delta = engine.query_stats().delta_since(&before);
    assert_eq!(delta.queries, 2);
    assert_eq!(delta.cached_answers, 1);
    assert_eq!(delta.tiers.sparse_h_bfs, 1);
    assert_eq!(delta.tiers.full_graph_bfs, 1);
    assert_eq!(delta.structure_bfs_runs, 0);
    assert_eq!(delta.full_graph_bfs_runs, 1);
    let mut merged = before;
    merged.merge(&delta);
    assert_eq!(merged, engine.query_stats());
}

#[test]
fn unaffected_fast_path_answers_without_a_row() {
    let graph = generators::grid(6, 6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(41).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let core = EngineCore::build_with(&graph, s, repaired_options()).expect("matching graph");
    let mut ctx = core.new_context();
    // A structure edge whose failure leaves some vertex provably
    // unaffected and some affected: grid BFS trees always have proper
    // subtrees.
    let (e, unaffected, affected) = core
        .structure()
        .backup_edges()
        .find_map(|e| {
            let faults = FaultSet::from(e);
            if core.route(&faults) != super::Tier::SparseH {
                return None;
            }
            let un = graph
                .vertices()
                .find(|&v| core.target_unaffected(0, v, &faults))?;
            let af = graph
                .vertices()
                .find(|&v| !core.target_unaffected(0, v, &faults))?;
            Some((e, un, af))
        })
        .expect("grid structures have partial failures");
    let faults = FaultSet::from(e);
    // Unaffected target: O(1) answer, no sweep, no repair, no LRU row.
    let d = ctx.dist_after_faults(&core, unaffected, &faults).unwrap();
    assert_eq!(d, core.fault_free_dist_slot(0, unaffected));
    assert_eq!(d, brute_faults(&graph, VertexId(0), unaffected, &faults));
    let stats = ctx.stats();
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.tiers.unaffected_fast_path, 1);
    assert_eq!(stats.cached_answers, 1);
    assert_eq!(stats.structure_bfs_runs, 0);
    assert_eq!(stats.repaired_rows, 0);
    // Affected target: the row is computed — by repair, counted as one
    // structure sweep.
    let d = ctx.dist_after_faults(&core, affected, &faults).unwrap();
    assert_eq!(d, brute_faults(&graph, VertexId(0), affected, &faults));
    let stats = ctx.stats();
    assert_eq!(stats.tiers.unaffected_fast_path, 1);
    assert_eq!(stats.tiers.sparse_h_bfs, 1);
    assert_eq!(stats.structure_bfs_runs, 1);
    assert_eq!(stats.repaired_rows, 1);
    assert_eq!(stats.tiers.total(), stats.queries);
}

#[test]
fn forced_full_sweeps_disable_fast_path_and_repair() {
    let graph = generators::grid(6, 6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(41).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let core = EngineCore::build_with(
        &graph,
        s,
        EngineOptions::new().serial().with_force_full_sweep(true),
    )
    .expect("matching graph");
    assert!(core.options().force_full_sweep);
    let mut ctx = core.new_context();
    let e = core
        .structure()
        .backup_edges()
        .next()
        .expect("structure has backup edges");
    for v in graph.vertices() {
        let got = ctx.dist_after_fault(&core, v, e).expect("in range");
        assert_eq!(got, brute_force(&graph, v, e));
    }
    let stats = ctx.stats();
    assert_eq!(stats.tiers.unaffected_fast_path, 0, "fast path is off");
    assert_eq!(stats.repaired_rows, 0, "repair is off");
    assert_eq!(stats.structure_bfs_runs + stats.full_graph_bfs_runs, 1);
    assert!(
        !EngineOptions::new()
            .with_force_full_sweep(false)
            .force_full_sweep
    );
}

#[test]
fn unaffected_path_queries_take_the_fast_path() {
    // A target whose whole root-to-target parent chain is provably
    // unaffected gets its path straight from the fault-free row: no sweep,
    // no row — and byte-identical to the forced-full-sweep answer.
    let graph = generators::grid(5, 5);
    let build = |force| {
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(43).serial())
            .build(&graph, &Sources::single(VertexId(0)))
            .expect("valid input");
        EngineCore::build_with(&graph, s, repaired_options().with_force_full_sweep(force))
            .expect("matching graph")
    };
    let core = build(false);
    let forced = build(true);
    let mut ctx = core.new_context();
    let mut fctx = forced.new_context();
    let (e, unaffected) = core
        .structure()
        .backup_edges()
        .find_map(|e| {
            let faults = FaultSet::from(e);
            (core.route(&faults) == super::Tier::SparseH)
                .then(|| {
                    graph
                        .vertices()
                        .find(|&v| {
                            core.target_unaffected(0, v, &faults)
                                && core.fault_free_dist_slot(0, v).is_some()
                        })
                        .map(|v| (e, v))
                })
                .flatten()
        })
        .expect("grid structures have partial failures");
    let p = ctx
        .path_after_fault(&core, unaffected, e)
        .expect("in range")
        .expect("reachable");
    assert_eq!(p.last(), unaffected);
    let stats = ctx.stats();
    assert_eq!(stats.tiers.unaffected_fast_path, 1);
    assert_eq!(stats.structure_bfs_runs, 0, "no row was computed");
    // For the SparseH tier the fault-free chain IS the T0 chain, so the
    // extracted path must equal the materialized row's path exactly.
    let fp = fctx
        .path_after_fault(&forced, unaffected, e)
        .expect("in range")
        .expect("reachable");
    assert_eq!(p.vertices(), fp.vertices());
    assert_eq!(p.edges(), fp.edges());
    // An affected target still resolves a materialized row.
    let affected = graph
        .vertices()
        .find(|&v| !core.target_unaffected(0, v, &FaultSet::from(e)))
        .expect("the failed tree edge affects its subtree");
    ctx.path_after_fault(&core, affected, e).expect("in range");
    let stats = ctx.stats();
    assert_eq!(stats.tiers.unaffected_fast_path, 1);
    assert_eq!(stats.structure_bfs_runs, 1, "fallback computed the row");
}

#[test]
fn batched_queries_use_the_fast_path_per_target() {
    // Within a fault-group of a batch, unaffected targets are answered
    // without touching the group's row; the sweep only runs when an
    // affected target needs it.
    let graph = generators::grid(6, 6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(47).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let core = EngineCore::build_with(&graph, s, repaired_options()).expect("matching graph");
    let faults: Vec<FaultSet> = core
        .structure()
        .backup_edges()
        .map(FaultSet::from)
        .filter(|f| core.route(f) == super::Tier::SparseH)
        .take(4)
        .collect();
    assert!(!faults.is_empty());
    let queries: Vec<(VertexId, FaultSet)> = faults
        .iter()
        .flat_map(|f| graph.vertices().map(move |v| (v, f.clone())))
        .collect();
    let mut ctx = core.new_context();
    let got = ctx.query_many_faults(&core, &queries).expect("in range");
    for (i, (v, f)) in queries.iter().enumerate() {
        assert_eq!(got[i], brute_faults(&graph, VertexId(0), *v, f));
    }
    let stats = ctx.stats();
    assert!(
        stats.tiers.unaffected_fast_path > 0,
        "grid tree faults leave unaffected targets"
    );
    assert_eq!(stats.tiers.total(), stats.queries);
    assert!(stats.structure_bfs_runs <= faults.len());
}

#[test]
fn repaired_and_forced_engines_agree_on_augmented_duals() {
    let graph = generators::hypercube(4);
    let base = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(53).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let aug = crate::ftbfs::FtBfsAugmenter::new(crate::ftbfs::AugmentCoverage::DualFailure)
        .with_seed(53)
        .serial()
        .augment(&graph, base)
        .expect("matching graph");
    let repaired = EngineCore::build_augmented_with(&graph, aug.clone(), repaired_options())
        .expect("matching graph");
    let forced = EngineCore::build_augmented_with(
        &graph,
        aug,
        EngineOptions::new().serial().with_force_full_sweep(true),
    )
    .expect("matching graph");
    let mut rctx = repaired.new_context();
    let mut fctx = forced.new_context();
    for faults in ftb_graph::enumerate_fault_sets(&graph, 2).iter().step_by(7) {
        for v in graph.vertices() {
            assert_eq!(
                rctx.dist_after_faults(&repaired, v, faults).unwrap(),
                fctx.dist_after_faults(&forced, v, faults).unwrap(),
                "{v:?} under {faults}"
            );
            assert_eq!(
                rctx.path_after_faults(&repaired, v, faults).unwrap(),
                fctx.path_after_faults(&forced, v, faults).unwrap(),
                "{v:?} under {faults}"
            );
        }
    }
    assert!(rctx.stats().repaired_rows > 0);
    assert_eq!(fctx.stats().repaired_rows, 0);
}

#[test]
fn augmented_core_routes_and_answers_inside_the_engine_crate() {
    let graph = generators::hypercube(4);
    let base = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(35).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let aug = crate::ftbfs::FtBfsAugmenter::new(crate::ftbfs::AugmentCoverage::DualFailure)
        .with_seed(35)
        .serial()
        .augment(&graph, base)
        .expect("matching graph");
    let core = EngineCore::build_augmented(&graph, aug).expect("matching graph");
    assert_eq!(
        core.augment_coverage(),
        crate::ftbfs::AugmentCoverage::DualFailure
    );
    let mut ctx = core.new_context();
    let faults: FaultSet = [Fault::Edge(EdgeId(0)), Fault::Edge(EdgeId(9))]
        .into_iter()
        .collect();
    for v in graph.vertices() {
        assert_eq!(
            ctx.dist_after_faults(&core, v, &faults).expect("in range"),
            brute_faults(&graph, VertexId(0), v, &faults)
        );
    }
    let stats = ctx.stats();
    assert_eq!(stats.tiers.full_graph_bfs, 0);
    assert!(stats.tiers.augmented_bfs > 0);
    assert_eq!(stats.augmented_bfs_runs, 1, "one sweep, then LRU hits");
}

#[test]
fn query_stats_merge_and_delta_are_inverse_fieldwise() {
    let a = QueryStats {
        queries: 10,
        structure_bfs_runs: 3,
        augmented_bfs_runs: 2,
        full_graph_bfs_runs: 1,
        cached_answers: 4,
        repaired_rows: 2,
        restricted_repairs: 1,
        tiers: TierCounters {
            fault_free_row: 4,
            unaffected_fast_path: 1,
            batched_unaffected: 0,
            sparse_h_bfs: 3,
            augmented_bfs: 1,
            full_graph_bfs: 1,
        },
    };
    let b = QueryStats {
        queries: 7,
        structure_bfs_runs: 1,
        augmented_bfs_runs: 0,
        full_graph_bfs_runs: 2,
        cached_answers: 3,
        repaired_rows: 1,
        restricted_repairs: 0,
        tiers: TierCounters {
            fault_free_row: 2,
            unaffected_fast_path: 0,
            batched_unaffected: 1,
            sparse_h_bfs: 1,
            augmented_bfs: 2,
            full_graph_bfs: 2,
        },
    };
    // merge accumulates every field, including the per-tier counters...
    let mut merged = a;
    merged.merge(&b);
    assert_eq!(merged.queries, 17);
    assert_eq!(merged.structure_bfs_runs, 4);
    assert_eq!(merged.tiers.total(), a.tiers.total() + b.tiers.total());
    // ...and delta_since undoes it exactly: (a ⊕ b) ∖ a = b, (a ⊕ b) ∖ b = a.
    assert_eq!(merged.delta_since(&a), b);
    assert_eq!(merged.delta_since(&b), a);
    // The zero element is neutral on both sides.
    let zero = QueryStats::default();
    assert_eq!(merged.delta_since(&zero), merged);
    let mut z = zero;
    z.merge(&merged);
    assert_eq!(z, merged);
}

#[test]
fn atomic_stats_roundtrip_and_lock_free_aggregation() {
    let graph = generators::hypercube(4);
    let mut engine = engine_for(&graph, 0.3, 77);
    for e in [EdgeId(0), EdgeId(3), EdgeId(7)] {
        for v in graph.vertices() {
            engine.dist_after_fault(v, e).expect("in range");
        }
    }
    let live = engine.query_stats();
    assert!(live.queries > 0);

    // store → snapshot is the identity on QueryStats values.
    let cell = AtomicQueryStats::new();
    assert_eq!(cell.snapshot(), QueryStats::default());
    cell.store(&live);
    assert_eq!(cell.snapshot(), live);

    // The Stats-op aggregation pattern: per-worker cells published by
    // worker threads, snapshotted and merged by a reader with no locks.
    let cells: Vec<AtomicQueryStats> = (0..4).map(|_| AtomicQueryStats::new()).collect();
    let cells = Arc::new(cells);
    let core = engine.core().clone();
    std::thread::scope(|scope| {
        for (w, cell) in cells.iter().enumerate() {
            let core = core.clone();
            let graph = &graph;
            scope.spawn(move || {
                let mut ctx = core.new_context();
                for v in graph.vertices() {
                    ctx.dist_after_fault(&core, v, EdgeId(w as u32))
                        .expect("in range");
                    cell.store(&ctx.stats());
                }
            });
        }
    });
    let mut total = QueryStats::default();
    for cell in cells.iter() {
        total.merge(&cell.snapshot());
    }
    assert_eq!(total.queries, 4 * graph.num_vertices());
    assert_eq!(total.tiers.total(), total.queries, "tiers sum to queries");
}
