use super::*;
use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::mbfs::try_build_ft_mbfs;
use ftb_graph::{generators, EdgeId, Graph, SubgraphView, VertexId};
use ftb_par::ParallelConfig;
use ftb_sp::{bfs_distances_view, UNREACHABLE};
use std::sync::Arc;

fn engine_for(graph: &Graph, eps: f64, seed: u64) -> FaultQueryEngine<'_> {
    let s = TradeoffBuilder::new(eps)
        .with_config(|c| c.with_seed(seed).serial())
        .build(graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    FaultQueryEngine::new(graph, s).expect("matching graph")
}

fn brute_force_from(graph: &Graph, s: VertexId, v: VertexId, e: EdgeId) -> Option<u32> {
    let view = SubgraphView::full(graph).without_edge(e);
    let d = bfs_distances_view(&view, s)[v.index()];
    if d == UNREACHABLE {
        None
    } else {
        Some(d)
    }
}

fn brute_force(graph: &Graph, v: VertexId, e: EdgeId) -> Option<u32> {
    brute_force_from(graph, VertexId(0), v, e)
}

#[test]
fn engine_core_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineCore>();
    assert_send_sync::<Arc<EngineCore>>();
    fn assert_send<T: Send>() {}
    assert_send::<QueryContext>();
}

#[test]
fn distances_match_brute_force_on_all_pairs() {
    for (name, graph) in [
        ("hypercube", generators::hypercube(3)),
        ("grid", generators::grid(4, 4)),
        ("clique_pendant", generators::clique_with_pendant(10)),
        ("cycle", generators::cycle(12)),
    ] {
        let mut engine = engine_for(&graph, 0.3, 7);
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let got = engine.dist_after_fault(v, e).expect("in range");
                let want = brute_force(&graph, v, e);
                assert_eq!(got, want, "{name}: vertex {v:?}, edge {e:?}");
            }
        }
    }
}

#[test]
fn paths_are_valid_witnesses_of_the_distances() {
    let graph = generators::grid(4, 5);
    let mut engine = engine_for(&graph, 0.25, 3);
    for e in graph.edge_ids() {
        for v in graph.vertices() {
            let d = engine.dist_after_fault(v, e).expect("in range");
            let p = engine.path_after_fault(v, e).expect("in range");
            match (d, p) {
                (None, None) => {}
                (Some(d), Some(p)) => {
                    assert_eq!(p.len() as u32, d, "path length mismatch at {v:?}/{e:?}");
                    assert_eq!(p.first(), VertexId(0));
                    assert_eq!(p.last(), v);
                    assert!(!p.contains_edge(e), "path uses the failed edge");
                    // consecutive vertices really are joined by the edges
                    for (i, &pe) in p.edges().iter().enumerate() {
                        let edge = graph.edge(pe);
                        let (a, b) = (p.vertices()[i], p.vertices()[i + 1]);
                        assert!(edge.is_incident(a) && edge.is_incident(b));
                    }
                }
                (d, p) => panic!("distance {d:?} but path {p:?}"),
            }
        }
    }
}

#[test]
fn batched_queries_match_single_queries() {
    let graph = generators::hypercube(4);
    let mut engine = engine_for(&graph, 0.3, 5);
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let batch = engine.query_many(&queries).expect("in range");
    let mut engine2 = engine_for(&graph, 0.3, 5);
    for (i, &(v, e)) in queries.iter().enumerate() {
        assert_eq!(batch[i], engine2.dist_after_fault(v, e).expect("in range"));
    }
    // grouping by edge keeps the number of sweeps at one per distinct
    // structure edge at most
    let stats = engine.query_stats();
    assert!(stats.structure_bfs_runs + stats.full_graph_bfs_runs <= graph.num_edges());
    assert_eq!(stats.queries, queries.len());
}

#[test]
fn sharded_and_serial_batches_are_identical() {
    let graph = generators::grid(6, 6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(9).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let mut serial =
        FaultQueryEngine::with_options(&graph, s.clone(), EngineOptions::new().serial())
            .expect("matching graph");
    let mut sharded = FaultQueryEngine::with_options(
        &graph,
        s,
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    let a = serial.query_many(&queries).expect("in range");
    let b = sharded.query_many(&queries).expect("in range");
    assert_eq!(a, b, "sharded batch diverged from the serial path");
    // Both paths account for every query in their counters.
    assert_eq!(serial.query_stats().queries, queries.len());
    assert_eq!(sharded.query_stats().queries, queries.len());
}

#[test]
fn repeated_edge_queries_hit_the_row_cache() {
    let graph = generators::grid(5, 5);
    let mut engine = engine_for(&graph, 0.3, 11);
    let e = *engine
        .structure()
        .edges()
        .collect::<Vec<_>>()
        .first()
        .expect("structure has edges");
    for v in graph.vertices() {
        engine.dist_after_fault(v, e).expect("in range");
    }
    let stats = engine.query_stats();
    assert!(stats.structure_bfs_runs + stats.full_graph_bfs_runs <= 1);
    assert!(stats.cached_answers >= graph.num_vertices() - 1);
}

#[test]
fn lru_capacity_bounds_recomputation() {
    let graph = generators::grid(5, 5);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(11).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let edges: Vec<EdgeId> = s.edges().take(3).collect();
    assert!(edges.len() >= 3, "structure too small for the LRU test");

    // Capacity 1 (the 0.2 one-row behaviour): a round-robin over three
    // failures evicts on every step, so every query repeats its BFS.
    let mut one = FaultQueryEngine::with_options(
        &graph,
        s.clone(),
        EngineOptions::new().with_lru_rows(1).serial(),
    )
    .expect("matching graph");
    for _ in 0..4 {
        for &e in &edges {
            one.dist_after_fault(VertexId(1), e).expect("in range");
        }
    }
    let one_runs = one.query_stats().structure_bfs_runs + one.query_stats().full_graph_bfs_runs;
    assert_eq!(one_runs, 12, "capacity 1 must recompute on every rotation");

    // Capacity 4: the working set fits, so each failure is searched once.
    let mut four =
        FaultQueryEngine::with_options(&graph, s, EngineOptions::new().with_lru_rows(4).serial())
            .expect("matching graph");
    for _ in 0..4 {
        for &e in &edges {
            four.dist_after_fault(VertexId(1), e).expect("in range");
        }
    }
    let four_runs = four.query_stats().structure_bfs_runs + four.query_stats().full_graph_bfs_runs;
    assert_eq!(four_runs, 3, "capacity 4 must keep the working set cached");
    assert_eq!(four.query_stats().cached_answers, 9);
}

#[test]
fn non_structure_edges_answer_from_the_fault_free_row() {
    let graph = generators::complete(8);
    let mut engine = engine_for(&graph, 0.3, 13);
    let outside = graph
        .edge_ids()
        .find(|&e| !engine.structure().contains_edge(e))
        .expect("K8 structure is sparse");
    let before = engine.query_stats();
    for v in graph.vertices() {
        let d = engine.dist_after_fault(v, outside).expect("in range");
        assert_eq!(d, engine.fault_free_dist(v).expect("in range"));
    }
    let after = engine.query_stats();
    assert_eq!(before.structure_bfs_runs, after.structure_bfs_runs);
    assert_eq!(before.full_graph_bfs_runs, after.full_graph_bfs_runs);
}

#[test]
fn out_of_range_queries_are_typed_errors() {
    let graph = generators::grid(3, 3);
    let mut engine = engine_for(&graph, 0.3, 1);
    assert!(matches!(
        engine.dist_after_fault(VertexId(99), EdgeId(0)),
        Err(FtbfsError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        engine.dist_after_fault(VertexId(0), EdgeId(999)),
        Err(FtbfsError::EdgeOutOfRange { .. })
    ));
    assert!(matches!(
        engine.path_after_fault(VertexId(99), EdgeId(0)),
        Err(FtbfsError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        engine.query_many(&[(VertexId(0), EdgeId(999))]),
        Err(FtbfsError::EdgeOutOfRange { .. })
    ));
}

#[test]
fn contexts_are_tied_to_their_core() {
    let g1 = generators::grid(3, 3);
    let g2 = generators::grid(3, 3);
    let build = |g: &Graph| {
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.serial())
            .build(g, &Sources::single(VertexId(0)))
            .expect("valid input");
        EngineCore::build(g, s).expect("matching graph")
    };
    let core1 = build(&g1);
    let core2 = build(&g2);
    let mut ctx1 = core1.new_context();
    assert!(ctx1
        .dist_after_fault(&core1, VertexId(1), EdgeId(0))
        .is_ok());
    assert_eq!(
        ctx1.dist_after_fault(&core2, VertexId(1), EdgeId(0)),
        Err(FtbfsError::ContextMismatch)
    );
    assert_eq!(
        ctx1.query_many(&core2, &[(VertexId(1), EdgeId(0))]),
        Err(FtbfsError::ContextMismatch)
    );
}

#[test]
fn mismatched_structure_is_rejected() {
    let g1 = generators::grid(3, 3);
    let g2 = generators::complete(6);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.serial())
        .build(&g1, &Sources::single(VertexId(0)))
        .expect("valid input");
    assert!(matches!(
        FaultQueryEngine::new(&g2, s),
        Err(FtbfsError::StructureMismatch { .. })
    ));
}

#[test]
fn mismatched_structure_with_equal_edge_count_is_rejected() {
    // complete(7) and cycle(21) both have 21 edges, so the capacity
    // check alone cannot tell them apart. The K7 structure is sparse
    // (far fewer than 21 edges), and any proper edge subset of a cycle
    // distorts distances, so the fault-free cross-check must fire.
    let k7 = generators::complete(7);
    let cycle = generators::cycle(21);
    assert_eq!(k7.num_edges(), cycle.num_edges());
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.serial())
        .build(&k7, &Sources::single(VertexId(0)))
        .expect("valid input");
    assert!(
        s.num_edges() < k7.num_edges(),
        "K7 structure must be sparse"
    );
    assert!(matches!(
        FaultQueryEngine::new(&cycle, s),
        Err(FtbfsError::FaultFreeDistanceMismatch { .. })
    ));
}

#[test]
fn disconnecting_failures_return_none() {
    let graph = generators::path(5);
    let mut engine = engine_for(&graph, 0.3, 2);
    let e = graph
        .find_edge(VertexId(1), VertexId(2))
        .expect("path edge");
    assert_eq!(
        engine.dist_after_fault(VertexId(4), e).expect("in range"),
        None
    );
    assert_eq!(
        engine.path_after_fault(VertexId(4), e).expect("in range"),
        None
    );
    assert_eq!(
        engine.dist_after_fault(VertexId(1), e).expect("in range"),
        Some(1)
    );
}

#[test]
fn reinforced_edge_fallback_is_exact() {
    // eps = 0 reinforces every tree edge, so every tree-edge query takes
    // the full-graph fallback; the answers must still be exact.
    let graph = generators::cycle(9);
    let s = crate::baseline::try_build_reinforced_tree(
        &graph,
        VertexId(0),
        &BuildConfig::new(0.0).serial(),
    )
    .expect("valid input");
    let mut engine = FaultQueryEngine::new(&graph, s).expect("matching graph");
    for e in graph.edge_ids() {
        for v in graph.vertices() {
            assert_eq!(
                engine.dist_after_fault(v, e).expect("in range"),
                brute_force(&graph, v, e)
            );
        }
    }
    assert!(engine.query_stats().full_graph_bfs_runs > 0);
}

#[test]
fn shared_core_serves_a_second_facade() {
    let graph = generators::grid(4, 4);
    let mut a = engine_for(&graph, 0.3, 21);
    let mut b = FaultQueryEngine::from_core(&graph, a.core().clone()).expect("same graph");
    for e in graph.edge_ids().take(6) {
        assert_eq!(
            a.dist_after_fault(VertexId(9), e).expect("in range"),
            b.dist_after_fault(VertexId(9), e).expect("in range"),
        );
    }
    let other = generators::complete(9);
    assert!(matches!(
        FaultQueryEngine::from_core(&other, a.core().clone()),
        Err(FtbfsError::CoreGraphMismatch { .. })
    ));
}

#[test]
fn multi_source_engine_is_exact_per_source() {
    let graph = generators::grid(5, 5);
    let sources = [VertexId(0), VertexId(12), VertexId(24)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.3).with_seed(3).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::new(&graph, m).expect("matching graph");
    assert_eq!(engine.sources(), &sources);
    for &s in &sources {
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let got = engine.dist_after_fault(s, v, e).expect("in range");
                let want = brute_force_from(&graph, s, v, e);
                assert_eq!(got, want, "source {s:?}, vertex {v:?}, edge {e:?}");
            }
        }
    }
}

#[test]
fn multi_source_batches_match_singles_and_check_sources() {
    let graph = generators::hypercube(4);
    let sources = [VertexId(0), VertexId(15)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.3).with_seed(5).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::with_options(
        &graph,
        m.clone(),
        EngineOptions::new().with_parallel(ParallelConfig::with_threads(4)),
    )
    .expect("matching graph");
    let mut queries: Vec<(VertexId, VertexId, EdgeId)> = Vec::new();
    for e in graph.edge_ids() {
        for &s in &sources {
            for v in graph.vertices() {
                queries.push((s, v, e));
            }
        }
    }
    let batch = engine.query_many(&queries).expect("in range");
    let mut single = MultiSourceEngine::new(&graph, m).expect("matching graph");
    for (i, &(s, v, e)) in queries.iter().enumerate() {
        assert_eq!(
            batch[i],
            single.dist_after_fault(s, v, e).expect("in range")
        );
    }
    assert_eq!(
        single.dist_after_fault(VertexId(7), VertexId(0), EdgeId(0)),
        Err(FtbfsError::SourceNotServed {
            source: VertexId(7)
        })
    );
    assert!(matches!(
        single.query_many(&[(VertexId(7), VertexId(0), EdgeId(0))]),
        Err(FtbfsError::SourceNotServed { .. })
    ));
}

#[test]
fn multi_source_paths_are_witnesses() {
    let graph = generators::grid(4, 4);
    let sources = [VertexId(0), VertexId(15)];
    let m = try_build_ft_mbfs(
        &graph,
        &sources,
        &BuildConfig::new(0.25).with_seed(7).serial(),
    )
    .expect("valid input");
    let mut engine = MultiSourceEngine::new(&graph, m).expect("matching graph");
    for &s in &sources {
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let d = engine.dist_after_fault(s, v, e).expect("in range");
                let p = engine.path_after_fault(s, v, e).expect("in range");
                match (d, p) {
                    (None, None) => {}
                    (Some(d), Some(p)) => {
                        assert_eq!(p.len() as u32, d);
                        assert_eq!(p.first(), s);
                        assert_eq!(p.last(), v);
                        assert!(!p.contains_edge(e));
                    }
                    (d, p) => panic!("distance {d:?} but path {p:?}"),
                }
            }
        }
    }
}

#[test]
fn concurrent_contexts_share_one_core() {
    // EngineCore owns its data, so Arc<EngineCore> moves into real spawned
    // threads; each thread gets its own context and must agree with the
    // serial engine on every answer.
    let graph = generators::grid(6, 5);
    let s = TradeoffBuilder::new(0.3)
        .with_config(|c| c.with_seed(31).serial())
        .build(&graph, &Sources::single(VertexId(0)))
        .expect("valid input");
    let core = Arc::new(EngineCore::build(&graph, s).expect("matching graph"));
    let queries: Vec<(VertexId, EdgeId)> = graph
        .edge_ids()
        .flat_map(|e| graph.vertices().map(move |v| (v, e)))
        .collect();
    let expected: Vec<Option<u32>> = {
        let mut ctx = core.new_context();
        queries
            .iter()
            .map(|&(v, e)| ctx.dist_after_fault(&core, v, e).expect("in range"))
            .collect()
    };
    let mut handles = Vec::new();
    for t in 0..4usize {
        let core = Arc::clone(&core);
        let queries = queries.clone();
        let expected = expected.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = core.new_context();
            // Different threads walk the batch from different offsets so the
            // LRU states genuinely diverge.
            let n = queries.len();
            for i in 0..n {
                let (v, e) = queries[(i + t * n / 4) % n];
                let got = ctx.dist_after_fault(&core, v, e).expect("in range");
                assert_eq!(got, expected[(i + t * n / 4) % n]);
            }
            ctx.stats().queries
        }));
    }
    for h in handles {
        assert_eq!(h.join().expect("worker panicked"), queries.len());
    }
}

#[test]
fn engine_options_from_build_config() {
    let cfg = BuildConfig::new(0.3).with_engine_lru_rows(5).serial();
    let opts = EngineOptions::from_build_config(&cfg);
    assert_eq!(opts.lru_rows, 5);
    assert!(opts.parallel.is_serial());
    assert_eq!(EngineOptions::new().with_lru_rows(0).lru_rows, 1);
    assert_eq!(
        EngineOptions::default().lru_rows,
        EngineOptions::DEFAULT_LRU_ROWS
    );
}
