//! The per-thread mutable half of the query engine: [`QueryContext`].

use super::core::EngineCore;
use super::obs::EngineObs;
use super::{bfs_sweep, finite, ParentEntry, QueryStats, SweepScratch, Tier, TierCounters};
use crate::error::FtbfsError;
use ftb_graph::{CompactSubgraph, EdgeId, Fault, FaultSet, VertexId};
use ftb_obs::Span;
use ftb_sp::{Path, TimestampedVector, UNREACHABLE};
use std::sync::Arc;
use std::time::Instant;

/// One cached post-failure BFS row, keyed by (source slot, fault set).
///
/// Rows are not tagged with their tier: routing is a pure function of the
/// fault set, so an LRU hit re-derives the same attribution the computing
/// query got.
#[derive(Clone, Debug)]
struct CachedRow {
    source_slot: u32,
    faults: FaultSet,
    dist: Vec<u32>,
    parent: Vec<Option<(VertexId, EdgeId)>>,
    /// Logical timestamp of the last hit (LRU eviction order).
    last_used: u64,
}

/// Where the distance row for the current query lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum RowSlot {
    /// The faults do not affect distances; use the core's fault-free row.
    FaultFree,
    /// The indexed LRU row holds the post-failure distances.
    Cached(usize),
}

/// [`RepairScratch::marks`] value: inside a failed subtree (entry reset,
/// distance to be recomputed by the bounded BFS).
const MARK_AFFECTED: u8 = 1;
/// [`RepairScratch::marks`] value: unaffected boundary vertex already
/// collected (seed dedup).
const MARK_BOUNDARY: u8 = 2;
/// [`RepairScratch::marks`] value: affected vertex *requested* by a
/// one-to-many query — the target-restricted sweep stops once every such
/// vertex is settled.
const MARK_TARGET: u8 = 3;

/// Crossover denominator of the target-restricted repair sweep: a
/// one-to-many cache miss runs restricted (settle only the requested
/// affected targets, skip the `O(n)` row materialisation, cache nothing)
/// when the requested targets cover at most `1/RESTRICTED_SWEEP_RATIO` of
/// the affected set, and falls back to the full repair (which amortises
/// across the whole target set *and* lands the row in the LRU) otherwise.
/// Measured with `exp_one_to_many` E12b (ErdosRenyi, n = 2000): per cache
/// miss the restricted sweep is ~3x cheaper than the full materialisation
/// at small `a`, and the gap closes as `a` approaches the affected-set
/// size; 8 keeps the restricted path for the clearly-winning band and
/// cedes the rest to the repair's cache-for-later effect.
const RESTRICTED_SWEEP_RATIO: usize = 8;

/// Largest one-to-many target count classified by the sort-then-sweep
/// interval walk ([`ftb_tree::covered_keys`]). Above it, sorting the keys
/// costs more than the classification itself, so each key binary-searches
/// the merged intervals directly (`O(t log |F|)`, no sort).
const SORTED_CLASSIFY_MAX_TARGETS: usize = 64;

/// Reusable state of the incremental row repair (all cleared in `O(1)` or
/// proportional to the previous repair's size — nothing here is `O(n)` per
/// miss).
#[derive(Clone, Debug)]
struct RepairScratch {
    /// `0` untouched, [`MARK_AFFECTED`], or [`MARK_BOUNDARY`];
    /// generation-stamped so clearing is an epoch bump.
    marks: TimestampedVector<u8>,
    /// Unaffected boundary vertices seeding the bounded BFS, keyed by their
    /// (unchanged) fault-free distance.
    seeds: Vec<(u32, VertexId)>,
    /// Unaffected endpoints of banned edges: their *adjacency* changed even
    /// though their distance did not, so only their canonical parent is
    /// recomputed.
    fixups: Vec<VertexId>,
    /// Merged preorder intervals of the affected subtrees (into the slot
    /// tree's order array).
    intervals: Vec<(u32, u32)>,
    /// Level-synchronous BFS frontiers.
    frontier: Vec<VertexId>,
    next: Vec<VertexId>,
    /// Post-failure distances of the *target-restricted* sweep, which
    /// settles requested affected targets without materialising a row;
    /// generation-stamped so each restricted sweep starts clean in `O(1)`.
    rdist: TimestampedVector<u32>,
}

impl RepairScratch {
    fn new(num_vertices: usize) -> Self {
        RepairScratch {
            marks: TimestampedVector::new(num_vertices, 0),
            seeds: Vec::new(),
            fixups: Vec::new(),
            intervals: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            rdist: TimestampedVector::new(num_vertices, UNREACHABLE),
        }
    }

    /// Repair `row_dist`/`row_parent` — pre-filled with the serving CSR's
    /// fault-free rows — in place, given the merged affected
    /// [`RepairScratch::intervals`] and the banned-edge endpoint
    /// [`RepairScratch::fixups`] already collected.
    ///
    /// `neighbors` must yield exactly the post-failure adjacency the full
    /// sweep would traverse (same order, same filters, parent-graph edge
    /// ids). Four bounded passes:
    ///
    /// 1. mark every vertex inside an affected interval,
    /// 2. reset their entries and collect the *unaffected boundary* (their
    ///    neighbors outside the region) as BFS seeds at fault-free depth,
    /// 3. run a level-synchronous BFS from the boundary that only ever
    ///    discovers affected vertices — unaffected distances are already
    ///    final, which is exactly why seeding them at `dist0` is sound,
    /// 4. recompute canonical parents (first adjacency neighbor one level
    ///    up, the same pure-function-of-distances rule the full sweep
    ///    applies) for every vertex whose distance or adjacency changed:
    ///    the affected region, the boundary, and the banned-edge endpoints.
    ///
    /// Total cost is `O(vol(affected) + boundary·deg)` — the full sweep's
    /// `O(n + m)` only in the degenerate all-affected case.
    fn repair_region<I, F>(
        &mut self,
        order: &[VertexId],
        dist0: &[u32],
        row_dist: &mut [u32],
        row_parent: &mut [ParentEntry],
        neighbors: F,
    ) where
        I: Iterator<Item = (VertexId, EdgeId)>,
        F: Fn(VertexId) -> I,
    {
        self.marks.reset();
        for &(a, b) in &self.intervals {
            for &v in &order[a as usize..b as usize] {
                self.marks.set(v.index(), MARK_AFFECTED);
            }
        }
        self.seeds.clear();
        for &(a, b) in &self.intervals {
            for &v in &order[a as usize..b as usize] {
                row_dist[v.index()] = UNREACHABLE;
                row_parent[v.index()] = None;
                for (w, _) in neighbors(v) {
                    if self.marks.get(w.index()) == 0 {
                        self.marks.set(w.index(), MARK_BOUNDARY);
                        if dist0[w.index()] != UNREACHABLE {
                            self.seeds.push((dist0[w.index()], w));
                        }
                    }
                }
            }
        }
        // Bounded multi-source BFS: seeds enter the frontier exactly at
        // their fault-free level (sound because every root-to-boundary
        // prefix of a post-failure shortest path can be replaced by the
        // boundary vertex's surviving tree path of length dist0).
        self.seeds.sort_unstable();
        self.frontier.clear();
        self.next.clear();
        let mut si = 0usize;
        let mut level = 0u32;
        while si < self.seeds.len() || !self.frontier.is_empty() {
            if self.frontier.is_empty() {
                level = level.max(self.seeds[si].0);
            }
            while si < self.seeds.len() && self.seeds[si].0 == level {
                self.frontier.push(self.seeds[si].1);
                si += 1;
            }
            for fi in 0..self.frontier.len() {
                let u = self.frontier[fi];
                for (w, _) in neighbors(u) {
                    if self.marks.get(w.index()) == MARK_AFFECTED
                        && row_dist[w.index()] == UNREACHABLE
                    {
                        row_dist[w.index()] = level + 1;
                        self.next.push(w);
                    }
                }
            }
            self.frontier.clear();
            std::mem::swap(&mut self.frontier, &mut self.next);
            level += 1;
        }
        // Canonical parents from the (now final) distances.
        for &(a, b) in &self.intervals {
            for &v in &order[a as usize..b as usize] {
                if row_dist[v.index()] != UNREACHABLE {
                    row_parent[v.index()] = canonical_parent(v, row_dist, &neighbors);
                }
            }
        }
        for &(_, u) in &self.seeds {
            row_parent[u.index()] = canonical_parent(u, row_dist, &neighbors);
        }
        for i in 0..self.fixups.len() {
            let v = self.fixups[i];
            if self.marks.get(v.index()) == 0 && row_dist[v.index()] != UNREACHABLE {
                row_parent[v.index()] = canonical_parent(v, row_dist, &neighbors);
            }
        }
    }

    /// Target-restricted repair sweep (the RPHAST-style restriction of
    /// [`RepairScratch::repair_region`]): compute post-failure distances for
    /// only the requested affected `targets`, without materialising a row.
    ///
    /// Same structure as the repair — mark the affected
    /// [`RepairScratch::intervals`], collect the unaffected boundary as
    /// seeds at fault-free depth, run the bounded level-synchronous BFS —
    /// except that nothing is copied or reset (`O(n)` memcpy avoided, no
    /// parent fixups) and the BFS **stops as soon as every marked target is
    /// settled**: a level-synchronous BFS distance is final at assignment,
    /// so the early exit cannot change any answer. Afterwards
    /// [`RepairScratch::rdist`] holds each target's post-failure distance
    /// (`UNREACHABLE` = disconnected).
    ///
    /// `neighbors` must yield exactly the post-failure adjacency the full
    /// sweep would traverse, so the settled distances are byte-identical to
    /// the distances a repaired (or fully swept) row would contain.
    fn restricted_sweep<I, F, T>(
        &mut self,
        order: &[VertexId],
        dist0: &[u32],
        targets: T,
        neighbors: F,
    ) where
        I: Iterator<Item = (VertexId, EdgeId)>,
        F: Fn(VertexId) -> I,
        T: Iterator<Item = VertexId>,
    {
        self.marks.reset();
        self.rdist.reset();
        for &(a, b) in &self.intervals {
            for &v in &order[a as usize..b as usize] {
                self.marks.set(v.index(), MARK_AFFECTED);
            }
        }
        let mut remaining = 0usize;
        for t in targets {
            // Duplicate targets are marked (and counted) once.
            if self.marks.get(t.index()) == MARK_AFFECTED {
                self.marks.set(t.index(), MARK_TARGET);
                remaining += 1;
            }
        }
        self.seeds.clear();
        for &(a, b) in &self.intervals {
            for &v in &order[a as usize..b as usize] {
                for (w, _) in neighbors(v) {
                    if self.marks.get(w.index()) == 0 {
                        self.marks.set(w.index(), MARK_BOUNDARY);
                        if dist0[w.index()] != UNREACHABLE {
                            self.seeds.push((dist0[w.index()], w));
                        }
                    }
                }
            }
        }
        self.seeds.sort_unstable();
        self.frontier.clear();
        self.next.clear();
        let mut si = 0usize;
        let mut level = 0u32;
        while remaining > 0 && (si < self.seeds.len() || !self.frontier.is_empty()) {
            if self.frontier.is_empty() {
                level = level.max(self.seeds[si].0);
            }
            while si < self.seeds.len() && self.seeds[si].0 == level {
                self.frontier.push(self.seeds[si].1);
                si += 1;
            }
            for fi in 0..self.frontier.len() {
                let u = self.frontier[fi];
                for (w, _) in neighbors(u) {
                    let mark = self.marks.get(w.index());
                    if mark >= MARK_AFFECTED
                        && mark != MARK_BOUNDARY
                        && self.rdist.get(w.index()) == UNREACHABLE
                    {
                        self.rdist.set(w.index(), level + 1);
                        if mark == MARK_TARGET {
                            remaining -= 1;
                        }
                        self.next.push(w);
                    }
                }
            }
            self.frontier.clear();
            std::mem::swap(&mut self.frontier, &mut self.next);
            level += 1;
        }
    }
}

/// The canonical-parent rule shared with [`bfs_sweep`]: the first neighbor
/// `(w, e)` in `v`'s (filtered) adjacency order with
/// `dist(w) + 1 == dist(v)` — a pure function of the final distance row, so
/// repaired and fully-swept rows agree byte for byte.
fn canonical_parent<I, F>(v: VertexId, dist: &[u32], neighbors: &F) -> ParentEntry
where
    I: Iterator<Item = (VertexId, EdgeId)>,
    F: Fn(VertexId) -> I,
{
    let d = dist[v.index()];
    if d == 0 || d == UNREACHABLE {
        return None;
    }
    neighbors(v).find(|&(w, _)| {
        let dw = dist[w.index()];
        dw != UNREACHABLE && dw + 1 == d
    })
}

/// Attribute one observed entry-point window across the tiers that
/// answered during it: each tier histogram receives `elapsed / total`
/// once per answer, so histogram sample counts always equal the
/// tier-counter deltas and the sums reconstruct the measured wall time
/// (up to integer division). A window answered *entirely* by the
/// unaffected fast path doubles as that stage's sample — the one stage
/// whose work is too small to bracket with its own clock reads.
fn record_tier_latency(obs: &EngineObs, delta: &TierCounters, elapsed: u64) {
    let total = delta.total() as u64;
    if total == 0 {
        return;
    }
    let per = elapsed / total;
    for (histogram, answers) in [
        (&obs.tier_fault_free_row, delta.fault_free_row),
        (&obs.tier_unaffected_fast_path, delta.unaffected_fast_path),
        (&obs.tier_batched_unaffected, delta.batched_unaffected),
        (&obs.tier_sparse_h_bfs, delta.sparse_h_bfs),
        (&obs.tier_augmented_bfs, delta.augmented_bfs),
        (&obs.tier_full_graph_bfs, delta.full_graph_bfs),
    ] {
        if answers > 0 {
            histogram.record_n(per, answers as u64);
        }
    }
    if delta.unaffected_fast_path as u64 == total {
        obs.stage_unaffected_fast_path.record(elapsed);
    }
}

/// Inline banned-edge probe for the augmented sweep. The coverage contract
/// admits at most [`FaultSet::INLINE_CAPACITY`] (= 2) simultaneous faults,
/// so membership is two register compares instead of a per-miss heap `Vec`
/// and a linear `contains` per neighbor.
#[derive(Clone, Copy, Debug)]
struct BannedEdges([Option<EdgeId>; FaultSet::INLINE_CAPACITY]);

impl BannedEdges {
    /// Translate the fault set's edges into compact ids of `csr` (edges
    /// outside the CSR need no banning — they are not traversed anyway).
    fn collect(faults: &FaultSet, csr: &CompactSubgraph) -> Self {
        let mut banned = [None; FaultSet::INLINE_CAPACITY];
        let mut n = 0usize;
        for e in faults.edges() {
            if let Some(ce) = csr.compact_edge(e) {
                assert!(
                    n < banned.len(),
                    "augmented coverage admits at most {} faults",
                    banned.len()
                );
                banned[n] = Some(ce);
                n += 1;
            }
        }
        BannedEdges(banned)
    }

    #[inline]
    fn contains(&self, ce: EdgeId) -> bool {
        // Two slots: the compiler unrolls this into two compares.
        self.0.contains(&Some(ce))
    }
}

/// Per-thread mutable query state: BFS scratch, visit queue, an LRU of
/// recently computed post-failure rows, and query counters.
///
/// Contexts are created by [`EngineCore::new_context`] and tied to that
/// core; every query method takes the core by shared reference, so an
/// `Arc<EngineCore>` plus one context per thread serves queries concurrently
/// with zero synchronisation. Using a context with a core it was not created
/// by is a [`FtbfsError::ContextMismatch`].
///
/// The LRU holds up to [`EngineOptions::lru_rows`](super::EngineOptions)
/// rows keyed by **fault set** (a single-edge query and its singleton-set
/// twin share one row); repeated and interleaved queries against that many
/// distinct failure patterns are answered without repeating a BFS.
#[derive(Clone, Debug)]
pub struct QueryContext {
    /// Token of the core this context was created by.
    core_token: u64,
    num_vertices: usize,
    capacity: usize,
    rows: Vec<CachedRow>,
    /// Full-sweep scratch: generation-stamped rows, so a miss never pays an
    /// `O(n)` fill before its search.
    scratch: SweepScratch,
    /// Incremental-repair scratch (marks, boundary seeds, frontiers).
    repair: RepairScratch,
    /// One-to-many scratch: `(preorder, input index)` keys of the requested
    /// targets, sorted by preorder number for the batched interval search.
    many_keys: Vec<(u32, u32)>,
    /// One-to-many scratch: input indices of the targets that fell inside
    /// an affected interval.
    many_affected: Vec<u32>,
    clock: u64,
    stats: QueryStats,
    /// Attached metric handles ([`QueryContext::attach_obs`]); `None` keeps
    /// every query path free of clock reads and atomic recording.
    obs: Option<Arc<EngineObs>>,
}

impl QueryContext {
    pub(super) fn for_core(core: &EngineCore) -> Self {
        let n = core.graph().num_vertices();
        QueryContext {
            core_token: core.token,
            num_vertices: n,
            capacity: core.options().lru_rows.max(1),
            rows: Vec::new(),
            scratch: SweepScratch::new(n),
            repair: RepairScratch::new(n),
            many_keys: Vec::new(),
            many_affected: Vec::new(),
            clock: 0,
            stats: QueryStats::default(),
            obs: None,
        }
    }

    /// Attach engine metric handles: subsequent queries through this
    /// context record per-tier latency histograms and per-stage timings
    /// while [`ftb_obs::sampling_enabled`] is on. See the
    /// [`EngineObs`] docs for the attribution model (entry-point windows,
    /// proportional per-tier samples, amortised stage spans).
    pub fn attach_obs(&mut self, obs: Arc<EngineObs>) {
        self.obs = Some(obs);
    }

    /// Run `f` inside an entry-point observation window: capture the tier
    /// counters before and after, read the clock once around the call, and
    /// attribute the elapsed time across the tiers that answered. A context
    /// without attached obs — or with sampling off — pays one branch.
    pub(super) fn with_tier_obs<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        if self.obs.is_none() || !ftb_obs::sampling_enabled() {
            return f(self);
        }
        let before = self.stats.tiers;
        let start = Instant::now();
        let out = f(self);
        let elapsed = start.elapsed().as_nanos() as u64;
        if let Some(obs) = &self.obs {
            record_tier_latency(obs, &self.stats.tiers.delta_since(&before), elapsed);
        }
        out
    }

    /// The attached obs handles, cloned, when sampling is on — the form the
    /// stage-span sites need (they run while `self` is mutably borrowed).
    fn stage_obs(&self) -> Option<Arc<EngineObs>> {
        if ftb_obs::sampling_enabled() {
            self.obs.clone()
        } else {
            None
        }
    }

    /// Query counters accumulated by this context.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Reset the query counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }

    pub(super) fn merge_stats(&mut self, other: &QueryStats) {
        self.stats.merge(other);
    }

    /// Fail unless this context was created by `core`.
    pub(super) fn check_core(&self, core: &EngineCore) -> Result<(), FtbfsError> {
        if self.core_token != core.token {
            return Err(FtbfsError::ContextMismatch);
        }
        Ok(())
    }

    /// Post-failure distance `dist(s, v, G ∖ {e})` from the primary source.
    ///
    /// Returns `Ok(None)` when the failure disconnects `v` from the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] / [`FtbfsError::EdgeOutOfRange`] for
    /// ids outside the core's graph, [`FtbfsError::ContextMismatch`] for a
    /// foreign core.
    pub fn dist_after_fault(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked(core, v, e)?;
        Ok(self.with_tier_obs(|ctx| ctx.answer_unchecked(core, 0, v, &FaultSet::from(e))))
    }

    /// Post-failure distance from an explicit source of a multi-source core.
    ///
    /// # Errors
    ///
    /// As [`QueryContext::dist_after_fault`], plus
    /// [`FtbfsError::SourceNotServed`] for a source the core was not built
    /// for.
    pub fn dist_after_fault_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked(core, v, e)?;
        let slot = core.source_slot(source)?;
        Ok(self.with_tier_obs(|ctx| ctx.answer_unchecked(core, slot, v, &FaultSet::from(e))))
    }

    /// Post-failure distance `dist(s, v, G ∖ F)` from the primary source,
    /// for an arbitrary fault set `F` of edges and vertices.
    ///
    /// Returns `Ok(None)` when the faults disconnect `v` from the source —
    /// in particular whenever `F` contains `v` itself or the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] for a bad query vertex,
    /// [`FtbfsError::InvalidFault`] / [`FtbfsError::FaultSetTooLarge`] for a
    /// bad fault set, [`FtbfsError::ContextMismatch`] for a foreign core.
    pub fn dist_after_faults(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        Ok(self.with_tier_obs(|ctx| ctx.answer_unchecked(core, 0, v, faults)))
    }

    /// Post-failure distance `dist(source, v, G ∖ F)` from an explicit
    /// source of a multi-source core.
    pub fn dist_after_faults_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        let slot = core.source_slot(source)?;
        Ok(self.with_tier_obs(|ctx| ctx.answer_unchecked(core, slot, v, faults)))
    }

    /// One-to-many post-failure distances `dist(s, v, G ∖ F)` from the
    /// primary source to every vertex in `targets`, in input order
    /// (duplicates allowed; `None` marks a disconnected target).
    ///
    /// The whole target set shares one classification and at most one
    /// search: targets are sorted by Euler-tour preorder number and
    /// binary-searched against the merged affected intervals of `F` —
    /// `O(|F| log t + t)` instead of `t` independent `O(|F|)` probes —
    /// and every provably-unaffected target is answered straight from the
    /// fault-free row ([`TierCounters::batched_unaffected`](super::TierCounters)).
    /// When only a few targets are affected, a *target-restricted* repair
    /// sweep settles exactly those ([`QueryStats::restricted_repairs`]);
    /// dense affected sets fall back to one ordinary row
    /// materialisation that amortises across all of them. Results are
    /// byte-identical to `targets.len()` separate
    /// [`QueryContext::dist_after_faults`] calls.
    ///
    /// Counts `targets.len()` queries. Errors as
    /// [`QueryContext::dist_after_faults`].
    pub fn dist_many_after_faults(
        &mut self,
        core: &EngineCore,
        targets: &[VertexId],
        faults: &FaultSet,
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.checked_many(core, targets, faults)?;
        Ok(self.with_tier_obs(|ctx| ctx.dist_many_unchecked(core, 0, targets, faults)))
    }

    /// One-to-many post-failure distances from an explicit source of a
    /// multi-source core. Errors as
    /// [`QueryContext::dist_many_after_faults`], plus
    /// [`FtbfsError::SourceNotServed`] for a source the core was not built
    /// for.
    pub fn dist_many_after_faults_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        targets: &[VertexId],
        faults: &FaultSet,
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.checked_many(core, targets, faults)?;
        let slot = core.source_slot(source)?;
        Ok(self.with_tier_obs(|ctx| ctx.dist_many_unchecked(core, slot, targets, faults)))
    }

    /// A concrete post-failure shortest path from the primary source to `v`
    /// in `G ∖ {e}`, or `Ok(None)` when the failure disconnects `v`.
    ///
    /// The path runs inside `H ∖ {e}` except for the hypothetical failure of
    /// a reinforced edge, where it runs inside `G ∖ {e}` (see the module
    /// docs). Path extraction allocates the returned [`Path`]; the search
    /// itself reuses the context's scratch state.
    pub fn path_after_fault(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked(core, v, e)?;
        Ok(self.with_tier_obs(|ctx| ctx.path_unchecked(core, 0, v, &FaultSet::from(e))))
    }

    /// Post-failure path from an explicit source of a multi-source core.
    pub fn path_after_fault_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked(core, v, e)?;
        let slot = core.source_slot(source)?;
        Ok(self.with_tier_obs(|ctx| ctx.path_unchecked(core, slot, v, &FaultSet::from(e))))
    }

    /// A concrete post-failure shortest path from the primary source to `v`
    /// in `G ∖ F`, avoiding every failed edge and vertex, or `Ok(None)` when
    /// the faults disconnect `v`. Errors as
    /// [`QueryContext::dist_after_faults`].
    pub fn path_after_faults(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        Ok(self.with_tier_obs(|ctx| ctx.path_unchecked(core, 0, v, faults)))
    }

    /// Post-failure path under a fault set from an explicit source of a
    /// multi-source core.
    pub fn path_after_faults_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        let slot = core.source_slot(source)?;
        Ok(self.with_tier_obs(|ctx| ctx.path_unchecked(core, slot, v, faults)))
    }

    /// Answer a batch of `(vertex, failing edge)` queries against the
    /// primary source, on the calling thread.
    ///
    /// The batch is grouped by failing edge internally, so each distinct
    /// failure triggers at most one BFS regardless of how many vertices are
    /// probed against it. Results are returned in input order; `None` marks
    /// a disconnected vertex. (The facades' `query_many` additionally shards
    /// edge-groups across threads; a context is the single-thread
    /// primitive.)
    pub fn query_many(
        &mut self,
        core: &EngineCore,
        queries: &[(VertexId, EdgeId)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.check_core(core)?;
        for &(v, e) in queries {
            core.check_vertex(v)?;
            core.check_edge(e)?;
        }
        let fault_sets: Vec<FaultSet> = queries.iter().map(|&(_, e)| FaultSet::from(e)).collect();
        // Same grouping/answering code as the facades, pinned to the calling
        // thread — a context is per-thread by contract.
        self.with_tier_obs(|ctx| {
            super::facade::query_many_sharded(
                core,
                ctx,
                &ftb_par::ParallelConfig::serial(),
                queries.len(),
                |i| (0, queries[i].0, &fault_sets[i]),
            )
        })
    }

    /// Answer a batch of `(vertex, fault set)` queries against the primary
    /// source, on the calling thread. Grouped by fault set like
    /// [`QueryContext::query_many`].
    pub fn query_many_faults(
        &mut self,
        core: &EngineCore,
        queries: &[(VertexId, FaultSet)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.check_core(core)?;
        for (v, faults) in queries {
            core.check_vertex(*v)?;
            core.check_fault_set(faults)?;
        }
        self.with_tier_obs(|ctx| {
            super::facade::query_many_sharded(
                core,
                ctx,
                &ftb_par::ParallelConfig::serial(),
                queries.len(),
                |i| (0, queries[i].0, &queries[i].1),
            )
        })
    }

    fn checked(&self, core: &EngineCore, v: VertexId, e: EdgeId) -> Result<(), FtbfsError> {
        self.check_core(core)?;
        core.check_vertex(v)?;
        core.check_edge(e)?;
        Ok(())
    }

    fn checked_faults(
        &self,
        core: &EngineCore,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<(), FtbfsError> {
        self.check_core(core)?;
        core.check_vertex(v)?;
        core.check_fault_set(faults)?;
        Ok(())
    }

    fn checked_many(
        &self,
        core: &EngineCore,
        targets: &[VertexId],
        faults: &FaultSet,
    ) -> Result<(), FtbfsError> {
        self.check_core(core)?;
        for &v in targets {
            core.check_vertex(v)?;
        }
        core.check_fault_set(faults)?;
        Ok(())
    }

    /// Distance answer with validation already done (shared by the single
    /// query paths and the facades' batch shards). Counts one query.
    ///
    /// Targeted queries get the **unaffected fast path**: when the target's
    /// canonical tree path provably avoids every failed element, the
    /// fault-free row answers in `O(|F|)` — no BFS, no row, no LRU traffic
    /// (observable as [`TierCounters::unaffected_fast_path`](super::TierCounters)).
    pub(super) fn answer_unchecked(
        &mut self,
        core: &EngineCore,
        slot: usize,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<u32> {
        self.stats.queries += 1;
        let tier = core.route(faults);
        if tier != Tier::FaultFree
            && !core.options().force_full_sweep
            && core.target_unaffected(slot, v, faults)
        {
            self.stats.tiers.unaffected_fast_path += 1;
            self.stats.cached_answers += 1;
            return core.fault_free_dist_slot(slot, v);
        }
        let row = self.ensure_row(core, slot, faults, tier);
        let (dist, _) = self.row(core, slot, row);
        finite(dist[v.index()])
    }

    /// One-to-many answer with validation already done (shared by the
    /// public entry points, the facades and the server's batch grouping).
    /// Counts `targets.len()` queries; results are in input order.
    ///
    /// Under [`EngineOptions::force_full_sweep`](super::EngineOptions) the
    /// batch degrades to per-target [`QueryContext::answer_unchecked`]
    /// calls, so differential runs compare like with like.
    pub(super) fn dist_many_unchecked(
        &mut self,
        core: &EngineCore,
        slot: usize,
        targets: &[VertexId],
        faults: &FaultSet,
    ) -> Vec<Option<u32>> {
        if core.options().force_full_sweep {
            return targets
                .iter()
                .map(|&v| self.answer_unchecked(core, slot, v, faults))
                .collect();
        }
        self.stats.queries += targets.len();
        let tier = core.route(faults);
        if tier == Tier::FaultFree {
            // Every fault is an edge outside H: the fault-free row answers
            // the whole batch.
            self.count_tier_many(Tier::FaultFree, targets.len());
            self.stats.cached_answers += targets.len();
            let (dist0, _) = core.fault_free_row(slot);
            return targets.iter().map(|&v| finite(dist0[v.index()])).collect();
        }
        // An LRU hit answers every target from the cached row, exactly as
        // the per-target path would.
        let key_slot = slot as u32;
        if let Some(i) = self
            .rows
            .iter()
            .position(|r| r.source_slot == key_slot && r.faults == *faults)
        {
            self.clock += 1;
            self.rows[i].last_used = self.clock;
            self.count_tier_many(tier, targets.len());
            self.stats.cached_answers += targets.len();
            let dist = &self.rows[i].dist;
            return targets.iter().map(|&v| finite(dist[v.index()])).collect();
        }
        // Stage spans (classification / restricted sweep) only arm when
        // obs is attached and sampling is on; they nest inside the
        // entry-point window, keeping stage sums within the wall time.
        let obs = self.stage_obs();
        let classify_span = obs.as_ref().map(|o| Span::enter(&o.stage_classify));
        // Batched unaffected classification against the merged affected
        // intervals — never an `O(|F|)` ancestor probe per target. Sparse
        // frames sort the targets by preorder number once and sweep the
        // intervals over the sorted keys (`O(|F| log t + t)`); dense frames
        // skip the `O(t log t)` sort (which would dominate the whole batch)
        // and binary-search each key over the `O(|F|)` intervals instead
        // (`O(t log |F|)`). Both classify identically.
        let affected_size = core.affected_intervals(slot, faults, &mut self.repair.intervals);
        let euler = &core.slot_tree(slot).euler;
        let mut keys = std::mem::take(&mut self.many_keys);
        let mut affected = std::mem::take(&mut self.many_affected);
        keys.clear();
        affected.clear();
        for (i, &v) in targets.iter().enumerate() {
            // Out-of-tree targets have no preorder number; they are
            // unaffected (unreachable with or without the faults).
            if let Some(t) = euler.preorder(v) {
                keys.push((t, i as u32));
            }
        }
        if keys.len() <= SORTED_CLASSIFY_MAX_TARGETS {
            keys.sort_unstable();
            ftb_tree::covered_keys(&self.repair.intervals, &keys, |i| affected.push(i));
        } else {
            let intervals = &self.repair.intervals;
            for &(t, i) in keys.iter() {
                let idx = intervals.partition_point(|&(_, end)| end <= t);
                if idx < intervals.len() && intervals[idx].0 <= t {
                    affected.push(i);
                }
            }
        }
        drop(classify_span);

        // Unaffected targets read the fault-free row; affected ones are
        // overwritten below.
        let (dist0, _) = core.fault_free_row(slot);
        let mut out: Vec<Option<u32>> = targets.iter().map(|&v| finite(dist0[v.index()])).collect();
        let unaffected = targets.len() - affected.len();
        self.stats.tiers.batched_unaffected += unaffected;
        self.stats.cached_answers += unaffected;
        if affected.is_empty() {
            // Every target provably unaffected: the whole batch ran zero
            // searches (the counter proof the one_to_many suite asserts).
            self.many_keys = keys;
            self.many_affected = affected;
            return out;
        }
        let source = core.sources()[slot];
        let restricted = affected.len() * RESTRICTED_SWEEP_RATIO <= affected_size
            && !faults.contains(Fault::Vertex(source));
        if restricted {
            // Few targets inside a large affected set: settle exactly the
            // requested ones, skip the row materialisation, cache nothing.
            self.count_tier_many(tier, affected.len());
            self.stats.restricted_repairs += 1;
            let sweep_span = obs.as_ref().map(|o| Span::enter(&o.stage_restricted_sweep));
            let order = core.slot_tree(slot).euler.order();
            let wanted = affected.iter().map(|&i| targets[i as usize]);
            match tier {
                Tier::SparseH => {
                    let e = faults.as_single_edge().expect("SparseH is single-edge");
                    let h = &core.h;
                    let banned_compact = h.compact_edge(e);
                    let neighbors = |u: VertexId| {
                        h.graph()
                            .neighbors(u)
                            .filter(move |&(_, he)| Some(he) != banned_compact)
                            .map(|(w, he)| (w, h.parent_edge(he)))
                    };
                    self.repair
                        .restricted_sweep(order, dist0, wanted, neighbors);
                    self.stats.structure_bfs_runs += 1;
                }
                Tier::Augmented => {
                    let banned = faults.as_slice();
                    let aug = core.aug.as_ref().expect("Augmented tier has a CSR");
                    let csr = &aug.csr;
                    let banned_compact = BannedEdges::collect(faults, csr);
                    let neighbors = |u: VertexId| {
                        csr.graph()
                            .neighbors(u)
                            .filter(move |&(w, ce)| {
                                !banned_compact.contains(ce) && !banned.contains(&Fault::Vertex(w))
                            })
                            .map(|(w, ce)| (w, csr.parent_edge(ce)))
                    };
                    self.repair
                        .restricted_sweep(order, dist0, wanted, neighbors);
                    self.stats.augmented_bfs_runs += 1;
                }
                Tier::FullGraph => {
                    let banned = faults.as_slice();
                    let graph = core.graph();
                    let neighbors = |u: VertexId| {
                        graph.neighbors(u).filter(move |&(w, ge)| {
                            !banned.contains(&Fault::Edge(ge))
                                && !banned.contains(&Fault::Vertex(w))
                        })
                    };
                    self.repair
                        .restricted_sweep(order, dist0, wanted, neighbors);
                    self.stats.full_graph_bfs_runs += 1;
                }
                Tier::FaultFree => unreachable!("handled above"),
            }
            drop(sweep_span);
            for &i in &affected {
                let v = targets[i as usize];
                out[i as usize] = finite(self.repair.rdist.get(v.index()));
            }
        } else {
            // Dense affected set: one ordinary row materialisation (repair
            // or full sweep) amortises across every affected target and
            // lands in the LRU for the next batch. `ensure_row` attributes
            // one query to the tier; the remaining affected targets read
            // the just-computed row like cache hits.
            let row = self.ensure_row(core, slot, faults, tier);
            self.count_tier_many(tier, affected.len() - 1);
            self.stats.cached_answers += affected.len() - 1;
            let (dist, _) = self.row(core, slot, row);
            for &i in &affected {
                out[i as usize] = finite(dist[targets[i as usize].index()]);
            }
        }
        self.many_keys = keys;
        self.many_affected = affected;
        out
    }

    /// Path answer with validation already done. Counts one query.
    ///
    /// When the target's whole root-to-target parent chain is provably
    /// unaffected, the path is extracted straight from the tier's
    /// fault-free parent row without any search (counted as
    /// [`TierCounters::unaffected_fast_path`](super::TierCounters)); any
    /// chain that might detour through affected vertices falls back to a
    /// materialized row.
    pub(super) fn path_unchecked(
        &mut self,
        core: &EngineCore,
        slot: usize,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<Path> {
        self.stats.queries += 1;
        let tier = core.route(faults);
        if tier != Tier::FaultFree && !core.options().force_full_sweep {
            if let Some(answer) = self.try_unaffected_path(core, slot, v, faults, tier) {
                return answer;
            }
        }
        let row = self.ensure_row(core, slot, faults, tier);
        let (dist, parent) = self.row(core, slot, row);
        if dist[v.index()] == UNREACHABLE {
            return None;
        }
        let mut vertices = vec![v];
        let mut edges = Vec::new();
        let mut cursor = v;
        while let Some((p, pe)) = parent[cursor.index()] {
            vertices.push(p);
            edges.push(pe);
            cursor = p;
        }
        vertices.reverse();
        edges.reverse();
        Some(Path::new(vertices, edges))
    }

    /// The path flavour of the unaffected fast path: extract the chain from
    /// the tier's canonical fault-free parent row, verifying link by link
    /// that it survives `faults` byte-identically. Returns `None` to fall
    /// back to the materialized-row path (which recomputes the answer), or
    /// `Some(answer)` when the chain is provably stable.
    ///
    /// Soundness: for an unaffected vertex `u` with fault-free canonical
    /// parent `p` over the tier's adjacency, the post-failure canonical
    /// parent is still `p` whenever `p` is unaffected and the connecting
    /// edge is not failed: neighbor distances only grow under faults, and a
    /// neighbor earlier in adjacency order was not one level up fault-free
    /// (else it would be canonical), so it can never *become* one level up;
    /// removing banned entries never changes the first surviving match.
    /// Induction down the chain makes the whole extracted path equal the
    /// materialized row's.
    fn try_unaffected_path(
        &mut self,
        core: &EngineCore,
        slot: usize,
        v: VertexId,
        faults: &FaultSet,
        tier: Tier,
    ) -> Option<Option<Path>> {
        if !core.target_unaffected(slot, v, faults) {
            return None;
        }
        let (dist0, _) = core.fault_free_row(slot);
        if dist0[v.index()] == UNREACHABLE {
            // Unaffected and fault-free-unreachable: faults cannot create
            // connectivity, so the target stays unreachable.
            self.stats.tiers.unaffected_fast_path += 1;
            self.stats.cached_answers += 1;
            return Some(None);
        }
        let parent0 = core.tier_parent_row(slot, tier);
        let mut vertices = vec![v];
        let mut edges = Vec::new();
        let mut cursor = v;
        while let Some((p, pe)) = parent0[cursor.index()] {
            if faults.contains_edge(pe) || !core.target_unaffected(slot, p, faults) {
                return None;
            }
            vertices.push(p);
            edges.push(pe);
            cursor = p;
        }
        self.stats.tiers.unaffected_fast_path += 1;
        self.stats.cached_answers += 1;
        vertices.reverse();
        edges.reverse();
        Some(Some(Path::new(vertices, edges)))
    }

    /// Borrow the rows a [`RowSlot`] refers to.
    fn row<'a>(&'a self, core: &'a EngineCore, slot: usize, row: RowSlot) -> super::RowRefs<'a> {
        match row {
            RowSlot::FaultFree => core.fault_free_row(slot),
            RowSlot::Cached(i) => (&self.rows[i].dist, &self.rows[i].parent),
        }
    }

    /// Make the distance row for fault set `faults` (as seen from source
    /// slot `slot`, routed to `tier` by the caller) available and report
    /// where it lives.
    ///
    /// Every call attributes the query to exactly one routing tier (see
    /// [`TierCounters`](super::TierCounters)); the per-CSR sweep counters
    /// only move when a search actually runs. A cache miss on the
    /// `sparse_h_bfs` / `augmented_bfs` tiers takes the **incremental
    /// repair** path (unless [`EngineOptions::force_full_sweep`](super::EngineOptions)):
    /// the row starts as a copy of the tier's fault-free rows, only the
    /// affected subtrees are re-swept by a bounded BFS seeded from their
    /// unaffected boundary, and canonical parents are patched where the
    /// distances or the adjacency changed — byte-identical to the full
    /// sweep, at a fraction of its cost.
    fn ensure_row(
        &mut self,
        core: &EngineCore,
        slot: usize,
        faults: &FaultSet,
        tier: Tier,
    ) -> RowSlot {
        self.count_tier(tier);
        if tier == Tier::FaultFree {
            // Every fault is an edge outside H: T0 ⊆ H survives and the
            // distances are unchanged.
            self.stats.cached_answers += 1;
            return RowSlot::FaultFree;
        }
        self.clock += 1;
        let key_slot = slot as u32;
        if let Some(i) = self
            .rows
            .iter()
            .position(|r| r.source_slot == key_slot && r.faults == *faults)
        {
            self.rows[i].last_used = self.clock;
            self.stats.cached_answers += 1;
            return RowSlot::Cached(i);
        }
        // Miss: pick a row to (re)compute into — a fresh one while below
        // capacity, otherwise evict the least recently used.
        let i = if self.rows.len() < self.capacity {
            self.rows.push(CachedRow {
                source_slot: key_slot,
                faults: faults.clone(),
                dist: vec![UNREACHABLE; self.num_vertices],
                parent: vec![None; self.num_vertices],
                last_used: 0,
            });
            self.rows.len() - 1
        } else {
            (0..self.rows.len())
                .min_by_key(|&j| self.rows[j].last_used)
                .expect("capacity >= 1")
        };
        let source = core.sources()[slot];
        let obs = self.stage_obs();
        let row = &mut self.rows[i];
        let repairable = !core.options().force_full_sweep;
        // The banned-element filters below scan the canonical fault slice:
        // at most `max_faults` entries, so membership is a short linear
        // scan, cheaper than any hashing at these sizes.
        let banned = faults.as_slice();
        if banned.contains(&Fault::Vertex(source)) {
            // The source itself failed: nothing is reachable (matching
            // `bfs_distances_view` over a masked source). No search runs,
            // so no sweep is counted.
            row.dist.fill(UNREACHABLE);
            row.parent.fill(None);
        } else {
            match tier {
                Tier::SparseH => {
                    // The seed paper's regime: one non-reinforced structure
                    // edge. The FT-BFS guarantee makes a BFS over the
                    // compact CSR of H ∖ {e} exact.
                    let e = faults.as_single_edge().expect("SparseH is single-edge");
                    let h = &core.h;
                    let banned_compact = h.compact_edge(e);
                    let neighbors = |u: VertexId| {
                        h.graph()
                            .neighbors(u)
                            .filter(move |&(_, he)| Some(he) != banned_compact)
                            .map(|(w, he)| (w, h.parent_edge(he)))
                    };
                    if repairable {
                        let (dist0, parent0) = core.fault_free_row(slot);
                        core.affected_intervals(slot, faults, &mut self.repair.intervals);
                        self.repair.fixups.clear();
                        if h.contains_parent_edge(e) {
                            let edge = core.graph().edge(e);
                            self.repair.fixups.push(edge.u);
                            self.repair.fixups.push(edge.v);
                        }
                        row.dist.copy_from_slice(dist0);
                        row.parent.copy_from_slice(parent0);
                        let span = obs.as_ref().map(|o| Span::enter(&o.stage_row_repair));
                        self.repair.repair_region(
                            core.slot_tree(slot).euler.order(),
                            dist0,
                            &mut row.dist,
                            &mut row.parent,
                            neighbors,
                        );
                        drop(span);
                        self.stats.repaired_rows += 1;
                    } else {
                        let span = obs.as_ref().map(|o| Span::enter(&o.stage_full_sweep));
                        bfs_sweep(source, &mut self.scratch, neighbors);
                        self.scratch.materialize(&mut row.dist, &mut row.parent);
                        drop(span);
                    }
                    self.stats.structure_bfs_runs += 1;
                }
                Tier::Augmented => {
                    // The fault set is inside the augmented structure's
                    // coverage: a BFS over H⁺ ∖ F is exact by the
                    // replacement-path construction (see `crate::ftbfs`).
                    // The ≤ 2 banned edges are translated to compact ids
                    // once into an inline probe, so the sweep compares
                    // compact ids directly and only translates the edges it
                    // records as parents.
                    let aug = core.aug.as_ref().expect("Augmented tier has a CSR");
                    let csr = &aug.csr;
                    let banned_compact = BannedEdges::collect(faults, csr);
                    let neighbors = |u: VertexId| {
                        csr.graph()
                            .neighbors(u)
                            .filter(move |&(w, ce)| {
                                !banned_compact.contains(ce) && !banned.contains(&Fault::Vertex(w))
                            })
                            .map(|(w, ce)| (w, csr.parent_edge(ce)))
                    };
                    if repairable {
                        let (dist0, _) = core.fault_free_row(slot);
                        let parent0 = &aug.fault_free_parent[slot];
                        core.affected_intervals(slot, faults, &mut self.repair.intervals);
                        self.repair.fixups.clear();
                        for e in faults.edges().filter(|&e| csr.contains_parent_edge(e)) {
                            let edge = core.graph().edge(e);
                            self.repair.fixups.push(edge.u);
                            self.repair.fixups.push(edge.v);
                        }
                        row.dist.copy_from_slice(dist0);
                        row.parent.copy_from_slice(parent0);
                        let span = obs.as_ref().map(|o| Span::enter(&o.stage_row_repair));
                        self.repair.repair_region(
                            core.slot_tree(slot).euler.order(),
                            dist0,
                            &mut row.dist,
                            &mut row.parent,
                            neighbors,
                        );
                        drop(span);
                        self.stats.repaired_rows += 1;
                    } else {
                        let span = obs.as_ref().map(|o| Span::enter(&o.stage_full_sweep));
                        bfs_sweep(source, &mut self.scratch, neighbors);
                        self.scratch.materialize(&mut row.dist, &mut row.parent);
                        drop(span);
                    }
                    self.stats.augmented_bfs_runs += 1;
                }
                Tier::FullGraph => {
                    // Everything beyond the sparse guarantees stays exact
                    // with one BFS over the full graph G ∖ F.
                    let graph = core.graph();
                    let span = obs.as_ref().map(|o| Span::enter(&o.stage_full_sweep));
                    bfs_sweep(source, &mut self.scratch, |u| {
                        graph.neighbors(u).filter(move |&(w, ge)| {
                            !banned.contains(&Fault::Edge(ge))
                                && !banned.contains(&Fault::Vertex(w))
                        })
                    });
                    self.scratch.materialize(&mut row.dist, &mut row.parent);
                    drop(span);
                    self.stats.full_graph_bfs_runs += 1;
                }
                Tier::FaultFree => unreachable!("handled above"),
            }
        }
        let row = &mut self.rows[i];
        row.source_slot = key_slot;
        row.faults = faults.clone();
        row.last_used = self.clock;
        RowSlot::Cached(i)
    }

    fn count_tier(&mut self, tier: Tier) {
        self.count_tier_many(tier, 1);
    }

    fn count_tier_many(&mut self, tier: Tier, n: usize) {
        match tier {
            Tier::FaultFree => self.stats.tiers.fault_free_row += n,
            Tier::SparseH => self.stats.tiers.sparse_h_bfs += n,
            Tier::Augmented => self.stats.tiers.augmented_bfs += n,
            Tier::FullGraph => self.stats.tiers.full_graph_bfs += n,
        }
    }
}
