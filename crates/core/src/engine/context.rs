//! The per-thread mutable half of the query engine: [`QueryContext`].

use super::core::EngineCore;
use super::{bfs_sweep, finite, QueryStats, Tier};
use crate::error::FtbfsError;
use ftb_graph::{EdgeId, Fault, FaultSet, VertexId};
use ftb_sp::{Path, UNREACHABLE};
use std::collections::VecDeque;

/// One cached post-failure BFS row, keyed by (source slot, fault set).
///
/// Rows are not tagged with their tier: routing is a pure function of the
/// fault set, so an LRU hit re-derives the same attribution the computing
/// query got.
#[derive(Clone, Debug)]
struct CachedRow {
    source_slot: u32,
    faults: FaultSet,
    dist: Vec<u32>,
    parent: Vec<Option<(VertexId, EdgeId)>>,
    /// Logical timestamp of the last hit (LRU eviction order).
    last_used: u64,
}

/// Where the distance row for the current query lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum RowSlot {
    /// The faults do not affect distances; use the core's fault-free row.
    FaultFree,
    /// The indexed LRU row holds the post-failure distances.
    Cached(usize),
}

/// Per-thread mutable query state: BFS scratch, visit queue, an LRU of
/// recently computed post-failure rows, and query counters.
///
/// Contexts are created by [`EngineCore::new_context`] and tied to that
/// core; every query method takes the core by shared reference, so an
/// `Arc<EngineCore>` plus one context per thread serves queries concurrently
/// with zero synchronisation. Using a context with a core it was not created
/// by is a [`FtbfsError::ContextMismatch`].
///
/// The LRU holds up to [`EngineOptions::lru_rows`](super::EngineOptions)
/// rows keyed by **fault set** (a single-edge query and its singleton-set
/// twin share one row); repeated and interleaved queries against that many
/// distinct failure patterns are answered without repeating a BFS.
#[derive(Clone, Debug)]
pub struct QueryContext {
    /// Token of the core this context was created by.
    core_token: u64,
    num_vertices: usize,
    capacity: usize,
    rows: Vec<CachedRow>,
    queue: VecDeque<VertexId>,
    clock: u64,
    stats: QueryStats,
}

impl QueryContext {
    pub(super) fn for_core(core: &EngineCore) -> Self {
        QueryContext {
            core_token: core.token,
            num_vertices: core.graph().num_vertices(),
            capacity: core.options().lru_rows.max(1),
            rows: Vec::new(),
            queue: VecDeque::with_capacity(core.graph().num_vertices()),
            clock: 0,
            stats: QueryStats::default(),
        }
    }

    /// Query counters accumulated by this context.
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Reset the query counters to zero.
    pub fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }

    pub(super) fn merge_stats(&mut self, other: &QueryStats) {
        self.stats.merge(other);
    }

    /// Fail unless this context was created by `core`.
    pub(super) fn check_core(&self, core: &EngineCore) -> Result<(), FtbfsError> {
        if self.core_token != core.token {
            return Err(FtbfsError::ContextMismatch);
        }
        Ok(())
    }

    /// Post-failure distance `dist(s, v, G ∖ {e})` from the primary source.
    ///
    /// Returns `Ok(None)` when the failure disconnects `v` from the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] / [`FtbfsError::EdgeOutOfRange`] for
    /// ids outside the core's graph, [`FtbfsError::ContextMismatch`] for a
    /// foreign core.
    pub fn dist_after_fault(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked(core, v, e)?;
        Ok(self.answer_unchecked(core, 0, v, &FaultSet::from(e)))
    }

    /// Post-failure distance from an explicit source of a multi-source core.
    ///
    /// # Errors
    ///
    /// As [`QueryContext::dist_after_fault`], plus
    /// [`FtbfsError::SourceNotServed`] for a source the core was not built
    /// for.
    pub fn dist_after_fault_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked(core, v, e)?;
        let slot = core.source_slot(source)?;
        Ok(self.answer_unchecked(core, slot, v, &FaultSet::from(e)))
    }

    /// Post-failure distance `dist(s, v, G ∖ F)` from the primary source,
    /// for an arbitrary fault set `F` of edges and vertices.
    ///
    /// Returns `Ok(None)` when the faults disconnect `v` from the source —
    /// in particular whenever `F` contains `v` itself or the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] for a bad query vertex,
    /// [`FtbfsError::InvalidFault`] / [`FtbfsError::FaultSetTooLarge`] for a
    /// bad fault set, [`FtbfsError::ContextMismatch`] for a foreign core.
    pub fn dist_after_faults(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        Ok(self.answer_unchecked(core, 0, v, faults))
    }

    /// Post-failure distance `dist(source, v, G ∖ F)` from an explicit
    /// source of a multi-source core.
    pub fn dist_after_faults_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<u32>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        let slot = core.source_slot(source)?;
        Ok(self.answer_unchecked(core, slot, v, faults))
    }

    /// A concrete post-failure shortest path from the primary source to `v`
    /// in `G ∖ {e}`, or `Ok(None)` when the failure disconnects `v`.
    ///
    /// The path runs inside `H ∖ {e}` except for the hypothetical failure of
    /// a reinforced edge, where it runs inside `G ∖ {e}` (see the module
    /// docs). Path extraction allocates the returned [`Path`]; the search
    /// itself reuses the context's scratch state.
    pub fn path_after_fault(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked(core, v, e)?;
        Ok(self.path_unchecked(core, 0, v, &FaultSet::from(e)))
    }

    /// Post-failure path from an explicit source of a multi-source core.
    pub fn path_after_fault_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked(core, v, e)?;
        let slot = core.source_slot(source)?;
        Ok(self.path_unchecked(core, slot, v, &FaultSet::from(e)))
    }

    /// A concrete post-failure shortest path from the primary source to `v`
    /// in `G ∖ F`, avoiding every failed edge and vertex, or `Ok(None)` when
    /// the faults disconnect `v`. Errors as
    /// [`QueryContext::dist_after_faults`].
    pub fn path_after_faults(
        &mut self,
        core: &EngineCore,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        Ok(self.path_unchecked(core, 0, v, faults))
    }

    /// Post-failure path under a fault set from an explicit source of a
    /// multi-source core.
    pub fn path_after_faults_from(
        &mut self,
        core: &EngineCore,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<Path>, FtbfsError> {
        self.checked_faults(core, v, faults)?;
        let slot = core.source_slot(source)?;
        Ok(self.path_unchecked(core, slot, v, faults))
    }

    /// Answer a batch of `(vertex, failing edge)` queries against the
    /// primary source, on the calling thread.
    ///
    /// The batch is grouped by failing edge internally, so each distinct
    /// failure triggers at most one BFS regardless of how many vertices are
    /// probed against it. Results are returned in input order; `None` marks
    /// a disconnected vertex. (The facades' `query_many` additionally shards
    /// edge-groups across threads; a context is the single-thread
    /// primitive.)
    pub fn query_many(
        &mut self,
        core: &EngineCore,
        queries: &[(VertexId, EdgeId)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.check_core(core)?;
        for &(v, e) in queries {
            core.check_vertex(v)?;
            core.check_edge(e)?;
        }
        let fault_sets: Vec<FaultSet> = queries.iter().map(|&(_, e)| FaultSet::from(e)).collect();
        // Same grouping/answering code as the facades, pinned to the calling
        // thread — a context is per-thread by contract.
        super::facade::query_many_sharded(
            core,
            self,
            &ftb_par::ParallelConfig::serial(),
            queries.len(),
            |i| (0, queries[i].0, &fault_sets[i]),
        )
    }

    /// Answer a batch of `(vertex, fault set)` queries against the primary
    /// source, on the calling thread. Grouped by fault set like
    /// [`QueryContext::query_many`].
    pub fn query_many_faults(
        &mut self,
        core: &EngineCore,
        queries: &[(VertexId, FaultSet)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.check_core(core)?;
        for (v, faults) in queries {
            core.check_vertex(*v)?;
            core.check_fault_set(faults)?;
        }
        super::facade::query_many_sharded(
            core,
            self,
            &ftb_par::ParallelConfig::serial(),
            queries.len(),
            |i| (0, queries[i].0, &queries[i].1),
        )
    }

    fn checked(&self, core: &EngineCore, v: VertexId, e: EdgeId) -> Result<(), FtbfsError> {
        self.check_core(core)?;
        core.check_vertex(v)?;
        core.check_edge(e)?;
        Ok(())
    }

    fn checked_faults(
        &self,
        core: &EngineCore,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<(), FtbfsError> {
        self.check_core(core)?;
        core.check_vertex(v)?;
        core.check_fault_set(faults)?;
        Ok(())
    }

    /// Distance answer with validation already done (shared by the single
    /// query paths and the facades' batch shards). Counts one query.
    pub(super) fn answer_unchecked(
        &mut self,
        core: &EngineCore,
        slot: usize,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<u32> {
        self.stats.queries += 1;
        let row = self.ensure_row(core, slot, faults);
        let (dist, _) = self.row(core, slot, row);
        finite(dist[v.index()])
    }

    /// Path answer with validation already done. Counts one query.
    pub(super) fn path_unchecked(
        &mut self,
        core: &EngineCore,
        slot: usize,
        v: VertexId,
        faults: &FaultSet,
    ) -> Option<Path> {
        self.stats.queries += 1;
        let row = self.ensure_row(core, slot, faults);
        let (dist, parent) = self.row(core, slot, row);
        if dist[v.index()] == UNREACHABLE {
            return None;
        }
        let mut vertices = vec![v];
        let mut edges = Vec::new();
        let mut cursor = v;
        while let Some((p, pe)) = parent[cursor.index()] {
            vertices.push(p);
            edges.push(pe);
            cursor = p;
        }
        vertices.reverse();
        edges.reverse();
        Some(Path::new(vertices, edges))
    }

    /// Borrow the rows a [`RowSlot`] refers to.
    fn row<'a>(&'a self, core: &'a EngineCore, slot: usize, row: RowSlot) -> super::RowRefs<'a> {
        match row {
            RowSlot::FaultFree => core.fault_free_row(slot),
            RowSlot::Cached(i) => (&self.rows[i].dist, &self.rows[i].parent),
        }
    }

    /// Make the distance row for fault set `faults` (as seen from source
    /// slot `slot`) available and report where it lives.
    ///
    /// Every call attributes the query to exactly one routing tier (see
    /// [`TierCounters`](super::TierCounters)); the per-CSR sweep counters
    /// only move when a search actually runs.
    fn ensure_row(&mut self, core: &EngineCore, slot: usize, faults: &FaultSet) -> RowSlot {
        let tier = core.route(faults);
        self.count_tier(tier);
        if tier == Tier::FaultFree {
            // Every fault is an edge outside H: T0 ⊆ H survives and the
            // distances are unchanged.
            self.stats.cached_answers += 1;
            return RowSlot::FaultFree;
        }
        self.clock += 1;
        let key_slot = slot as u32;
        if let Some(i) = self
            .rows
            .iter()
            .position(|r| r.source_slot == key_slot && r.faults == *faults)
        {
            self.rows[i].last_used = self.clock;
            self.stats.cached_answers += 1;
            return RowSlot::Cached(i);
        }
        // Miss: pick a row to (re)compute into — a fresh one while below
        // capacity, otherwise evict the least recently used.
        let i = if self.rows.len() < self.capacity {
            self.rows.push(CachedRow {
                source_slot: key_slot,
                faults: faults.clone(),
                dist: vec![UNREACHABLE; self.num_vertices],
                parent: vec![None; self.num_vertices],
                last_used: 0,
            });
            self.rows.len() - 1
        } else {
            (0..self.rows.len())
                .min_by_key(|&j| self.rows[j].last_used)
                .expect("capacity >= 1")
        };
        let source = core.sources()[slot];
        let row = &mut self.rows[i];
        // The banned-element filters below scan the canonical fault slice:
        // at most `max_faults` entries, so membership is a short linear
        // scan, cheaper than any hashing at these sizes.
        let banned = faults.as_slice();
        if banned.contains(&Fault::Vertex(source)) {
            // The source itself failed: nothing is reachable (matching
            // `bfs_distances_view` over a masked source). No search runs,
            // so no sweep is counted.
            row.dist.fill(UNREACHABLE);
            row.parent.fill(None);
        } else {
            match tier {
                Tier::SparseH => {
                    // The seed paper's regime: one non-reinforced structure
                    // edge. The FT-BFS guarantee makes a BFS over the
                    // compact CSR of H ∖ {e} exact.
                    let e = faults.as_single_edge().expect("SparseH is single-edge");
                    let h = &core.h;
                    let banned_compact = h.compact_edge(e);
                    bfs_sweep(
                        source,
                        &mut row.dist,
                        &mut row.parent,
                        &mut self.queue,
                        |u| {
                            h.graph()
                                .neighbors(u)
                                .filter(move |&(_, he)| Some(he) != banned_compact)
                                .map(|(w, he)| (w, h.parent_edge(he)))
                        },
                    );
                    self.stats.structure_bfs_runs += 1;
                }
                Tier::Augmented => {
                    // The fault set is inside the augmented structure's
                    // coverage: a BFS over H⁺ ∖ F is exact by the
                    // replacement-path construction (see `crate::ftbfs`).
                    // The ≤ 2 banned edges are translated to compact ids
                    // once, so the sweep compares compact ids directly and
                    // only translates the edges it records as parents.
                    let aug = &core.aug.as_ref().expect("Augmented tier has a CSR").csr;
                    let banned_compact: Vec<ftb_graph::EdgeId> =
                        faults.edges().filter_map(|e| aug.compact_edge(e)).collect();
                    bfs_sweep(
                        source,
                        &mut row.dist,
                        &mut row.parent,
                        &mut self.queue,
                        |u| {
                            aug.graph()
                                .neighbors(u)
                                .filter(|&(w, ce)| {
                                    !banned_compact.contains(&ce)
                                        && !banned.contains(&Fault::Vertex(w))
                                })
                                .map(|(w, ce)| (w, aug.parent_edge(ce)))
                        },
                    );
                    self.stats.augmented_bfs_runs += 1;
                }
                Tier::FullGraph => {
                    // Everything beyond the sparse guarantees stays exact
                    // with one BFS over the full graph G ∖ F.
                    let graph = core.graph();
                    bfs_sweep(
                        source,
                        &mut row.dist,
                        &mut row.parent,
                        &mut self.queue,
                        |u| {
                            graph.neighbors(u).filter(move |&(w, ge)| {
                                !banned.contains(&Fault::Edge(ge))
                                    && !banned.contains(&Fault::Vertex(w))
                            })
                        },
                    );
                    self.stats.full_graph_bfs_runs += 1;
                }
                Tier::FaultFree => unreachable!("handled above"),
            }
        }
        let row = &mut self.rows[i];
        row.source_slot = key_slot;
        row.faults = faults.clone();
        row.last_used = self.clock;
        RowSlot::Cached(i)
    }

    fn count_tier(&mut self, tier: Tier) {
        match tier {
            Tier::FaultFree => self.stats.tiers.fault_free_row += 1,
            Tier::SparseH => self.stats.tiers.sparse_h_bfs += 1,
            Tier::Augmented => self.stats.tiers.augmented_bfs += 1,
            Tier::FullGraph => self.stats.tiers.full_graph_bfs += 1,
        }
    }
}
