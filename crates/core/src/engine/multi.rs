//! The multi-source serving facade: [`MultiSourceEngine`].

use super::context::QueryContext;
use super::core::{EngineCore, EngineOptions};
use super::facade::query_many_sharded;
use super::QueryStats;
use crate::error::FtbfsError;
use crate::mbfs::MultiSourceStructure;
use crate::structure::FtBfsStructure;
use ftb_graph::{EdgeId, FaultSet, Graph, VertexId};
use ftb_sp::Path;
use std::sync::Arc;

/// A query server over a [`MultiSourceStructure`]: per-source post-failure
/// queries against **one** shared compact CSR of the union `H`, instead of
/// collapsing to the primary source.
///
/// Preprocessing builds one fault-free row per source over the union
/// structure; a query names its source explicitly and is exact for it,
/// because every per-source structure is contained in the union and the
/// union only ever adds edges (the FT-BFS guarantee survives supersets).
/// Like [`FaultQueryEngine`](super::FaultQueryEngine), the facade owns an
/// `Arc`-shared [`EngineCore`] plus one [`QueryContext`], and
/// [`MultiSourceEngine::query_many`] shards edge-groups across threads.
#[derive(Clone, Debug)]
pub struct MultiSourceEngine<'g> {
    graph: &'g Graph,
    core: Arc<EngineCore>,
    ctx: QueryContext,
}

impl<'g> MultiSourceEngine<'g> {
    /// Preprocess `structure` (built from `graph`) into a per-source query
    /// engine with default [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// See [`EngineCore::build_multi`] — the structure/graph pairing is
    /// validated for every source.
    pub fn new(graph: &'g Graph, structure: MultiSourceStructure) -> Result<Self, FtbfsError> {
        Self::with_options(graph, structure, EngineOptions::default())
    }

    /// Like [`MultiSourceEngine::new`] with explicit serving options.
    pub fn with_options(
        graph: &'g Graph,
        structure: MultiSourceStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let core = Arc::new(EngineCore::build_multi_with(graph, structure, options)?);
        let ctx = core.new_context();
        Ok(MultiSourceEngine { graph, core, ctx })
    }

    /// Preprocess an [`AugmentedStructure`](crate::ftbfs::AugmentedStructure)
    /// (typically from
    /// [`FtBfsAugmenter::augment_multi`](crate::ftbfs::FtBfsAugmenter::augment_multi))
    /// into a per-source engine whose covered fault sets are answered over
    /// `H⁺ ∖ F` instead of the full graph. Every source the structure was
    /// augmented for is served.
    ///
    /// # Errors
    ///
    /// As [`MultiSourceEngine::new`].
    pub fn from_augmented(
        graph: &'g Graph,
        augmented: crate::ftbfs::AugmentedStructure,
    ) -> Result<Self, FtbfsError> {
        Self::from_augmented_with_options(graph, augmented, EngineOptions::default())
    }

    /// Like [`MultiSourceEngine::from_augmented`] with explicit serving
    /// options.
    pub fn from_augmented_with_options(
        graph: &'g Graph,
        augmented: crate::ftbfs::AugmentedStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let core = Arc::new(EngineCore::build_augmented_with(graph, augmented, options)?);
        let ctx = core.new_context();
        Ok(MultiSourceEngine { graph, core, ctx })
    }

    /// The shared immutable core — clone the `Arc` to serve the same
    /// preprocessed data from other threads via
    /// [`EngineCore::new_context`].
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// The served sources, in slot order.
    pub fn sources(&self) -> &[VertexId] {
        self.core.sources()
    }

    /// The collapsed union structure the engine serves.
    pub fn structure(&self) -> &FtBfsStructure {
        self.core.structure()
    }

    /// The parent graph the engine was built from.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Query counters accumulated since construction (sharded batch work
    /// included).
    pub fn query_stats(&self) -> QueryStats {
        self.ctx.stats()
    }

    /// Attach engine metric handles to the engine's context (see
    /// [`QueryContext::attach_obs`]).
    pub fn attach_obs(&mut self, obs: std::sync::Arc<super::EngineObs>) {
        self.ctx.attach_obs(obs);
    }

    /// Fault-free distance `dist(source, v, G)` (`None` if unreachable).
    ///
    /// # Errors
    ///
    /// [`FtbfsError::SourceNotServed`] for a source the structure was not
    /// built for, [`FtbfsError::VertexOutOfRange`] for a bad vertex.
    pub fn fault_free_dist(
        &self,
        source: VertexId,
        v: VertexId,
    ) -> Result<Option<u32>, FtbfsError> {
        self.core.check_vertex(v)?;
        let slot = self.core.source_slot(source)?;
        Ok(self.core.fault_free_dist_slot(slot, v))
    }

    /// Post-failure distance `dist(source, v, G ∖ {e})`.
    ///
    /// Returns `Ok(None)` when the failure disconnects `v` from `source`.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::SourceNotServed`] / [`FtbfsError::VertexOutOfRange`] /
    /// [`FtbfsError::EdgeOutOfRange`].
    pub fn dist_after_fault(
        &mut self,
        source: VertexId,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<u32>, FtbfsError> {
        self.ctx.dist_after_fault_from(&self.core, source, v, e)
    }

    /// Post-failure distance `dist(source, v, G ∖ F)` for an arbitrary
    /// fault set of edges and vertices; see
    /// [`FaultQueryEngine::dist_after_faults`](super::FaultQueryEngine::dist_after_faults)
    /// for the answering model.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::SourceNotServed`] / [`FtbfsError::VertexOutOfRange`] /
    /// [`FtbfsError::InvalidFault`] / [`FtbfsError::FaultSetTooLarge`].
    pub fn dist_after_faults(
        &mut self,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<u32>, FtbfsError> {
        self.ctx
            .dist_after_faults_from(&self.core, source, v, faults)
    }

    /// One-to-many post-failure distances from `source` to every vertex in
    /// `targets` under one shared fault set, in input order (`None` marks a
    /// disconnected target). The whole set shares one batched unaffected
    /// classification and at most one search — see
    /// [`QueryContext::dist_many_after_faults`]; results are byte-identical
    /// to `targets.len()` separate [`MultiSourceEngine::dist_after_faults`]
    /// calls. Errors as [`MultiSourceEngine::dist_after_faults`].
    pub fn dist_many_after_faults(
        &mut self,
        source: VertexId,
        targets: &[VertexId],
        faults: &FaultSet,
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.ctx
            .dist_many_after_faults_from(&self.core, source, targets, faults)
    }

    /// A concrete post-failure shortest path from `source` to `v` in
    /// `G ∖ {e}`, or `Ok(None)` when the failure disconnects `v`.
    pub fn path_after_fault(
        &mut self,
        source: VertexId,
        v: VertexId,
        e: EdgeId,
    ) -> Result<Option<Path>, FtbfsError> {
        self.ctx.path_after_fault_from(&self.core, source, v, e)
    }

    /// A concrete post-failure shortest path from `source` to `v` in
    /// `G ∖ F`, avoiding every failed edge and vertex, or `Ok(None)` when
    /// the faults disconnect `v`.
    pub fn path_after_faults(
        &mut self,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<Path>, FtbfsError> {
        self.ctx
            .path_after_faults_from(&self.core, source, v, faults)
    }

    /// Answer a batch of `(source, vertex, failing edge)` queries.
    ///
    /// Grouped by (source, failing edge) and sharded across
    /// [`EngineOptions::parallel`] workers exactly like
    /// [`FaultQueryEngine::query_many`](super::FaultQueryEngine::query_many),
    /// including the per-target unaffected fast path and incremental row
    /// repair (each source slot has its own fault-free tree index);
    /// results are returned in input order, byte-identical to the serial
    /// path.
    pub fn query_many(
        &mut self,
        queries: &[(VertexId, VertexId, EdgeId)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        // Resolve sources to slots up front so the sharded path only deals
        // in validated slots.
        self.ctx.check_core(&self.core)?;
        let mut slots = Vec::with_capacity(queries.len());
        for &(source, v, e) in queries {
            self.core.check_vertex(v)?;
            self.core.check_edge(e)?;
            slots.push(self.core.source_slot(source)?);
        }
        let fault_sets: Vec<FaultSet> =
            queries.iter().map(|&(_, _, e)| FaultSet::from(e)).collect();
        let parallel = self.core.options().parallel.clone();
        let core = Arc::clone(&self.core);
        self.ctx.with_tier_obs(|ctx| {
            query_many_sharded(&core, ctx, &parallel, queries.len(), |i| {
                (slots[i], queries[i].1, &fault_sets[i])
            })
        })
    }

    /// Answer a batch of `(source, vertex, fault set)` queries, grouped by
    /// (source, canonical fault set) and sharded like
    /// [`MultiSourceEngine::query_many`], with oversized groups split
    /// across workers.
    pub fn query_many_faults(
        &mut self,
        queries: &[(VertexId, VertexId, FaultSet)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.ctx.check_core(&self.core)?;
        let mut slots = Vec::with_capacity(queries.len());
        for (source, v, faults) in queries {
            self.core.check_vertex(*v)?;
            self.core.check_fault_set(faults)?;
            slots.push(self.core.source_slot(*source)?);
        }
        let parallel = self.core.options().parallel.clone();
        let core = Arc::clone(&self.core);
        self.ctx.with_tier_obs(|ctx| {
            query_many_sharded(&core, ctx, &parallel, queries.len(), |i| {
                (slots[i], queries[i].1, &queries[i].2)
            })
        })
    }
}
