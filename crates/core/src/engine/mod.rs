//! Build-once / query-many fault queries, layered for concurrent serving.
//!
//! The construction side of this crate produces a static
//! [`FtBfsStructure`](crate::FtBfsStructure); this module makes it
//! *servable*. Mirroring the preprocess-then-query `Server` pattern of
//! route-planning engines, preprocessing happens once and every subsequent
//! post-failure distance/path query runs against reusable scratch state with
//! no per-query allocation.
//!
//! # The three layers
//!
//! * [`EngineCore`] — the **immutable** preprocessed data: an owned copy of
//!   the parent graph, the structure's edge/reinforcement sets, a compact CSR
//!   of `H`, and one fault-free distance/parent row per served source.
//!   `EngineCore` is `Send + Sync`; wrap it in an `Arc` and any number of
//!   threads can serve queries from the same core concurrently.
//! * [`QueryContext`] — the cheap **per-thread** mutable state: BFS scratch
//!   rows, a visit queue, an LRU of recently computed post-failure distance
//!   rows (keyed by fault set, capacity [`EngineOptions::lru_rows`]), and
//!   query counters. Create one per worker with [`EngineCore::new_context`];
//!   contexts are *not* shared between threads.
//! * Facades — [`FaultQueryEngine`] (single source, the 0.2 API) and
//!   [`MultiSourceEngine`] (per-source queries against one shared core) own
//!   an `Arc<EngineCore>` plus one context and add batch orchestration:
//!   their `query_many` groups a batch by fault set and shards the groups
//!   across threads via [`ftb_par::parallel_map_init`], one fresh context per
//!   worker, with deterministic input-order results; oversized groups are
//!   split so one hot fault cannot serialise a skewed batch on one worker.
//!
//! # Fault model
//!
//! Queries name their failures as a
//! [`FaultSet`](ftb_graph::FaultSet) — a small canonical set of
//! [`Fault`](ftb_graph::Fault)s, each a failed **edge** or a failed
//! **vertex** (the vertex and all incident edges disappear). The historic
//! single-edge methods (`dist_after_fault` & friends) are thin delegations
//! onto the same machinery with a singleton set and return byte-identical
//! results. Sets larger than [`EngineOptions::max_faults`] (default 2) are
//! rejected with
//! [`FtbfsError::FaultSetTooLarge`](crate::FtbfsError::FaultSetTooLarge).
//!
//! # Answering model
//!
//! For a query `(v, F)` the engine reports `dist(s, v, G ∖ F)` through a
//! cascade of four tiers, cheapest first (attribution is recorded per query
//! in [`QueryStats::tiers`]):
//!
//! * **`fault_free_row`** — every fault in `F` an edge outside `H`: the BFS
//!   tree `T0 ⊆ H` survives, and `dist(G) ≤ dist(G ∖ F) ≤ dist(H ∖ F) =
//!   dist(H) = dist(G)` squeezes the answer to the fault-free value; the
//!   core's preprocessed row is returned without any search.
//! * **`sparse_h_bfs`** — `F = {e}`, a single non-reinforced structure
//!   edge: one BFS over the compact CSR of `H ∖ {e}`. By the defining
//!   FT-BFS guarantee (`dist(s, v, H ∖ {e}) ≤ dist(s, v, G ∖ {e})`, with
//!   `≥` from `H ⊆ G`) the answer equals the from-scratch distance in
//!   `G ∖ {e}` whenever the structure is valid.
//! * **`augmented_bfs`** — the core was built from an
//!   [`AugmentedStructure`](crate::ftbfs::AugmentedStructure) whose
//!   [coverage](crate::ftbfs::AugmentCoverage) accepts `F` (vertex faults,
//!   dual edge failures, a vertex plus an edge, reinforced-edge
//!   hypotheticals): one BFS over the compact CSR of `H⁺ ∖ F`, exact by the
//!   replacement-path construction (see the [`ftbfs`](crate::ftbfs) docs).
//! * **`full_graph_bfs`** — everything else (`|F| ≥ 3`, two simultaneous
//!   vertex faults, or a build without the needed augmentation): one exact
//!   recomputed BFS over the full graph `G ∖ F`, costing `O(n + m)` rather
//!   than `O(|H⁺|)` per miss.
//!
//! A query whose fault set contains the target vertex or the source itself
//! reports the vertex disconnected (`Ok(None)`), matching brute-force BFS
//! over the masked graph.
//!
//! # Incremental row repair and the unaffected fast path
//!
//! A fault only changes the distance of vertices whose canonical shortest
//! path *uses* the failed element — the subtrees hanging under the fault in
//! the slot's fault-free BFS tree `T0` (the observation behind the sparse
//! FT-BFS constructions of Parter–Peleg 2013). The engine exploits it
//! twice, and both optimisations are answer-preserving (byte-identical
//! rows, asserted in the `row_repair` differential suite):
//!
//! * **Targeted fast path** — a distance query whose target is provably
//!   unaffected (its tree path avoids every failed tree edge and vertex —
//!   an `O(|F|)` check against preprocessed Euler-tour subtree intervals)
//!   is answered straight from the fault-free row: no search, no row, no
//!   LRU traffic. Counted in [`TierCounters::unaffected_fast_path`].
//! * **Repair instead of re-sweep** — a cache miss on the `sparse_h_bfs` /
//!   `augmented_bfs` tiers does not re-sweep the whole serving CSR: the row
//!   starts as a copy of the tier's fault-free rows, the affected subtrees
//!   (`O(1)` preorder intervals) are reset and re-swept by a bounded BFS
//!   seeded from their unaffected boundary at fault-free depths, and
//!   canonical parents are patched where distances or adjacency changed.
//!   Cost is `O(n)` memcpy plus `O(vol(affected))` instead of a full
//!   `O(n + |CSR|)` traversal; counted in [`QueryStats::repaired_rows`].
//! * **One-to-many batching** — `dist_many_after_faults` answers a whole
//!   target set against one fault set in one pass: targets are sorted by
//!   Euler-tour preorder number and binary-searched against the merged
//!   affected intervals (`O(|F| log t + t)` instead of `O(|F|·t)` probes),
//!   provably-unaffected targets are read straight off the fault-free row
//!   ([`TierCounters::batched_unaffected`]), and when only a few targets
//!   land inside the affected subtrees a *target-restricted* repair sweep
//!   stops as soon as every requested affected target is settled
//!   ([`QueryStats::restricted_repairs`]) instead of repairing the row.
//!
//! Parent entries everywhere are **canonical** — the first neighbor one
//! level closer in (filtered) adjacency order, a pure function of the final
//! distance row — which is what makes repaired and fully-swept rows
//! byte-identical, and serial, sharded and repaired serving
//! indistinguishable. Set [`EngineOptions::force_full_sweep`] (or the
//! [`FORCE_FULL_SWEEP_ENV`] environment variable) to disable both paths for
//! differential testing or measurement; the `row_repair` criterion bench
//! gates the ≥ 2× serving gap between the two modes in CI.
//!
//! Each context keeps the last [`EngineOptions::lru_rows`] computed rows
//! keyed by (source, fault set) — a single-edge query and its
//! singleton-set twin share one row — so interleaved queries against a
//! small working set of failure patterns never repeat a search; batches
//! additionally group by fault set so each distinct failure pattern is
//! searched at most once per worker per batch.
//!
//! # Thread-safety contract
//!
//! `EngineCore` is immutable after construction and `Send + Sync`; share it
//! freely (`Arc<EngineCore>`). `QueryContext` is `Send` but deliberately not
//! shared: each thread creates its own via [`EngineCore::new_context`] and
//! queries through it with `&mut`. A context is tied to the core that
//! created it — using it with a different core yields
//! [`FtbfsError::ContextMismatch`](crate::FtbfsError::ContextMismatch).

mod context;
mod core;
mod facade;
mod multi;
mod obs;
mod snapshot;
#[cfg(test)]
mod tests;

pub use snapshot::engine_layout_hash;

pub use self::core::{EngineCore, EngineOptions, FORCE_FULL_SWEEP_ENV};
pub use context::QueryContext;
pub use facade::FaultQueryEngine;
pub use multi::MultiSourceEngine;
pub use obs::{EngineObs, STAGE_SECONDS_METRIC, TIER_LATENCY_METRIC};

/// The answering tier a fault set routes to (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Tier {
    /// The faults cannot change distances; the preprocessed row answers.
    FaultFree,
    /// Single non-reinforced structure edge: BFS over `H ∖ {e}`.
    SparseH,
    /// Covered by the build's augmentation: BFS over `H⁺ ∖ F`.
    Augmented,
    /// Everything else: exact recomputed BFS over `G ∖ F`.
    FullGraph,
}

use ftb_graph::{EdgeId, VertexId};
use ftb_sp::UNREACHABLE;
use std::collections::VecDeque;

/// Per-tier answering counters: how many queries each routing tier
/// answered.
///
/// Every query is attributed to exactly one tier — the tier whose row
/// (fresh or LRU-cached) produced the answer — so the fields always
/// sum to [`QueryStats::queries`]. This makes tier routing *observable*:
/// e.g. a test can assert that vertex-fault queries on an augmented build
/// never land in [`TierCounters::full_graph_bfs`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Answered straight from the preprocessed fault-free row (every fault
    /// an edge outside the structure).
    pub fault_free_row: usize,
    /// Answered in `O(|F|)` from the fault-free row because the target was
    /// *provably unaffected*: its canonical tree path avoids every failed
    /// element, so no search (and no row) is needed at all. Targeted
    /// distance queries and path queries whose whole parent chain is
    /// unaffected take this path; disable it (together with the
    /// incremental row repair) via
    /// [`EngineOptions::force_full_sweep`](super::EngineOptions).
    pub unaffected_fast_path: usize,
    /// Answered from the fault-free row by the *batched* one-to-many
    /// classification: `dist_many_after_faults` sorts the requested targets
    /// by Euler-tour preorder number and binary-searches the merged
    /// affected intervals, so each provably-unaffected target of a
    /// many-target query costs `O(log t)` amortised instead of an
    /// `O(|F|)` per-target probe. Counted per *target*, like every other
    /// tier counter.
    pub batched_unaffected: usize,
    /// Answered from a BFS row over the sparse structure CSR `H ∖ {e}`
    /// (single non-reinforced structure-edge failures — the seed paper's
    /// guarantee).
    pub sparse_h_bfs: usize,
    /// Answered from a BFS row over the augmented CSR `H⁺ ∖ F`
    /// (vertex faults, dual failures and reinforced-edge hypotheticals
    /// within the build's [`AugmentCoverage`](crate::ftbfs::AugmentCoverage)).
    pub augmented_bfs: usize,
    /// Answered from a recomputed full-graph BFS row over `G ∖ F` (the
    /// exact fallback for everything outside the sparse guarantees).
    pub full_graph_bfs: usize,
}

impl TierCounters {
    /// Sum of all tiers (equals the total query count).
    pub fn total(&self) -> usize {
        self.fault_free_row
            + self.unaffected_fast_path
            + self.batched_unaffected
            + self.sparse_h_bfs
            + self.augmented_bfs
            + self.full_graph_bfs
    }

    fn merge(&mut self, other: &TierCounters) {
        self.fault_free_row += other.fault_free_row;
        self.unaffected_fast_path += other.unaffected_fast_path;
        self.batched_unaffected += other.batched_unaffected;
        self.sparse_h_bfs += other.sparse_h_bfs;
        self.augmented_bfs += other.augmented_bfs;
        self.full_graph_bfs += other.full_graph_bfs;
    }

    fn delta_since(&self, earlier: &TierCounters) -> TierCounters {
        TierCounters {
            fault_free_row: self.fault_free_row - earlier.fault_free_row,
            unaffected_fast_path: self.unaffected_fast_path - earlier.unaffected_fast_path,
            batched_unaffected: self.batched_unaffected - earlier.batched_unaffected,
            sparse_h_bfs: self.sparse_h_bfs - earlier.sparse_h_bfs,
            augmented_bfs: self.augmented_bfs - earlier.augmented_bfs,
            full_graph_bfs: self.full_graph_bfs - earlier.full_graph_bfs,
        }
    }
}

/// Counters describing how an engine (or a single context) answered its
/// queries so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total queries answered (distance, path and batched).
    pub queries: usize,
    /// BFS sweeps over the compact structure CSR of `H`.
    pub structure_bfs_runs: usize,
    /// BFS sweeps over the compact augmented CSR of `H⁺`.
    pub augmented_bfs_runs: usize,
    /// BFS sweeps over the full graph (the exact fallback).
    pub full_graph_bfs_runs: usize,
    /// Queries answered from an already-computed row (the fault-free row,
    /// the unaffected fast path, or an LRU hit).
    pub cached_answers: usize,
    /// Cache-miss rows produced by the *incremental repair* path (fault-free
    /// copy + bounded BFS over the affected subtrees) instead of a full CSR
    /// sweep. Each repaired row is also counted in the sweep counter of its
    /// tier (`structure_bfs_runs` / `augmented_bfs_runs`), so
    /// `repaired_rows` tells how many of those searches were bounded.
    pub repaired_rows: usize,
    /// One-to-many cache misses answered by a *target-restricted* repair
    /// sweep: the bounded boundary-seeded BFS stopped as soon as every
    /// affected *requested* target was settled, instead of repairing (or
    /// caching) the whole row. Each restricted repair is also counted in
    /// the sweep counter of its tier, like [`QueryStats::repaired_rows`].
    pub restricted_repairs: usize,
    /// Per-tier attribution of every answered query (fields sum to
    /// [`QueryStats::queries`]).
    pub tiers: TierCounters,
}

impl QueryStats {
    /// Accumulate another stats block into this one (used when merging the
    /// counters of per-worker contexts after a sharded batch).
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.structure_bfs_runs += other.structure_bfs_runs;
        self.augmented_bfs_runs += other.augmented_bfs_runs;
        self.full_graph_bfs_runs += other.full_graph_bfs_runs;
        self.cached_answers += other.cached_answers;
        self.repaired_rows += other.repaired_rows;
        self.restricted_repairs += other.restricted_repairs;
        self.tiers.merge(&other.tiers);
    }

    /// The counter increments accumulated since `earlier` was captured
    /// (both snapshots must come from the same context/engine).
    pub fn delta_since(&self, earlier: &QueryStats) -> QueryStats {
        QueryStats {
            queries: self.queries - earlier.queries,
            structure_bfs_runs: self.structure_bfs_runs - earlier.structure_bfs_runs,
            augmented_bfs_runs: self.augmented_bfs_runs - earlier.augmented_bfs_runs,
            full_graph_bfs_runs: self.full_graph_bfs_runs - earlier.full_graph_bfs_runs,
            cached_answers: self.cached_answers - earlier.cached_answers,
            repaired_rows: self.repaired_rows - earlier.repaired_rows,
            restricted_repairs: self.restricted_repairs - earlier.restricted_repairs,
            tiers: self.tiers.delta_since(&earlier.tiers),
        }
    }
}

/// A lock-free publication cell for one worker's [`QueryStats`].
///
/// The serving pattern behind it: each worker thread owns a
/// [`QueryContext`] (not shared, not lockable without poisoning the hot
/// path) and, after finishing a request, *publishes* its context's counter
/// totals into its own `AtomicQueryStats` slot with
/// [`AtomicQueryStats::store`]. Any other thread — a `Stats`-op handler, a
/// metrics scraper — calls [`AtomicQueryStats::snapshot`] on every slot and
/// folds the results with [`QueryStats::merge`], aggregating per-worker
/// counters without taking a single lock on the serve path.
///
/// Consistency contract: every field is an independent relaxed atomic, so a
/// snapshot racing a store may mix fields from two adjacent publications —
/// but each field is monotonically non-decreasing and every published value
/// was true at some point, which is exactly what monitoring counters need.
/// A snapshot never observes a *torn* field and never goes backwards
/// field-wise.
#[derive(Debug, Default)]
pub struct AtomicQueryStats {
    queries: std::sync::atomic::AtomicUsize,
    structure_bfs_runs: std::sync::atomic::AtomicUsize,
    augmented_bfs_runs: std::sync::atomic::AtomicUsize,
    full_graph_bfs_runs: std::sync::atomic::AtomicUsize,
    cached_answers: std::sync::atomic::AtomicUsize,
    repaired_rows: std::sync::atomic::AtomicUsize,
    restricted_repairs: std::sync::atomic::AtomicUsize,
    tier_fault_free_row: std::sync::atomic::AtomicUsize,
    tier_unaffected_fast_path: std::sync::atomic::AtomicUsize,
    tier_batched_unaffected: std::sync::atomic::AtomicUsize,
    tier_sparse_h_bfs: std::sync::atomic::AtomicUsize,
    tier_augmented_bfs: std::sync::atomic::AtomicUsize,
    tier_full_graph_bfs: std::sync::atomic::AtomicUsize,
}

impl AtomicQueryStats {
    /// An all-zero cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish `stats` (a context's running totals) into this cell.
    pub fn store(&self, stats: &QueryStats) {
        use std::sync::atomic::Ordering::Relaxed;
        self.queries.store(stats.queries, Relaxed);
        self.structure_bfs_runs
            .store(stats.structure_bfs_runs, Relaxed);
        self.augmented_bfs_runs
            .store(stats.augmented_bfs_runs, Relaxed);
        self.full_graph_bfs_runs
            .store(stats.full_graph_bfs_runs, Relaxed);
        self.cached_answers.store(stats.cached_answers, Relaxed);
        self.repaired_rows.store(stats.repaired_rows, Relaxed);
        self.restricted_repairs
            .store(stats.restricted_repairs, Relaxed);
        self.tier_fault_free_row
            .store(stats.tiers.fault_free_row, Relaxed);
        self.tier_unaffected_fast_path
            .store(stats.tiers.unaffected_fast_path, Relaxed);
        self.tier_batched_unaffected
            .store(stats.tiers.batched_unaffected, Relaxed);
        self.tier_sparse_h_bfs
            .store(stats.tiers.sparse_h_bfs, Relaxed);
        self.tier_augmented_bfs
            .store(stats.tiers.augmented_bfs, Relaxed);
        self.tier_full_graph_bfs
            .store(stats.tiers.full_graph_bfs, Relaxed);
    }

    /// Read the last published totals as a plain [`QueryStats`] value.
    pub fn snapshot(&self) -> QueryStats {
        use std::sync::atomic::Ordering::Relaxed;
        QueryStats {
            queries: self.queries.load(Relaxed),
            structure_bfs_runs: self.structure_bfs_runs.load(Relaxed),
            augmented_bfs_runs: self.augmented_bfs_runs.load(Relaxed),
            full_graph_bfs_runs: self.full_graph_bfs_runs.load(Relaxed),
            cached_answers: self.cached_answers.load(Relaxed),
            repaired_rows: self.repaired_rows.load(Relaxed),
            restricted_repairs: self.restricted_repairs.load(Relaxed),
            tiers: TierCounters {
                fault_free_row: self.tier_fault_free_row.load(Relaxed),
                unaffected_fast_path: self.tier_unaffected_fast_path.load(Relaxed),
                batched_unaffected: self.tier_batched_unaffected.load(Relaxed),
                sparse_h_bfs: self.tier_sparse_h_bfs.load(Relaxed),
                augmented_bfs: self.tier_augmented_bfs.load(Relaxed),
                full_graph_bfs: self.tier_full_graph_bfs.load(Relaxed),
            },
        }
    }
}

/// Borrowed distance + parent rows of one BFS sweep.
type RowRefs<'a> = (&'a [u32], &'a [Option<(VertexId, EdgeId)>]);

/// One parent-row entry: the canonical predecessor of a vertex and the
/// parent-graph id of the connecting edge.
type ParentEntry = Option<(VertexId, EdgeId)>;

/// `None` for the `UNREACHABLE` sentinel, `Some(d)` otherwise.
fn finite(d: u32) -> Option<u32> {
    if d == UNREACHABLE {
        None
    } else {
        Some(d)
    }
}

/// Reusable BFS sweep state: a generation-stamped distance row (reset is an
/// `O(1)` epoch bump, not an `O(n)` fill), an *unstamped* parent row (only
/// read for vertices whose distance is valid this epoch — every such vertex
/// is popped exactly once and writes its entry), and the visit queue.
#[derive(Clone, Debug)]
pub(super) struct SweepScratch {
    dist: ftb_sp::TimestampedVector<u32>,
    parent: Vec<ParentEntry>,
    queue: VecDeque<VertexId>,
}

impl SweepScratch {
    pub(super) fn new(num_vertices: usize) -> Self {
        SweepScratch {
            dist: ftb_sp::TimestampedVector::new(num_vertices, UNREACHABLE),
            parent: vec![None; num_vertices],
            queue: VecDeque::with_capacity(num_vertices),
        }
    }

    /// Copy the sweep result into materialized rows (an LRU slot or a
    /// preprocessed fault-free row).
    pub(super) fn materialize(&self, dist: &mut [u32], parent: &mut [ParentEntry]) {
        for i in 0..dist.len() {
            let d = self.dist.get(i);
            dist[i] = d;
            parent[i] = if d == UNREACHABLE {
                None
            } else {
                self.parent[i]
            };
        }
    }
}

/// The one BFS loop every full sweep shares: expand from `source` over
/// whatever adjacency `neighbors` yields, into the scratch's stamped rows
/// (no per-sweep fill). `neighbors` must already exclude the failed
/// elements and report edges as parent-graph edge ids.
///
/// Parent entries are **canonical**: the parent of `v` is the first
/// neighbor `(w, e)` in `v`'s own (filtered) adjacency order with
/// `dist(w) + 1 == dist(v)` — a pure function of the final distance row and
/// the adjacency, *not* of the traversal order. When `v` is popped, every
/// vertex at depth `dist(v) - 1` is final, so one scan discovers `v`'s
/// successors and selects `v`'s canonical parent at the same time. The
/// incremental repair path recomputes exactly this rule from final
/// distances, which is what makes repaired rows byte-identical to full
/// sweeps.
fn bfs_sweep<I, F>(source: VertexId, scratch: &mut SweepScratch, neighbors: F)
where
    I: Iterator<Item = (VertexId, EdgeId)>,
    F: Fn(VertexId) -> I,
{
    scratch.dist.reset();
    scratch.queue.clear();
    scratch.dist.set(source.index(), 0);
    scratch.parent[source.index()] = None;
    scratch.queue.push_back(source);
    while let Some(u) = scratch.queue.pop_front() {
        let du = scratch.dist.get(u.index());
        let mut canonical: ParentEntry = None;
        for (w, ge) in neighbors(u) {
            let dw = scratch.dist.get(w.index());
            if dw == UNREACHABLE {
                scratch.dist.set(w.index(), du + 1);
                scratch.queue.push_back(w);
            } else if canonical.is_none() && du > 0 && dw + 1 == du {
                canonical = Some((w, ge));
            }
        }
        if u != source {
            scratch.parent[u.index()] = canonical;
        }
    }
}
