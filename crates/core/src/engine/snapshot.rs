//! Persistent [`EngineCore`] snapshots: serialize the whole preprocessed
//! engine to a single versioned flat-binary file and load it back with one
//! allocation + one bulk pass per array — no BFS, no augmentation, no
//! validation sweeps beyond invariant checks.
//!
//! The snapshot is an `ftb_io` container (see [`ftb_io`] for the header
//! layout) whose sections mirror the core's fields one-to-one. Everything
//! the core owns is a flat `Vec` already, so the payload is raw
//! little-endian array bytes; the only derived data rebuilt at load time is
//! the `CompactSubgraph` reverse edge maps (an `O(m)` scatter each).
//!
//! Schema changes are caught by [`engine_layout_hash`], an FNV-1a hash of a
//! static schema description string: any session that renames, reorders or
//! retypes a serialized field must update [`ENGINE_LAYOUT`], and stale
//! snapshots then fail with [`SnapshotError::LayoutMismatch`] instead of
//! misdecoding.
//!
//! Decoding is **total**: every byte string either yields a core or a typed
//! [`SnapshotError`]. The serving-side [`EngineOptions`] are deliberately
//! *not* snapshotted — they are deployment knobs (LRU size, worker threads,
//! fault cap, sweep mode), supplied by whoever loads the core.

use super::core::{next_core_token, AugmentedTier, FaultFreeRow, SlotTree};
use super::{EngineCore, EngineOptions, ParentEntry};
use crate::ftbfs::AugmentCoverage;
use crate::structure::FtBfsStructure;
use ftb_graph::{CompactSubgraph, EdgeId, Graph, VertexId};
use ftb_io::{fnv1a, Load, Reader, SnapshotError, SnapshotReader, SnapshotWriter, Store, Writer};
use ftb_tree::EulerTourIndex;

/// Section ids of the engine snapshot container.
const SECTION_GRAPH: u32 = 1;
const SECTION_STRUCTURE: u32 = 2;
const SECTION_SOURCES: u32 = 3;
const SECTION_H: u32 = 4;
const SECTION_AUG: u32 = 5;
const SECTION_ROWS: u32 = 6;
const SECTION_FULL_PARENT: u32 = 7;
const SECTION_TREES: u32 = 8;
const SECTION_SLOT_OF: u32 = 9;
const SECTION_NOTE: u32 = 10;

/// Static description of everything [`EngineCore::write_snapshot`] writes,
/// in order. The layout hash in the snapshot header is the FNV-1a hash of
/// this string, so any change to the serialized schema MUST be reflected
/// here — that is what turns schema drift into a typed
/// [`SnapshotError::LayoutMismatch`] instead of a misdecode.
const ENGINE_LAYOUT: &str = "EngineCore snapshot v1:\
 graph{offsets:u32[],neighbors:u32[],slot_edges:u32[],endpoints:u32[2m]}\
 structure{source:u32,eps:f64bits,edges:bitset,reinforced:bitset,stats:u64[16]+u8+f64bits[5]}\
 sources:u32[]\
 h:{graph,to_parent:u32[]}\
 aug:{present:u8,csr:{graph,to_parent:u32[]},coverage:u8,parent_rows:(u32[],u32[])/slot}\
 rows:{dist:u32[],parent:(u32[],u32[])}/slot\
 full_parent:(u32[],u32[])/slot\
 trees:{euler:{root:u32,tin:u32[],tout:u32[],order:u32[]},edge_child:u32[]}/slot\
 slot_of:u32[]\
 note:bytes";

/// The layout hash stamped into (and expected from) engine snapshots.
pub fn engine_layout_hash() -> u64 {
    fnv1a(ENGINE_LAYOUT.as_bytes())
}

fn bad(section: &'static str, detail: &'static str) -> SnapshotError {
    SnapshotError::Malformed { section, detail }
}

/// Encode a parent row as two parallel `u32` arrays (vertex, edge) with
/// `u32::MAX` standing for `None` in both.
fn store_parent_row(w: &mut Writer, row: &[ParentEntry]) {
    let mut pv = Vec::with_capacity(row.len());
    let mut pe = Vec::with_capacity(row.len());
    for entry in row {
        match entry {
            Some((v, e)) => {
                pv.push(v.0);
                pe.push(e.0);
            }
            None => {
                pv.push(u32::MAX);
                pe.push(u32::MAX);
            }
        }
    }
    w.put_u32_slice(&pv);
    w.put_u32_slice(&pe);
}

/// Decode a parent row of length `n` whose vertex entries must be `< n` and
/// whose edge entries must be `< m`; the two sentinel arrays must agree on
/// which entries are `None`.
fn load_parent_row(
    r: &mut Reader<'_>,
    section: &'static str,
    n: usize,
    m: usize,
) -> Result<Vec<ParentEntry>, SnapshotError> {
    let pv = r.get_u32_vec()?;
    let pe = r.get_u32_vec()?;
    if pv.len() != n || pe.len() != n {
        return Err(bad(section, "parent row length mismatch"));
    }
    pv.into_iter()
        .zip(pe)
        .map(|(v, e)| match (v, e) {
            (u32::MAX, u32::MAX) => Ok(None),
            (u32::MAX, _) | (_, u32::MAX) => {
                Err(bad(section, "parent entry sentinel disagreement"))
            }
            (v, e) if (v as usize) < n && (e as usize) < m => Ok(Some((VertexId(v), EdgeId(e)))),
            _ => Err(bad(section, "parent entry out of range")),
        })
        .collect()
}

/// Encode an `Option<VertexId>` array with `u32::MAX` standing for `None`.
fn store_opt_vertex_row(w: &mut Writer, row: &[Option<VertexId>]) {
    let flat: Vec<u32> = row.iter().map(|v| v.map_or(u32::MAX, |v| v.0)).collect();
    w.put_u32_slice(&flat);
}

fn load_opt_vertex_row(
    r: &mut Reader<'_>,
    section: &'static str,
    expected_len: usize,
    n: usize,
) -> Result<Vec<Option<VertexId>>, SnapshotError> {
    let flat = r.get_u32_vec()?;
    if flat.len() != expected_len {
        return Err(bad(section, "array length mismatch"));
    }
    flat.into_iter()
        .map(|v| match v {
            u32::MAX => Ok(None),
            v if (v as usize) < n => Ok(Some(VertexId(v))),
            _ => Err(bad(section, "vertex id out of range")),
        })
        .collect()
}

impl EngineCore {
    /// Serialize the whole preprocessed core to snapshot bytes.
    ///
    /// `note` is an opaque application payload stored verbatim in its own
    /// section and returned by [`EngineCore::read_snapshot`]; the serving
    /// tier uses it to embed the `EngineSpec` the core was built from.
    /// Serialization is deterministic: the same core (and note) always
    /// produces byte-identical output, so `save → load → save` is a
    /// byte-level fixed point.
    pub fn write_snapshot(&self, note: &[u8]) -> Vec<u8> {
        let mut snap = SnapshotWriter::new();
        snap.section(SECTION_GRAPH, |w| self.graph.store(w));
        snap.section(SECTION_STRUCTURE, |w| self.structure.store(w));
        snap.section(SECTION_SOURCES, |w| {
            let flat: Vec<u32> = self.sources.iter().map(|s| s.0).collect();
            w.put_u32_slice(&flat);
        });
        snap.section(SECTION_H, |w| self.h.store_into(w));
        snap.section(SECTION_AUG, |w| match &self.aug {
            None => w.put_u8(0),
            Some(aug) => {
                w.put_u8(1);
                aug.csr.store_into(w);
                aug.coverage.store(w);
                w.put_u64(aug.fault_free_parent.len() as u64);
                for row in &aug.fault_free_parent {
                    store_parent_row(w, row);
                }
            }
        });
        snap.section(SECTION_ROWS, |w| {
            w.put_u64(self.fault_free.len() as u64);
            for row in &self.fault_free {
                w.put_u32_slice(&row.dist);
                store_parent_row(w, &row.parent);
            }
        });
        snap.section(SECTION_FULL_PARENT, |w| {
            w.put_u64(self.full_parent.len() as u64);
            for row in &self.full_parent {
                store_parent_row(w, row);
            }
        });
        snap.section(SECTION_TREES, |w| {
            w.put_u64(self.trees.len() as u64);
            for tree in &self.trees {
                tree.euler.store_into(w);
                store_opt_vertex_row(w, &tree.edge_child);
            }
        });
        snap.section(SECTION_SLOT_OF, |w| w.put_u32_slice(&self.slot_of));
        snap.raw_section(SECTION_NOTE, note.to_vec());
        snap.finish(engine_layout_hash(), self.graph.fingerprint())
    }

    /// Decode a core from snapshot bytes, returning it together with the
    /// opaque note payload the snapshot was written with.
    ///
    /// `options` supplies the serving-side knobs (they are not part of the
    /// snapshot). The decoded graph's recomputed
    /// [`fingerprint`](Graph::fingerprint) must match the one in the header
    /// — a mismatch yields [`SnapshotError::GraphMismatch`] — and every
    /// cross-array invariant the query paths rely on is revalidated, so a
    /// file that decodes is safe to serve from.
    ///
    /// # Errors
    ///
    /// Any malformed, truncated, corrupted, version-skewed or wrong-schema
    /// input returns the corresponding [`SnapshotError`]; this function
    /// never panics on untrusted bytes.
    pub fn read_snapshot(
        bytes: &[u8],
        options: EngineOptions,
    ) -> Result<(Self, Vec<u8>), SnapshotError> {
        let t_load = std::time::Instant::now();
        let snap = SnapshotReader::parse(bytes, engine_layout_hash())?;

        let mut r = snap.section(SECTION_GRAPH)?;
        let graph = Graph::load(&mut r)?;
        r.finish("graph")?;
        if graph.fingerprint() != snap.fingerprint() {
            return Err(SnapshotError::GraphMismatch {
                expected: snap.fingerprint(),
                found: graph.fingerprint(),
            });
        }
        let n = graph.num_vertices();
        let m = graph.num_edges();

        let mut r = snap.section(SECTION_STRUCTURE)?;
        let structure = FtBfsStructure::load(&mut r)?;
        r.finish("structure")?;
        if structure.edge_set().capacity() != m {
            return Err(bad("structure", "edge space does not match the graph"));
        }
        if structure.source().index() >= n {
            return Err(bad("structure", "source out of range"));
        }

        let mut r = snap.section(SECTION_SOURCES)?;
        let sources: Vec<VertexId> = r.get_u32_vec()?.into_iter().map(VertexId).collect();
        r.finish("sources")?;
        if sources.is_empty() {
            return Err(bad("sources", "no sources"));
        }
        if sources.iter().any(|s| s.index() >= n) {
            return Err(bad("sources", "source out of range"));
        }
        let slots = sources.len();

        let mut r = snap.section(SECTION_H)?;
        let h = CompactSubgraph::load_from(&mut r, m)?;
        r.finish("h")?;
        if h.graph().num_vertices() != n {
            return Err(bad("h", "vertex space does not match the graph"));
        }

        let mut r = snap.section(SECTION_AUG)?;
        let aug = match r.get_u8()? {
            0 => None,
            1 => {
                let csr = CompactSubgraph::load_from(&mut r, m)?;
                if csr.graph().num_vertices() != n {
                    return Err(bad("aug", "vertex space does not match the graph"));
                }
                let coverage = AugmentCoverage::load(&mut r)?;
                if coverage == AugmentCoverage::Off {
                    return Err(bad("aug", "augmented tier with coverage off"));
                }
                let rows = r.get_u64()? as usize;
                if rows != slots {
                    return Err(bad("aug", "parent row count mismatch"));
                }
                let fault_free_parent = (0..rows)
                    .map(|_| load_parent_row(&mut r, "aug", n, m))
                    .collect::<Result<Vec<_>, _>>()?;
                Some(AugmentedTier {
                    csr,
                    coverage,
                    fault_free_parent,
                })
            }
            _ => return Err(bad("aug", "unknown augmentation flag")),
        };
        r.finish("aug")?;

        let mut r = snap.section(SECTION_ROWS)?;
        if r.get_u64()? as usize != slots {
            return Err(bad("rows", "row count mismatch"));
        }
        let mut fault_free = Vec::with_capacity(slots);
        for _ in 0..slots {
            let dist = r.get_u32_vec()?;
            if dist.len() != n {
                return Err(bad("rows", "distance row length mismatch"));
            }
            let parent = load_parent_row(&mut r, "rows", n, m)?;
            fault_free.push(FaultFreeRow { dist, parent });
        }
        r.finish("rows")?;

        let mut r = snap.section(SECTION_FULL_PARENT)?;
        if r.get_u64()? as usize != slots {
            return Err(bad("full_parent", "row count mismatch"));
        }
        let full_parent = (0..slots)
            .map(|_| load_parent_row(&mut r, "full_parent", n, m))
            .collect::<Result<Vec<_>, _>>()?;
        r.finish("full_parent")?;

        let mut r = snap.section(SECTION_TREES)?;
        if r.get_u64()? as usize != slots {
            return Err(bad("trees", "tree count mismatch"));
        }
        let mut trees = Vec::with_capacity(slots);
        for _ in 0..slots {
            let euler = EulerTourIndex::load_from(&mut r, n)?;
            let edge_child = load_opt_vertex_row(&mut r, "trees", h.num_edges(), n)?;
            trees.push(SlotTree { euler, edge_child });
        }
        r.finish("trees")?;

        let mut r = snap.section(SECTION_SLOT_OF)?;
        let slot_of = r.get_u32_vec()?;
        r.finish("slot_of")?;
        if slot_of.len() != n {
            return Err(bad("slot_of", "length does not match vertex count"));
        }
        if slot_of
            .iter()
            .any(|&s| s != u32::MAX && s as usize >= slots)
        {
            return Err(bad("slot_of", "slot index out of range"));
        }

        let note = snap.section_bytes(SECTION_NOTE)?.to_vec();

        Ok((
            EngineCore {
                graph,
                structure,
                sources,
                h,
                aug,
                fault_free,
                full_parent,
                trees,
                slot_of,
                options,
                build_timings: vec![("snapshot_load", t_load.elapsed().as_nanos() as u64)],
                token: next_core_token(),
            },
            note,
        ))
    }
}
