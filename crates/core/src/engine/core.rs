//! The immutable, shareable half of the query engine: [`EngineCore`] and its
//! construction-time options.

use super::context::QueryContext;
use super::{ParentEntry, SweepScratch, Tier};
use crate::error::FtbfsError;
use crate::ftbfs::{AugmentCoverage, AugmentedStructure};
use crate::mbfs::MultiSourceStructure;
use crate::structure::FtBfsStructure;
use ftb_graph::{CompactSubgraph, EdgeId, Fault, FaultSet, Graph, VertexId};
use ftb_par::ParallelConfig;
use ftb_sp::UNREACHABLE;
use ftb_tree::EulerTourIndex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable disabling the incremental row repair and the
/// unaffected-target fast path: when set to `1`/`true`, every cache miss
/// runs a full CSR sweep and every query resolves a materialized row — the
/// pre-repair behaviour. This is the differential-testing escape hatch: the
/// repaired rows are asserted byte-identical against exactly this mode.
/// Explicit [`EngineOptions::with_force_full_sweep`] settings are never
/// overridden; the variable only seeds the default.
pub const FORCE_FULL_SWEEP_ENV: &str = "FTBFS_FORCE_FULL_SWEEP";

/// `true` when [`FORCE_FULL_SWEEP_ENV`] asks for full sweeps.
fn force_full_sweep_from_env() -> bool {
    std::env::var(FORCE_FULL_SWEEP_ENV)
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

/// Serving-side tuning knobs, independent of how the structure was built.
///
/// Pass to [`EngineCore::build_with`] (or
/// [`FaultQueryEngine::with_options`](super::FaultQueryEngine::with_options));
/// [`EngineOptions::from_build_config`] lifts the engine-relevant fields out
/// of a [`BuildConfig`](crate::BuildConfig).
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Capacity, in distance rows, of each context's LRU of post-failure
    /// rows (keyed by fault set and source). Each row costs `O(n)` memory
    /// per context; minimum 1 (the 0.2 one-row cache behaviour).
    pub lru_rows: usize,
    /// Thread configuration for sharded `query_many` batches. Groups of
    /// queries sharing a fault set are distributed over this many
    /// workers, each with its own [`QueryContext`]. A serial configuration
    /// answers the whole batch on the calling thread.
    pub parallel: ParallelConfig,
    /// Maximum fault-set size (`|F|`) the engine accepts; larger sets are
    /// rejected with [`FtbfsError::FaultSetTooLarge`]. Answering a set that
    /// is not a single non-reinforced structure edge costs one BFS over the
    /// full graph (see the [module docs](super)), so the cap bounds the
    /// worst-case per-row work a caller can trigger. Minimum 1.
    pub max_faults: usize,
    /// Disable the incremental row repair and the unaffected-target fast
    /// path: every cache miss runs a full CSR sweep and every query
    /// resolves a materialized row. Defaults to the value of the
    /// [`FORCE_FULL_SWEEP_ENV`] environment variable (normally `false`).
    /// Answers are byte-identical either way — this knob exists for
    /// differential testing and for measuring the repair speedup.
    pub force_full_sweep: bool,
}

impl EngineOptions {
    /// Default LRU capacity: a few rows is enough to absorb interleaved
    /// queries against a small working set of failures without the memory
    /// cost growing past `O(n)` per context in spirit.
    pub const DEFAULT_LRU_ROWS: usize = 8;

    /// Default fault cap: dual failures, matching the richest regime with
    /// dedicated structures in the literature (Parter 2015). Raising it is
    /// safe — larger sets are answered by recomputed BFS — but each extra
    /// fault widens the space of distinct rows the LRU has to absorb.
    pub const DEFAULT_MAX_FAULTS: usize = 2;

    /// Default options: [`Self::DEFAULT_LRU_ROWS`] rows, the default
    /// (all-cores, env-overridable) [`ParallelConfig`] and
    /// [`Self::DEFAULT_MAX_FAULTS`] faults per query.
    pub fn new() -> Self {
        EngineOptions {
            lru_rows: Self::DEFAULT_LRU_ROWS,
            parallel: ParallelConfig::default(),
            max_faults: Self::DEFAULT_MAX_FAULTS,
            force_full_sweep: force_full_sweep_from_env(),
        }
    }

    /// Set the per-context LRU row capacity (minimum 1).
    pub fn with_lru_rows(mut self, rows: usize) -> Self {
        self.lru_rows = rows.max(1);
        self
    }

    /// Set the batch-sharding thread configuration.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Answer batches strictly on the calling thread.
    pub fn serial(mut self) -> Self {
        self.parallel = ParallelConfig::serial();
        self
    }

    /// Set the maximum accepted fault-set size (minimum 1).
    pub fn with_max_faults(mut self, max: usize) -> Self {
        self.max_faults = max.max(1);
        self
    }

    /// Force every cache miss onto a full CSR sweep and every query onto a
    /// materialized row (disables the incremental repair and the
    /// unaffected-target fast path). See [`EngineOptions::force_full_sweep`].
    pub fn with_force_full_sweep(mut self, force: bool) -> Self {
        self.force_full_sweep = force;
        self
    }

    /// Lift the engine-relevant fields out of a build configuration
    /// (LRU capacity, worker threads and the fault cap).
    pub fn from_build_config(config: &crate::BuildConfig) -> Self {
        EngineOptions {
            lru_rows: config.engine_lru_rows.max(1),
            parallel: config.parallel.clone(),
            max_faults: config.max_faults.max(1),
            force_full_sweep: force_full_sweep_from_env(),
        }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// One fault-free BFS row (distances + parents) for a served source.
#[derive(Clone, Debug)]
pub(super) struct FaultFreeRow {
    pub(super) dist: Vec<u32>,
    pub(super) parent: Vec<Option<(VertexId, EdgeId)>>,
}

static NEXT_CORE_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A fresh core-identity token. Every constructed core — assembled or loaded
/// from a snapshot — gets its own, so contexts can never be replayed against
/// a different core that merely has the same shape.
pub(super) fn next_core_token() -> u64 {
    NEXT_CORE_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// The preprocessed augmented-serving tier: the compact CSR of `H⁺` and the
/// coverage contract deciding which fault sets it may answer.
#[derive(Debug)]
pub(super) struct AugmentedTier {
    /// Compact CSR of `H⁺` (vertex ids preserved, edge ids translated).
    pub(super) csr: CompactSubgraph,
    /// The fault family the structure was constructed to answer exactly.
    pub(super) coverage: AugmentCoverage,
    /// Per-slot canonical fault-free *parent* rows over the `H⁺` adjacency.
    /// The distances equal the shared fault-free rows (every tier preserves
    /// fault-free distances), but canonical parents are adjacency-relative,
    /// so the repair path needs the `H⁺` flavour to copy unaffected entries
    /// from.
    pub(super) fault_free_parent: Vec<Vec<ParentEntry>>,
}

/// Per-slot index of the fault-free BFS tree `T0` used by the incremental
/// row repair and the unaffected-target fast path: preorder subtree
/// intervals over `T0` plus the tree-edge → child-endpoint map.
#[derive(Debug)]
pub(super) struct SlotTree {
    /// Preorder intervals: the affected set of a failed tree element is a
    /// union of `O(|F|)` contiguous ranges of `euler.order()`.
    pub(super) euler: EulerTourIndex,
    /// Child endpoint of each `T0` tree edge, indexed by **compact `H`**
    /// edge id (`None` for structure edges outside the tree).
    pub(super) edge_child: Vec<Option<VertexId>>,
}

impl SlotTree {
    /// The child endpoint under which parent-graph edge `ge` hangs in this
    /// slot's tree, if `ge` is a tree edge.
    pub(super) fn tree_edge_child(&self, h: &CompactSubgraph, ge: EdgeId) -> Option<VertexId> {
        self.edge_child
            .get(h.compact_edge(ge)?.index())
            .copied()
            .flatten()
    }
}

/// The immutable preprocessed half of the fault-query engine.
///
/// An `EngineCore` owns everything queries read and nothing they write: a
/// copy of the parent graph (for the reinforced-edge fallback), the
/// structure's edge/reinforcement sets, the compact CSR of `H`, and one
/// fault-free distance/parent row per served source. It is `Send + Sync`;
/// wrap it in an [`Arc`](std::sync::Arc) and create one [`QueryContext`] per
/// thread with [`EngineCore::new_context`] to serve queries concurrently.
///
/// Cores are built either from a single-source
/// [`FtBfsStructure`] ([`EngineCore::build`]) or from a
/// [`MultiSourceStructure`] ([`EngineCore::build_multi`]), in which case one
/// fault-free row per source is preprocessed and per-source queries all
/// resolve against the one shared union CSR.
#[derive(Debug)]
pub struct EngineCore {
    /// Owned copy of the parent graph (reinforced-edge fallback BFS).
    pub(super) graph: Graph,
    /// The served structure; for a multi-source core this is the collapsed
    /// union (edge and reinforcement sets are the union sets).
    pub(super) structure: FtBfsStructure,
    /// The served sources; queries name them by vertex id. Slot 0 is the
    /// primary source (the single source, or the first of the union).
    pub(super) sources: Vec<VertexId>,
    /// Compact CSR of `H` (vertex ids preserved, edge ids translated).
    pub(super) h: CompactSubgraph,
    /// The augmented serving tier, present when the core was built from an
    /// [`AugmentedStructure`] with non-trivial coverage.
    pub(super) aug: Option<AugmentedTier>,
    /// Fault-free rows, one per source slot.
    pub(super) fault_free: Vec<FaultFreeRow>,
    /// Canonical fault-free *parent* rows relative to the **full graph**
    /// adjacency, one per slot. Distances equal the shared fault-free rows;
    /// only the canonical-parent selection differs (it is
    /// adjacency-order-relative). The `full_graph_bfs` tier's path fast
    /// path extracts unaffected parent chains from these.
    pub(super) full_parent: Vec<Vec<ParentEntry>>,
    /// Fault-free tree indices, one per source slot (same order).
    pub(super) trees: Vec<SlotTree>,
    /// Vertex → source-slot lookup (`u32::MAX` = not a served source), so
    /// multi-source cores resolve sources in `O(1)` instead of a linear
    /// scan per query.
    pub(super) slot_of: Vec<u32>,
    pub(super) options: EngineOptions,
    /// Wall-clock nanoseconds of each preprocessing phase, in execution
    /// order ([`EngineCore::build_timings`]). Not persisted in snapshots; a
    /// loaded core reports a single `snapshot_load` phase instead.
    pub(super) build_timings: Vec<(&'static str, u64)>,
    /// Identity tying contexts to the core that created them.
    pub(super) token: u64,
}

impl EngineCore {
    /// Preprocess a single-source `structure` (built from `graph`) into a
    /// shareable core with default [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// [`FtbfsError::StructureMismatch`] when the structure's edge space does
    /// not match `graph`, [`FtbfsError::VertexOutOfRange`] when a source does
    /// not exist in `graph`, and
    /// [`FtbfsError::FaultFreeDistanceMismatch`] when the structure fails to
    /// preserve the graph's fault-free distances — together these catch a
    /// structure paired with a graph it was not built from, even one with a
    /// coincidentally matching edge count.
    pub fn build(graph: &Graph, structure: FtBfsStructure) -> Result<Self, FtbfsError> {
        Self::build_with(graph, structure, EngineOptions::default())
    }

    /// Like [`EngineCore::build`] with explicit options.
    pub fn build_with(
        graph: &Graph,
        structure: FtBfsStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let sources = vec![structure.source()];
        Self::assemble(graph, structure, sources, options, None)
    }

    /// Preprocess an [`AugmentedStructure`] into a core with an
    /// `augmented_bfs` serving tier: fault sets inside the structure's
    /// [coverage](AugmentedStructure::coverage) are answered by a
    /// banned-element BFS over the compact CSR of `H⁺ ∖ F` instead of the
    /// full-graph fallback. Serves every source the structure was augmented
    /// for.
    ///
    /// # Errors
    ///
    /// As [`EngineCore::build`], checked for every source.
    pub fn build_augmented(
        graph: &Graph,
        augmented: AugmentedStructure,
    ) -> Result<Self, FtbfsError> {
        Self::build_augmented_with(graph, augmented, EngineOptions::default())
    }

    /// Like [`EngineCore::build_augmented`] with explicit options.
    pub fn build_augmented_with(
        graph: &Graph,
        augmented: AugmentedStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let AugmentedStructure {
            base,
            edges,
            sources,
            coverage,
            stats: _,
        } = augmented;
        let aug = (coverage != AugmentCoverage::Off).then_some((edges, coverage));
        Self::assemble(graph, base, sources, options, aug)
    }

    /// Preprocess a multi-source structure into one shared core: the union
    /// `H` becomes a single compact CSR and every source gets its own
    /// fault-free row, so per-source queries are served without collapsing
    /// to the primary source.
    ///
    /// # Errors
    ///
    /// As [`EngineCore::build`], checked for every source.
    pub fn build_multi(graph: &Graph, structure: MultiSourceStructure) -> Result<Self, FtbfsError> {
        Self::build_multi_with(graph, structure, EngineOptions::default())
    }

    /// Like [`EngineCore::build_multi`] with explicit options.
    pub fn build_multi_with(
        graph: &Graph,
        structure: MultiSourceStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let sources = structure.sources().to_vec();
        Self::assemble(
            graph,
            structure.into_union_structure(),
            sources,
            options,
            None,
        )
    }

    fn assemble(
        graph: &Graph,
        structure: FtBfsStructure,
        sources: Vec<VertexId>,
        options: EngineOptions,
        aug: Option<(ftb_graph::BitSet, AugmentCoverage)>,
    ) -> Result<Self, FtbfsError> {
        if structure.edge_set().capacity() != graph.num_edges() {
            return Err(FtbfsError::StructureMismatch {
                structure_edges: structure.edge_set().capacity(),
                graph_edges: graph.num_edges(),
            });
        }
        for &s in &sources {
            if s.index() >= graph.num_vertices() {
                return Err(FtbfsError::VertexOutOfRange {
                    vertex: s,
                    num_vertices: graph.num_vertices(),
                });
            }
        }
        let t0 = std::time::Instant::now();
        let mut build_timings: Vec<(&'static str, u64)> = Vec::new();
        let mut phase_mark = t0;
        let phase_done = |timings: &mut Vec<(&'static str, u64)>,
                          mark: &mut std::time::Instant,
                          name: &'static str| {
            let now = std::time::Instant::now();
            timings.push((name, now.duration_since(*mark).as_nanos() as u64));
            *mark = now;
        };
        let h = CompactSubgraph::from_edge_set(graph, structure.edge_set());
        phase_done(&mut build_timings, &mut phase_mark, "compact_h");
        let n = graph.num_vertices();

        // Fault-free preprocessing: one BFS over H per source, cross-checked
        // against the graph's own distances. Any valid structure preserves
        // them, so a divergence means the pairing is wrong. The cross-check
        // sweep runs over the full graph with canonical parent selection,
        // so it doubles as the builder of the per-slot full-graph parent
        // rows the `full_graph_bfs` path fast path reads.
        let mut fault_free = Vec::with_capacity(sources.len());
        let mut full_parent = Vec::with_capacity(sources.len());
        let mut trees = Vec::with_capacity(sources.len());
        let mut scratch = SweepScratch::new(n);
        let mut check_dist = vec![UNREACHABLE; n];
        for &s in &sources {
            let mut row = FaultFreeRow {
                dist: vec![UNREACHABLE; n],
                parent: vec![None; n],
            };
            super::bfs_sweep(s, &mut scratch, |u| h.neighbors_parent_ids(u));
            scratch.materialize(&mut row.dist, &mut row.parent);
            let mut g_parent = vec![None; n];
            super::bfs_sweep(s, &mut scratch, |u| graph.neighbors(u));
            scratch.materialize(&mut check_dist, &mut g_parent);
            if let Some(i) = (0..check_dist.len()).find(|&i| check_dist[i] != row.dist[i]) {
                return Err(FtbfsError::FaultFreeDistanceMismatch {
                    vertex: VertexId::new(i),
                });
            }
            full_parent.push(g_parent);
            // Index the slot's tree T0 for the repair path: preorder
            // intervals plus the tree-edge → child map (every tree edge is
            // a structure edge, so compact H ids index it densely).
            let euler = EulerTourIndex::from_parents(s, &row.parent);
            let mut edge_child = vec![None; h.num_edges()];
            for (i, p) in row.parent.iter().enumerate() {
                if let Some((_, ge)) = p {
                    let ce = h.compact_edge(*ge).expect("tree edges are structure edges");
                    edge_child[ce.index()] = Some(VertexId::new(i));
                }
            }
            trees.push(SlotTree { euler, edge_child });
            fault_free.push(row);
        }
        phase_done(&mut build_timings, &mut phase_mark, "fault_free_rows");

        // The augmented tier additionally needs canonical fault-free
        // parents relative to the H⁺ adjacency (distances are the same —
        // every tier preserves fault-free distances — but canonical parent
        // selection is adjacency-order-relative).
        let aug = aug.map(|(edges, coverage)| {
            debug_assert!(
                structure.edge_set().iter().all(|e| edges.contains(e)),
                "H⁺ must contain H"
            );
            let csr = CompactSubgraph::from_edge_set(graph, &edges);
            let mut dist_buf = vec![UNREACHABLE; n];
            let fault_free_parent = sources
                .iter()
                .enumerate()
                .map(|(slot, &s)| {
                    let mut parent = vec![None; n];
                    super::bfs_sweep(s, &mut scratch, |u| csr.neighbors_parent_ids(u));
                    scratch.materialize(&mut dist_buf, &mut parent);
                    debug_assert_eq!(
                        dist_buf, fault_free[slot].dist,
                        "H⁺ must preserve fault-free distances"
                    );
                    parent
                })
                .collect();
            AugmentedTier {
                csr,
                coverage,
                fault_free_parent,
            }
        });
        phase_done(&mut build_timings, &mut phase_mark, "augmented_tier");

        let mut slot_of = vec![u32::MAX; n];
        for (slot, &s) in sources.iter().enumerate() {
            // First slot wins for a repeated source, matching the linear
            // scan this lookup replaces.
            if slot_of[s.index()] == u32::MAX {
                slot_of[s.index()] = slot as u32;
            }
        }

        phase_done(&mut build_timings, &mut phase_mark, "slot_index");

        Ok(EngineCore {
            graph: graph.clone(),
            structure,
            sources,
            h,
            aug,
            fault_free,
            full_parent,
            trees,
            slot_of,
            options,
            build_timings,
            token: next_core_token(),
        })
    }

    /// Create a fresh per-thread query context sized for this core.
    ///
    /// Contexts are cheap (`O(n)` scratch plus up to
    /// [`EngineOptions::lru_rows`] cached rows) and are the only mutable
    /// state queries need — one per worker thread is the intended pattern.
    pub fn new_context(&self) -> QueryContext {
        QueryContext::for_core(self)
    }

    /// The served structure (the collapsed union for a multi-source core).
    pub fn structure(&self) -> &FtBfsStructure {
        &self.structure
    }

    /// The parent graph (the core's owned copy).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The served sources; slot order is the row order used internally.
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// The primary source (slot 0).
    pub fn primary_source(&self) -> VertexId {
        self.sources[0]
    }

    /// The serving options the core was built with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Wall-clock nanoseconds of each preprocessing phase, in execution
    /// order: `compact_h` (the serving CSR of `H`), `fault_free_rows` (the
    /// per-source BFS rows, cross-checks and tree indices),
    /// `augmented_tier` (the `H⁺` CSR and its parent rows; ~0 without
    /// augmentation) and `slot_index`. A core loaded from a snapshot
    /// reports a single `snapshot_load` phase — the timings describe how
    /// *this* core came to exist, not how its structure was built (that is
    /// [`BuildStats`](crate::BuildStats)).
    pub fn build_timings(&self) -> &[(&'static str, u64)] {
        &self.build_timings
    }

    /// Fault-free distance `dist(s, v, G)` from the slot-`slot` source
    /// (`None` if `v` is unreachable).
    pub(super) fn fault_free_dist_slot(&self, slot: usize, v: VertexId) -> Option<u32> {
        super::finite(self.fault_free[slot].dist[v.index()])
    }

    /// Borrow the fault-free row of a source slot.
    pub(super) fn fault_free_row(&self, slot: usize) -> super::RowRefs<'_> {
        let row = &self.fault_free[slot];
        (&row.dist, &row.parent)
    }

    /// The canonical fault-free parent row a given tier's rows are built
    /// from: canonical-parent selection is adjacency-order-relative, so each
    /// serving adjacency (`H`, `H⁺`, `G`) has its own flavour. An
    /// unaffected parent chain read from this row is byte-identical to the
    /// chain the tier's materialized post-failure row would contain.
    pub(super) fn tier_parent_row(&self, slot: usize, tier: Tier) -> &[ParentEntry] {
        match tier {
            Tier::FaultFree | Tier::SparseH => &self.fault_free[slot].parent,
            Tier::Augmented => {
                let aug = self.aug.as_ref().expect("augmented tier requires aug");
                &aug.fault_free_parent[slot]
            }
            Tier::FullGraph => &self.full_parent[slot],
        }
    }

    /// Resolve a source vertex to its row slot in `O(1)` via the
    /// preprocessed vertex → slot lookup (out-of-range vertices are simply
    /// not served).
    pub(super) fn source_slot(&self, source: VertexId) -> Result<usize, FtbfsError> {
        match self.slot_of.get(source.index()) {
            Some(&slot) if slot != u32::MAX => Ok(slot as usize),
            _ => Err(FtbfsError::SourceNotServed { source }),
        }
    }

    /// The fault-free tree index of a source slot.
    pub(super) fn slot_tree(&self, slot: usize) -> &SlotTree {
        &self.trees[slot]
    }

    /// Public observable twin of the engine's internal unaffected test:
    /// `true` when `v` is provably unaffected by `faults` as seen from
    /// `source` (its canonical `T0` path avoids every failed element), so a
    /// distance query would be answered from the fault-free row with zero
    /// search. Exposed so tests and experiments can construct target sets
    /// with known classification.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::SourceNotServed`] for a source without a slot,
    /// [`FtbfsError::InvalidFault`] / [`FtbfsError::FaultSetTooLarge`] for
    /// a bad fault set, [`FtbfsError::VertexOutOfRange`] for a bad target.
    pub fn is_target_unaffected(
        &self,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<bool, FtbfsError> {
        self.check_fault_set(faults)?;
        self.check_vertex(v)?;
        let slot = self.source_slot(source)?;
        Ok(self.target_unaffected(slot, v, faults))
    }

    /// Validate one `(source, target, faults)` query without answering it,
    /// with the same checks (in the same order) as
    /// [`QueryContext::dist_after_faults_from`](super::QueryContext::dist_after_faults_from):
    /// target vertex, then fault set, then source. Lets a batching front
    /// end (e.g. the TCP server) validate a whole batch up front and still
    /// fail with exactly the error the serial query loop would have hit
    /// first.
    ///
    /// # Errors
    ///
    /// As [`QueryContext::dist_after_faults_from`](super::QueryContext::dist_after_faults_from),
    /// minus `ContextMismatch` (no context is involved).
    pub fn validate_query(
        &self,
        source: VertexId,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<(), FtbfsError> {
        self.check_vertex(v)?;
        self.check_fault_set(faults)?;
        self.source_slot(source)?;
        Ok(())
    }

    /// `true` if `v` is **provably unaffected** by `faults` as seen from
    /// slot `slot`: the canonical tree path `T0(s → v)` uses no failed tree
    /// edge and no failed vertex, so `dist(s, v, G' ∖ F) = dist(s, v, G)`
    /// for every serving subgraph `T0 ⊆ G' ⊆ G` — the fault-free row
    /// answers in `O(|F|)` with no search. Out-of-tree targets are
    /// unaffected too (they stay unreachable under any fault set).
    pub(super) fn target_unaffected(&self, slot: usize, v: VertexId, faults: &FaultSet) -> bool {
        let tree = &self.trees[slot];
        faults.iter().all(|f| match f {
            Fault::Edge(ge) => match tree.tree_edge_child(&self.h, ge) {
                Some(c) => !tree.euler.is_ancestor(c, v),
                None => true,
            },
            Fault::Vertex(u) => !tree.euler.is_ancestor(u, v),
        })
    }

    /// Collect the merged preorder intervals (into `out`, as
    /// `(start, end)` ranges over the slot tree's
    /// [`order`](EulerTourIndex::order) array) of the subtrees hanging
    /// under the failed elements of `faults`. Returns the number of
    /// affected vertices. Subtree intervals are laminar, so sorting and one
    /// merge pass suffice.
    pub(super) fn affected_intervals(
        &self,
        slot: usize,
        faults: &FaultSet,
        out: &mut Vec<(u32, u32)>,
    ) -> usize {
        let tree = &self.trees[slot];
        out.clear();
        for f in faults.iter() {
            let root = match f {
                Fault::Edge(ge) => tree.tree_edge_child(&self.h, ge),
                Fault::Vertex(u) if tree.euler.in_tree(u) => Some(u),
                Fault::Vertex(_) => None,
            };
            if let Some(r) = root {
                let range = tree.euler.subtree(r);
                out.push((range.start as u32, range.end as u32));
            }
        }
        out.sort_unstable();
        let mut w = 0usize;
        for i in 0..out.len() {
            if w > 0 && out[i].0 < out[w - 1].1 {
                out[w - 1].1 = out[w - 1].1.max(out[i].1);
            } else {
                out[w] = out[i];
                w += 1;
            }
        }
        out.truncate(w);
        out.iter().map(|&(a, b)| (b - a) as usize).sum()
    }

    /// Number of vertices whose canonical shortest path from `source` uses
    /// an element of `faults` — the *affected set* the incremental row
    /// repair re-sweeps (everything else is answered from the fault-free
    /// row). Exposed so experiments can report affected-set size
    /// distributions per workload.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::SourceNotServed`] for a source without a slot,
    /// [`FtbfsError::InvalidFault`] / [`FtbfsError::FaultSetTooLarge`] for
    /// a bad fault set.
    pub fn affected_vertex_count(
        &self,
        source: VertexId,
        faults: &FaultSet,
    ) -> Result<usize, FtbfsError> {
        self.check_fault_set(faults)?;
        let slot = self.source_slot(source)?;
        let mut intervals = Vec::new();
        Ok(self.affected_intervals(slot, faults, &mut intervals))
    }

    pub(super) fn check_vertex(&self, v: VertexId) -> Result<(), FtbfsError> {
        if v.index() >= self.graph.num_vertices() {
            return Err(FtbfsError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.graph.num_vertices(),
            });
        }
        Ok(())
    }

    pub(super) fn check_edge(&self, e: EdgeId) -> Result<(), FtbfsError> {
        if e.index() >= self.graph.num_edges() {
            return Err(FtbfsError::EdgeOutOfRange {
                edge: e,
                num_edges: self.graph.num_edges(),
            });
        }
        Ok(())
    }

    /// Validate a fault set against this core: every member id in range
    /// ([`FtbfsError::InvalidFault`]) and the set no larger than the
    /// configured [`EngineOptions::max_faults`]
    /// ([`FtbfsError::FaultSetTooLarge`]).
    pub fn check_fault_set(&self, faults: &FaultSet) -> Result<(), FtbfsError> {
        if faults.len() > self.options.max_faults {
            return Err(FtbfsError::FaultSetTooLarge {
                got: faults.len(),
                max: self.options.max_faults,
            });
        }
        if let Some(fault) = faults.first_invalid(&self.graph) {
            return Err(FtbfsError::InvalidFault {
                fault,
                num_vertices: self.graph.num_vertices(),
                num_edges: self.graph.num_edges(),
            });
        }
        Ok(())
    }

    /// `true` if `faults` cannot change any distance: every fault is an edge
    /// outside `H` (so `T0 ⊆ H ⊆ G ∖ F` survives and distances are
    /// squeezed between the fault-free values on both sides). Vertex faults
    /// never qualify — removing a vertex always changes its own row entry.
    pub(super) fn faults_preserve_distances(&self, faults: &FaultSet) -> bool {
        faults.iter().all(|f| match f {
            ftb_graph::Fault::Edge(e) => !self.structure.contains_edge(e),
            ftb_graph::Fault::Vertex(_) => false,
        })
    }

    /// The augmentation coverage the core serves with its `augmented_bfs`
    /// tier ([`AugmentCoverage::Off`] for a core built from a plain
    /// structure).
    pub fn augment_coverage(&self) -> AugmentCoverage {
        self.aug
            .as_ref()
            .map_or(AugmentCoverage::Off, |a| a.coverage)
    }

    /// Number of edges of the augmented structure `H⁺` the core serves
    /// (`None` without augmentation).
    pub fn augmented_edges(&self) -> Option<usize> {
        self.aug.as_ref().map(|a| a.csr.num_edges())
    }

    /// Route a (validated) fault set to its answering tier. Routing is a
    /// pure function of the fault set and the core's structure, so every
    /// context (and every LRU-cached row) agrees on the attribution.
    pub(super) fn route(&self, faults: &FaultSet) -> Tier {
        if self.faults_preserve_distances(faults) {
            return Tier::FaultFree;
        }
        if let Some(e) = faults.as_single_edge() {
            if self.structure.contains_edge(e) && !self.structure.is_reinforced(e) {
                return Tier::SparseH;
            }
        }
        match &self.aug {
            Some(aug) if aug.coverage.covers(faults) => Tier::Augmented,
            _ => Tier::FullGraph,
        }
    }
}
