//! The single-source serving facade: [`FaultQueryEngine`], plus the
//! edge-group sharding shared with the multi-source facade.

use super::context::QueryContext;
use super::core::{EngineCore, EngineOptions};
use super::{finite, QueryStats};
use crate::error::FtbfsError;
use crate::structure::FtBfsStructure;
use ftb_graph::{EdgeId, Graph, VertexId};
use ftb_par::parallel_map_init;
use ftb_sp::Path;
use std::sync::Arc;

/// A preprocessed query server answering post-failure distance and path
/// queries against an [`FtBfsStructure`].
///
/// This is the single-source facade over the core/context split (see the
/// [module docs](super)): it owns an `Arc`-shared [`EngineCore`] plus one
/// [`QueryContext`] and keeps the build-once/query-many API of 0.2 —
/// query methods take `&mut self` purely to reuse the context's buffers.
/// [`FaultQueryEngine::query_many`] additionally shards the batch's
/// edge-groups across worker threads (per [`EngineOptions::parallel`]),
/// each worker with its own context, with deterministic input-order
/// results. Use [`FaultQueryEngine::core`] to share the preprocessed data
/// with other threads directly.
#[derive(Clone, Debug)]
pub struct FaultQueryEngine<'g> {
    graph: &'g Graph,
    core: Arc<EngineCore>,
    ctx: QueryContext,
}

impl<'g> FaultQueryEngine<'g> {
    /// Preprocess `structure` (built from `graph`) into a query engine with
    /// default [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// See [`EngineCore::build`]: [`FtbfsError::StructureMismatch`],
    /// [`FtbfsError::VertexOutOfRange`] and
    /// [`FtbfsError::FaultFreeDistanceMismatch`] catch a structure paired
    /// with a graph it was not built from.
    pub fn new(graph: &'g Graph, structure: FtBfsStructure) -> Result<Self, FtbfsError> {
        Self::with_options(graph, structure, EngineOptions::default())
    }

    /// Like [`FaultQueryEngine::new`] with explicit serving options (LRU
    /// capacity, batch-sharding threads).
    pub fn with_options(
        graph: &'g Graph,
        structure: FtBfsStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let core = Arc::new(EngineCore::build_with(graph, structure, options)?);
        let ctx = core.new_context();
        Ok(FaultQueryEngine { graph, core, ctx })
    }

    /// Wrap an already-preprocessed shared core in a facade with its own
    /// fresh context. The core must have been built from `graph`.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::CoreGraphMismatch`] when `graph` does not match the
    /// core's graph (vertex/edge counts are compared; full preprocessing
    /// validation happened when the core was built).
    pub fn from_core(graph: &'g Graph, core: Arc<EngineCore>) -> Result<Self, FtbfsError> {
        if core.graph().num_edges() != graph.num_edges()
            || core.graph().num_vertices() != graph.num_vertices()
        {
            return Err(FtbfsError::CoreGraphMismatch {
                core_vertices: core.graph().num_vertices(),
                core_edges: core.graph().num_edges(),
                graph_vertices: graph.num_vertices(),
                graph_edges: graph.num_edges(),
            });
        }
        let ctx = core.new_context();
        Ok(FaultQueryEngine { graph, core, ctx })
    }

    /// The shared immutable core — clone the `Arc` to serve the same
    /// preprocessed data from other threads via
    /// [`EngineCore::new_context`].
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// The source vertex whose distances the engine serves.
    pub fn source(&self) -> VertexId {
        self.core.primary_source()
    }

    /// The structure the engine was built from.
    pub fn structure(&self) -> &FtBfsStructure {
        self.core.structure()
    }

    /// The parent graph the engine was built from.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Query counters accumulated since construction (sharded batch work
    /// included).
    pub fn query_stats(&self) -> QueryStats {
        self.ctx.stats()
    }

    /// Fault-free distance `dist(s, v, G)` (`None` if `v` is unreachable).
    pub fn fault_free_dist(&self, v: VertexId) -> Result<Option<u32>, FtbfsError> {
        self.core.check_vertex(v)?;
        Ok(self.core.fault_free_dist_slot(0, v))
    }

    /// Post-failure distance `dist(s, v, G ∖ {e})`.
    ///
    /// Returns `Ok(None)` when the failure disconnects `v` from the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] / [`FtbfsError::EdgeOutOfRange`] for
    /// ids outside the engine's graph.
    pub fn dist_after_fault(&mut self, v: VertexId, e: EdgeId) -> Result<Option<u32>, FtbfsError> {
        self.ctx.dist_after_fault(&self.core, v, e)
    }

    /// A concrete post-failure shortest path from the source to `v` in
    /// `G ∖ {e}`, or `Ok(None)` when the failure disconnects `v`. See
    /// [`QueryContext::path_after_fault`].
    pub fn path_after_fault(&mut self, v: VertexId, e: EdgeId) -> Result<Option<Path>, FtbfsError> {
        self.ctx.path_after_fault(&self.core, v, e)
    }

    /// Answer a batch of `(vertex, failing edge)` queries.
    ///
    /// The batch is grouped by failing edge, so each distinct failure
    /// triggers at most one BFS regardless of how many vertices are probed
    /// against it; groups needing a BFS are sharded across
    /// [`EngineOptions::parallel`] worker threads, each with its own
    /// context. Results are returned in input order and are byte-identical
    /// to the serial path; `None` marks a disconnected vertex.
    pub fn query_many(
        &mut self,
        queries: &[(VertexId, EdgeId)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        let parallel = self.core.options().parallel.clone();
        query_many_sharded(&self.core, &mut self.ctx, &parallel, queries.len(), |i| {
            let (v, e) = queries[i];
            (0, v, e)
        })
    }
}

/// One batch group: all queries (by position in the sorted order) that share
/// a failing edge and source slot.
struct EdgeGroup {
    slot: usize,
    edge: EdgeId,
    /// Range into the sorted index order.
    start: usize,
    end: usize,
}

/// The shared `query_many` orchestration of both facades (and, with a
/// serial `parallel`, of [`QueryContext::query_many`]).
///
/// `query_at` maps a batch index to `(source slot, vertex, failing edge)`;
/// the caller guarantees slots are in range. Queries are validated, grouped
/// by (slot, edge), fault-free groups are answered inline from the core's
/// rows, and the remaining groups — each needing exactly one BFS — are
/// sharded over `parallel` workers, one fresh context per worker. Results
/// land in input order; worker counters are merged into `ctx` so the
/// caller's stats stay complete.
pub(super) fn query_many_sharded<Q>(
    core: &EngineCore,
    ctx: &mut QueryContext,
    parallel: &ftb_par::ParallelConfig,
    len: usize,
    query_at: Q,
) -> Result<Vec<Option<u32>>, FtbfsError>
where
    Q: Fn(usize) -> (usize, VertexId, EdgeId) + Sync,
{
    ctx.check_core(core)?;
    for i in 0..len {
        let (_, v, e) = query_at(i);
        core.check_vertex(v)?;
        core.check_edge(e)?;
    }
    let mut order: Vec<u32> = (0..len as u32).collect();
    order.sort_by_key(|&i| {
        let (slot, _, e) = query_at(i as usize);
        (slot, e.index())
    });

    // Cut the sorted order into (slot, edge) groups.
    let mut groups: Vec<EdgeGroup> = Vec::new();
    for (pos, &qi) in order.iter().enumerate() {
        let (slot, _, e) = query_at(qi as usize);
        match groups.last_mut() {
            Some(g) if g.slot == slot && g.edge == e => g.end = pos + 1,
            _ => groups.push(EdgeGroup {
                slot,
                edge: e,
                start: pos,
                end: pos + 1,
            }),
        }
    }

    let mut results = vec![None; len];
    // Fault-free groups (edge outside H) read straight off the core's
    // preprocessed rows — no BFS, no sharding needed.
    let mut inline = QueryStats::default();
    let mut bfs_groups: Vec<EdgeGroup> = Vec::new();
    for g in groups {
        if core.structure().contains_edge(g.edge) {
            bfs_groups.push(g);
            continue;
        }
        let (dist, _) = core.fault_free_row(g.slot);
        for &qi in &order[g.start..g.end] {
            let (_, v, _) = query_at(qi as usize);
            results[qi as usize] = finite(dist[v.index()]);
        }
        inline.queries += g.end - g.start;
        inline.cached_answers += g.end - g.start;
    }
    ctx.merge_stats(&inline);

    // Shard the BFS groups: each group is one unit of work (one BFS plus its
    // row lookups), so chunk size 1 balances skew between cheap and
    // expensive failures.
    let parallel = parallel.clone().with_chunk_size(1);
    if parallel.is_serial() || bfs_groups.len() < 2 {
        for g in &bfs_groups {
            for &qi in &order[g.start..g.end] {
                let (slot, v, e) = query_at(qi as usize);
                results[qi as usize] = ctx.answer_unchecked(core, slot, v, e);
            }
        }
        return Ok(results);
    }

    let sharded = parallel_map_init(
        &parallel,
        bfs_groups.len(),
        || (core.new_context(), QueryStats::default()),
        |(wctx, seen), gi| {
            let g = &bfs_groups[gi];
            let mut answers: Vec<(u32, Option<u32>)> = Vec::with_capacity(g.end - g.start);
            for &qi in &order[g.start..g.end] {
                let (slot, v, e) = query_at(qi as usize);
                answers.push((qi, wctx.answer_unchecked(core, slot, v, e)));
            }
            // Report only this group's counter increments; the worker
            // context (and its running totals) persists across groups.
            let total = wctx.stats();
            let delta = QueryStats {
                queries: total.queries - seen.queries,
                structure_bfs_runs: total.structure_bfs_runs - seen.structure_bfs_runs,
                full_graph_bfs_runs: total.full_graph_bfs_runs - seen.full_graph_bfs_runs,
                cached_answers: total.cached_answers - seen.cached_answers,
            };
            *seen = total;
            (answers, delta)
        },
    );
    for (answers, delta) in sharded {
        for (qi, d) in answers {
            results[qi as usize] = d;
        }
        ctx.merge_stats(&delta);
    }
    Ok(results)
}
