//! The single-source serving facade: [`FaultQueryEngine`], plus the
//! fault-group sharding shared with the multi-source facade.

use super::context::QueryContext;
use super::core::{EngineCore, EngineOptions};
use super::{finite, QueryStats};
use crate::error::FtbfsError;
use crate::structure::FtBfsStructure;
use ftb_graph::{EdgeId, FaultSet, Graph, VertexId};
use ftb_par::parallel_map_init;
use ftb_sp::Path;
use std::sync::Arc;

/// A preprocessed query server answering post-failure distance and path
/// queries against an [`FtBfsStructure`].
///
/// This is the single-source facade over the core/context split (see the
/// [module docs](super)): it owns an `Arc`-shared [`EngineCore`] plus one
/// [`QueryContext`] and keeps the build-once/query-many API of 0.2 —
/// query methods take `&mut self` purely to reuse the context's buffers.
/// Single-edge failures use the historic `dist_after_fault` /
/// `path_after_fault` / `query_many` methods; arbitrary fault sets (edges
/// and vertices, `|F|` up to [`EngineOptions::max_faults`]) go through
/// [`FaultQueryEngine::dist_after_faults`] and friends — the single-edge
/// methods are thin delegations onto the same machinery.
/// [`FaultQueryEngine::query_many`] additionally shards the batch's
/// fault-groups across worker threads (per [`EngineOptions::parallel`]),
/// each worker with its own context, with deterministic input-order
/// results. Use [`FaultQueryEngine::core`] to share the preprocessed data
/// with other threads directly.
#[derive(Clone, Debug)]
pub struct FaultQueryEngine<'g> {
    graph: &'g Graph,
    core: Arc<EngineCore>,
    ctx: QueryContext,
}

impl<'g> FaultQueryEngine<'g> {
    /// Preprocess `structure` (built from `graph`) into a query engine with
    /// default [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// See [`EngineCore::build`]: [`FtbfsError::StructureMismatch`],
    /// [`FtbfsError::VertexOutOfRange`] and
    /// [`FtbfsError::FaultFreeDistanceMismatch`] catch a structure paired
    /// with a graph it was not built from.
    pub fn new(graph: &'g Graph, structure: FtBfsStructure) -> Result<Self, FtbfsError> {
        Self::with_options(graph, structure, EngineOptions::default())
    }

    /// Like [`FaultQueryEngine::new`] with explicit serving options (LRU
    /// capacity, batch-sharding threads, fault cap).
    pub fn with_options(
        graph: &'g Graph,
        structure: FtBfsStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let core = Arc::new(EngineCore::build_with(graph, structure, options)?);
        let ctx = core.new_context();
        Ok(FaultQueryEngine { graph, core, ctx })
    }

    /// Preprocess an [`AugmentedStructure`](crate::ftbfs::AugmentedStructure)
    /// into a query engine with default [`EngineOptions`]: fault sets inside
    /// the structure's coverage are answered by sparse search over
    /// `H⁺ ∖ F` (the `augmented_bfs` tier) instead of a full-graph BFS.
    ///
    /// Serves the structure's primary source; use
    /// [`MultiSourceEngine::from_augmented`](super::MultiSourceEngine::from_augmented)
    /// for per-source queries over a multi-source augmentation.
    ///
    /// # Errors
    ///
    /// As [`FaultQueryEngine::new`].
    pub fn from_augmented(
        graph: &'g Graph,
        augmented: crate::ftbfs::AugmentedStructure,
    ) -> Result<Self, FtbfsError> {
        Self::from_augmented_with_options(graph, augmented, EngineOptions::default())
    }

    /// Like [`FaultQueryEngine::from_augmented`] with explicit serving
    /// options.
    pub fn from_augmented_with_options(
        graph: &'g Graph,
        augmented: crate::ftbfs::AugmentedStructure,
        options: EngineOptions,
    ) -> Result<Self, FtbfsError> {
        let core = Arc::new(EngineCore::build_augmented_with(graph, augmented, options)?);
        let ctx = core.new_context();
        Ok(FaultQueryEngine { graph, core, ctx })
    }

    /// Wrap an already-preprocessed shared core in a facade with its own
    /// fresh context. The core must have been built from `graph`.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::CoreGraphMismatch`] when `graph` does not match the
    /// core's graph (vertex/edge counts are compared; full preprocessing
    /// validation happened when the core was built).
    pub fn from_core(graph: &'g Graph, core: Arc<EngineCore>) -> Result<Self, FtbfsError> {
        if core.graph().num_edges() != graph.num_edges()
            || core.graph().num_vertices() != graph.num_vertices()
        {
            return Err(FtbfsError::CoreGraphMismatch {
                core_vertices: core.graph().num_vertices(),
                core_edges: core.graph().num_edges(),
                graph_vertices: graph.num_vertices(),
                graph_edges: graph.num_edges(),
            });
        }
        let ctx = core.new_context();
        Ok(FaultQueryEngine { graph, core, ctx })
    }

    /// The shared immutable core — clone the `Arc` to serve the same
    /// preprocessed data from other threads via
    /// [`EngineCore::new_context`].
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// The source vertex whose distances the engine serves.
    pub fn source(&self) -> VertexId {
        self.core.primary_source()
    }

    /// The structure the engine was built from.
    pub fn structure(&self) -> &FtBfsStructure {
        self.core.structure()
    }

    /// The parent graph the engine was built from.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Query counters accumulated since construction (sharded batch work
    /// included).
    pub fn query_stats(&self) -> QueryStats {
        self.ctx.stats()
    }

    /// Attach engine metric handles to the facade's context (see
    /// [`QueryContext::attach_obs`]). Sharded batch workers spawn fresh
    /// contexts and stay uninstrumented; the whole batch is still observed
    /// as one entry-point window through the merged worker counters.
    pub fn attach_obs(&mut self, obs: std::sync::Arc<super::EngineObs>) {
        self.ctx.attach_obs(obs);
    }

    /// Fault-free distance `dist(s, v, G)` (`None` if `v` is unreachable).
    pub fn fault_free_dist(&self, v: VertexId) -> Result<Option<u32>, FtbfsError> {
        self.core.check_vertex(v)?;
        Ok(self.core.fault_free_dist_slot(0, v))
    }

    /// Post-failure distance `dist(s, v, G ∖ {e})`.
    ///
    /// Returns `Ok(None)` when the failure disconnects `v` from the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] / [`FtbfsError::EdgeOutOfRange`] for
    /// ids outside the engine's graph.
    pub fn dist_after_fault(&mut self, v: VertexId, e: EdgeId) -> Result<Option<u32>, FtbfsError> {
        self.ctx.dist_after_fault(&self.core, v, e)
    }

    /// Post-failure distance `dist(s, v, G ∖ F)` for an arbitrary fault set
    /// of edges and vertices.
    ///
    /// Returns `Ok(None)` when the faults disconnect `v` — in particular
    /// whenever `F` contains `v` itself or the source. A set that is exactly
    /// one non-reinforced structure edge is served by the paper's sparse
    /// structure; every other set is answered exactly by a recomputed BFS
    /// over `G ∖ F` (see the [module docs](super) for the complexity
    /// caveat).
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] for a bad query vertex,
    /// [`FtbfsError::InvalidFault`] / [`FtbfsError::FaultSetTooLarge`] for a
    /// bad fault set.
    pub fn dist_after_faults(
        &mut self,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<u32>, FtbfsError> {
        self.ctx.dist_after_faults(&self.core, v, faults)
    }

    /// One-to-many post-failure distances from the source to every vertex
    /// in `targets` under one shared fault set, in input order (`None`
    /// marks a disconnected target).
    ///
    /// The whole set shares one batched unaffected classification and at
    /// most one search (a target-restricted sweep or one amortised row) —
    /// see [`QueryContext::dist_many_after_faults`]. Results are
    /// byte-identical to `targets.len()` separate
    /// [`FaultQueryEngine::dist_after_faults`] calls. Errors as
    /// [`FaultQueryEngine::dist_after_faults`].
    pub fn dist_many_after_faults(
        &mut self,
        targets: &[VertexId],
        faults: &FaultSet,
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.ctx.dist_many_after_faults(&self.core, targets, faults)
    }

    /// A concrete post-failure shortest path from the source to `v` in
    /// `G ∖ {e}`, or `Ok(None)` when the failure disconnects `v`. See
    /// [`QueryContext::path_after_fault`].
    pub fn path_after_fault(&mut self, v: VertexId, e: EdgeId) -> Result<Option<Path>, FtbfsError> {
        self.ctx.path_after_fault(&self.core, v, e)
    }

    /// A concrete post-failure shortest path from the source to `v` in
    /// `G ∖ F`, avoiding every failed edge and vertex, or `Ok(None)` when
    /// the faults disconnect `v`. Errors as
    /// [`FaultQueryEngine::dist_after_faults`].
    pub fn path_after_faults(
        &mut self,
        v: VertexId,
        faults: &FaultSet,
    ) -> Result<Option<Path>, FtbfsError> {
        self.ctx.path_after_faults(&self.core, v, faults)
    }

    /// Answer a batch of `(vertex, failing edge)` queries.
    ///
    /// The batch is grouped by failing edge, so each distinct failure
    /// triggers at most one BFS per worker regardless of how many vertices
    /// are probed against it; groups needing a BFS are sharded across
    /// [`EngineOptions::parallel`] worker threads, each with its own
    /// context. Within a group, provably unaffected targets are answered
    /// by the fault-free fast path and the group's row — repaired
    /// incrementally, not fully re-swept — is only materialized when an
    /// affected target needs it. Results are returned in input order and
    /// are byte-identical to the serial path; `None` marks a disconnected
    /// vertex.
    pub fn query_many(
        &mut self,
        queries: &[(VertexId, EdgeId)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.ctx.check_core(&self.core)?;
        for &(v, e) in queries {
            self.core.check_vertex(v)?;
            self.core.check_edge(e)?;
        }
        let fault_sets: Vec<FaultSet> = queries.iter().map(|&(_, e)| FaultSet::from(e)).collect();
        let parallel = self.core.options().parallel.clone();
        let core = Arc::clone(&self.core);
        self.ctx.with_tier_obs(|ctx| {
            query_many_sharded(&core, ctx, &parallel, queries.len(), |i| {
                (0, queries[i].0, &fault_sets[i])
            })
        })
    }

    /// Answer a batch of `(vertex, fault set)` queries.
    ///
    /// Grouped by canonical fault set and sharded exactly like
    /// [`FaultQueryEngine::query_many`]; oversized groups (one hot fault
    /// probed by a large slice of the batch) are additionally split across
    /// workers so a skewed batch no longer serialises on one thread.
    pub fn query_many_faults(
        &mut self,
        queries: &[(VertexId, FaultSet)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        self.ctx.check_core(&self.core)?;
        for (v, faults) in queries {
            self.core.check_vertex(*v)?;
            self.core.check_fault_set(faults)?;
        }
        let parallel = self.core.options().parallel.clone();
        let core = Arc::clone(&self.core);
        self.ctx.with_tier_obs(|ctx| {
            query_many_sharded(&core, ctx, &parallel, queries.len(), |i| {
                (0, queries[i].0, &queries[i].1)
            })
        })
    }
}

/// One unit of sharded batch work: a contiguous range of the sorted index
/// order whose queries all share a source slot and fault set. Usually a
/// whole fault-group; oversized groups are split into several units (see
/// [`split_threshold`]).
struct WorkUnit {
    slot: usize,
    /// Range into the sorted index order.
    start: usize,
    end: usize,
}

/// Above this many queries, a single fault-group is split into multiple
/// work units so one hot fault cannot serialise a skewed batch on one
/// worker. Each unit re-resolves the group's row in its worker's context —
/// at most one extra BFS per worker that touches the fault (the LRU absorbs
/// the rest) in exchange for spreading the row lookups.
fn split_threshold(bfs_queries: usize, workers: usize) -> usize {
    const MIN_SPLIT: usize = 64;
    MIN_SPLIT.max(bfs_queries.div_ceil(4 * workers.max(1)))
}

/// The shared `query_many` orchestration of both facades (and, with a
/// serial `parallel`, of [`QueryContext::query_many`]).
///
/// `query_at` maps a batch index to `(source slot, vertex, fault set)`; the
/// **caller validates** slots, vertices and fault sets before calling.
/// Queries are grouped by (slot, canonical fault set), distance-preserving
/// groups (every fault an edge outside `H`) are answered inline from the
/// core's rows, and the remaining groups — each needing one BFS per worker
/// that touches it — are sharded over `parallel` workers, one fresh context
/// per worker, with oversized groups split across several units. Results
/// land in input order; worker counters are merged into `ctx` so the
/// caller's stats stay complete.
pub(super) fn query_many_sharded<'q, Q>(
    core: &EngineCore,
    ctx: &mut QueryContext,
    parallel: &ftb_par::ParallelConfig,
    len: usize,
    query_at: Q,
) -> Result<Vec<Option<u32>>, FtbfsError>
where
    Q: Fn(usize) -> (usize, VertexId, &'q FaultSet) + Sync,
{
    let mut order: Vec<u32> = (0..len as u32).collect();
    order.sort_by(|&a, &b| {
        let (slot_a, _, f_a) = query_at(a as usize);
        let (slot_b, _, f_b) = query_at(b as usize);
        (slot_a, f_a).cmp(&(slot_b, f_b))
    });

    // Cut the sorted order into (slot, fault set) groups.
    let mut groups: Vec<WorkUnit> = Vec::new();
    for (pos, &qi) in order.iter().enumerate() {
        let (slot, _, faults) = query_at(qi as usize);
        let same = match groups.last() {
            Some(g) => {
                let (pslot, _, pfaults) = query_at(order[g.start] as usize);
                pslot == slot && pfaults == faults
            }
            None => false,
        };
        match groups.last_mut() {
            Some(g) if same => g.end = pos + 1,
            _ => groups.push(WorkUnit {
                slot,
                start: pos,
                end: pos + 1,
            }),
        }
    }

    let mut results = vec![None; len];
    // Fault-free-routed groups (every fault an edge outside H) read
    // straight off the core's preprocessed rows — no BFS, no sharding
    // needed. Routing goes through the same `route` function as single
    // queries so the two paths can never drift apart.
    let mut inline = QueryStats::default();
    let mut bfs_units: Vec<WorkUnit> = Vec::new();
    for g in groups {
        let (_, _, faults) = query_at(order[g.start] as usize);
        if core.route(faults) != super::Tier::FaultFree {
            bfs_units.push(g);
            continue;
        }
        let (dist, _) = core.fault_free_row(g.slot);
        for &qi in &order[g.start..g.end] {
            let (_, v, _) = query_at(qi as usize);
            results[qi as usize] = finite(dist[v.index()]);
        }
        inline.queries += g.end - g.start;
        inline.cached_answers += g.end - g.start;
        inline.tiers.fault_free_row += g.end - g.start;
    }
    ctx.merge_stats(&inline);

    // Shard the BFS units: each is one BFS (in its worker's context) plus
    // its row lookups, so chunk size 1 balances skew between cheap and
    // expensive failures.
    let parallel = parallel.clone().with_chunk_size(1);
    if parallel.is_serial() {
        for g in &bfs_units {
            for &qi in &order[g.start..g.end] {
                let (slot, v, faults) = query_at(qi as usize);
                results[qi as usize] = ctx.answer_unchecked(core, slot, v, faults);
            }
        }
        return Ok(results);
    }

    // Split oversized groups so a single hot fault is shared by several
    // workers instead of serialising on one. This must happen before the
    // too-little-work bailout below: the skewed extreme — every BFS query
    // in the batch naming one fault — is exactly one group.
    let bfs_queries: usize = bfs_units.iter().map(|g| g.end - g.start).sum();
    let threshold = split_threshold(bfs_queries, parallel.threads());
    let mut units: Vec<WorkUnit> = Vec::with_capacity(bfs_units.len());
    for g in bfs_units {
        let mut start = g.start;
        while g.end - start > threshold {
            units.push(WorkUnit {
                slot: g.slot,
                start,
                end: start + threshold,
            });
            start += threshold;
        }
        units.push(WorkUnit {
            slot: g.slot,
            start,
            end: g.end,
        });
    }

    // Not enough independent units to pay for worker spawn-up.
    if units.len() < 2 {
        for g in &units {
            for &qi in &order[g.start..g.end] {
                let (slot, v, faults) = query_at(qi as usize);
                results[qi as usize] = ctx.answer_unchecked(core, slot, v, faults);
            }
        }
        return Ok(results);
    }

    let sharded = parallel_map_init(
        &parallel,
        units.len(),
        || (core.new_context(), QueryStats::default()),
        |(wctx, seen), gi| {
            let g = &units[gi];
            let mut answers: Vec<(u32, Option<u32>)> = Vec::with_capacity(g.end - g.start);
            for &qi in &order[g.start..g.end] {
                let (slot, v, faults) = query_at(qi as usize);
                answers.push((qi, wctx.answer_unchecked(core, slot, v, faults)));
            }
            // Report only this unit's counter increments; the worker
            // context (and its running totals) persists across units.
            let total = wctx.stats();
            let delta = total.delta_since(seen);
            *seen = total;
            (answers, delta)
        },
    );
    for (answers, delta) in sharded {
        for (qi, d) in answers {
            results[qi as usize] = d;
        }
        ctx.merge_stats(&delta);
    }
    Ok(results)
}
