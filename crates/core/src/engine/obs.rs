//! Engine-side observability: per-tier latency histograms and per-stage
//! timing breakdowns, recorded by [`QueryContext`](super::QueryContext)
//! when an [`EngineObs`] is attached and `ftb_obs` sampling is on.
//!
//! # Where the clock is read
//!
//! Queries on the fast tiers resolve in a few hundred nanoseconds — the
//! same order as an `Instant::now()` pair — so the engine **never** wraps
//! an individual tier lookup in its own clock reads. Instead, timing
//! happens at the *public entry points* (one clock pair per call, however
//! many targets the call answers) and the elapsed time is attributed to
//! tiers proportionally:
//!
//! * The entry captures the context's [`TierCounters`](super::TierCounters)
//!   before and after the call; the per-tier *delta* says exactly how many
//!   answers each tier produced.
//! * Each tier histogram receives `elapsed / total` once per answer
//!   ([`Histogram::record_n`]), so **histogram sample counts always equal
//!   the tier-counter deltas** — the counter-consistency invariant the
//!   observability suite asserts — and the histogram sums add up to the
//!   measured wall time (up to integer division).
//!
//! Stage histograms time the amortised, µs-scale phases only: the batched
//! interval classification, the restricted sweep, and the row
//! materialisation paths (repair or full sweep) on cache misses. Their
//! spans nest inside the entry-point window, so per-call stage sums never
//! exceed the measured wall time. Purely fast-path calls (every answer
//! from the unaffected fast path) reuse the already-measured window for
//! the `unaffected_fast_path` stage instead of reading the clock again.
//!
//! Sharded batch facades hand work to per-worker contexts created fresh
//! per batch; those contexts carry no `EngineObs` and are deliberately
//! uninstrumented (the serving stack times whole requests at the server
//! layer instead).

use ftb_obs::{Histogram, Registry};
use std::fmt;
use std::sync::Arc;

/// Metric name of the per-tier latency histograms.
pub const TIER_LATENCY_METRIC: &str = "ftb_query_tier_latency_seconds";
/// Metric name of the per-stage timing histograms.
pub const STAGE_SECONDS_METRIC: &str = "ftb_query_stage_seconds";

/// The engine's metric handles: six per-tier latency histograms (one per
/// [`TierCounters`](super::TierCounters) field) and five per-stage timing
/// histograms. Attach one to a [`QueryContext`](super::QueryContext) with
/// [`attach_obs`](super::QueryContext::attach_obs); recording only happens
/// while [`ftb_obs::sampling_enabled`] is on.
pub struct EngineObs {
    /// `tier="fault_free_row"` — answered from the preprocessed row.
    pub tier_fault_free_row: Arc<Histogram>,
    /// `tier="unaffected_fast_path"` — targeted `O(|F|)` fast path.
    pub tier_unaffected_fast_path: Arc<Histogram>,
    /// `tier="batched_unaffected"` — one-to-many interval classification.
    pub tier_batched_unaffected: Arc<Histogram>,
    /// `tier="sparse_h_bfs"` — rows over `H ∖ {e}`.
    pub tier_sparse_h_bfs: Arc<Histogram>,
    /// `tier="augmented_bfs"` — rows over `H⁺ ∖ F`.
    pub tier_augmented_bfs: Arc<Histogram>,
    /// `tier="full_graph_bfs"` — recomputed rows over `G ∖ F`.
    pub tier_full_graph_bfs: Arc<Histogram>,

    /// `stage="classify"` — the one-to-many interval classification.
    pub stage_classify: Arc<Histogram>,
    /// `stage="unaffected_fast_path"` — whole calls answered purely by the
    /// fast path (window reused from the entry-point measurement).
    pub stage_unaffected_fast_path: Arc<Histogram>,
    /// `stage="restricted_sweep"` — target-restricted repair sweeps.
    pub stage_restricted_sweep: Arc<Histogram>,
    /// `stage="row_repair"` — incremental row repairs on cache misses.
    pub stage_row_repair: Arc<Histogram>,
    /// `stage="full_sweep"` — full CSR / full-graph sweeps on cache misses.
    pub stage_full_sweep: Arc<Histogram>,
}

impl EngineObs {
    /// Register the engine's metric families in `registry` (get-or-register:
    /// repeated calls share the same cells) and return the handle bundle.
    pub fn register(registry: &Registry) -> Arc<EngineObs> {
        let tier_help = "Per-answer latency by routing tier (entry-point wall \
                         time attributed evenly across the answers of a call)";
        let tier = |t: &str| registry.histogram(TIER_LATENCY_METRIC, tier_help, &[("tier", t)]);
        let stage_help = "Wall time of amortised engine stages (classification, \
                          restricted sweeps, row materialisation)";
        let stage = |s: &str| registry.histogram(STAGE_SECONDS_METRIC, stage_help, &[("stage", s)]);
        Arc::new(EngineObs {
            tier_fault_free_row: tier("fault_free_row"),
            tier_unaffected_fast_path: tier("unaffected_fast_path"),
            tier_batched_unaffected: tier("batched_unaffected"),
            tier_sparse_h_bfs: tier("sparse_h_bfs"),
            tier_augmented_bfs: tier("augmented_bfs"),
            tier_full_graph_bfs: tier("full_graph_bfs"),
            stage_classify: stage("classify"),
            stage_unaffected_fast_path: stage("unaffected_fast_path"),
            stage_restricted_sweep: stage("restricted_sweep"),
            stage_row_repair: stage("row_repair"),
            stage_full_sweep: stage("full_sweep"),
        })
    }

    /// Free-standing handles not tied to any registry — for tests and
    /// overhead measurement, where the histograms are inspected directly.
    pub fn detached() -> Arc<EngineObs> {
        let h = || Arc::new(Histogram::new());
        Arc::new(EngineObs {
            tier_fault_free_row: h(),
            tier_unaffected_fast_path: h(),
            tier_batched_unaffected: h(),
            tier_sparse_h_bfs: h(),
            tier_augmented_bfs: h(),
            tier_full_graph_bfs: h(),
            stage_classify: h(),
            stage_unaffected_fast_path: h(),
            stage_restricted_sweep: h(),
            stage_row_repair: h(),
            stage_full_sweep: h(),
        })
    }

    /// Total samples across the six tier histograms (equals the number of
    /// answers produced while sampling was on — the counter-consistency
    /// invariant).
    pub fn tier_sample_count(&self) -> u64 {
        self.tier_fault_free_row.count()
            + self.tier_unaffected_fast_path.count()
            + self.tier_batched_unaffected.count()
            + self.tier_sparse_h_bfs.count()
            + self.tier_augmented_bfs.count()
            + self.tier_full_graph_bfs.count()
    }

    /// Sum of recorded nanoseconds across the six tier histograms (the
    /// measured entry-point wall time, up to per-answer integer division).
    pub fn tier_sample_sum(&self) -> u64 {
        self.tier_fault_free_row.snapshot().sum()
            + self.tier_unaffected_fast_path.snapshot().sum()
            + self.tier_batched_unaffected.snapshot().sum()
            + self.tier_sparse_h_bfs.snapshot().sum()
            + self.tier_augmented_bfs.snapshot().sum()
            + self.tier_full_graph_bfs.snapshot().sum()
    }

    /// Sum of recorded nanoseconds across the five stage histograms.
    pub fn stage_sample_sum(&self) -> u64 {
        self.stage_classify.snapshot().sum()
            + self.stage_unaffected_fast_path.snapshot().sum()
            + self.stage_restricted_sweep.snapshot().sum()
            + self.stage_row_repair.snapshot().sum()
            + self.stage_full_sweep.snapshot().sum()
    }
}

impl fmt::Debug for EngineObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineObs")
            .field("tier_samples", &self.tier_sample_count())
            .finish_non_exhaustive()
    }
}
