//! Construction configuration (ε, seeds, ablation toggles).

use ftb_par::ParallelConfig;

/// Configuration of the `(b, r)` FT-BFS construction.
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// The tradeoff parameter `ε ∈ [0, 1]`: the reinforcement budget is
    /// `Õ(n^{1-ε})` and the backup budget `Õ(n^{1+ε})`.
    pub eps: f64,
    /// Seed of the tie-breaking weight assignment `W` (and hence of the whole
    /// construction).
    pub seed: u64,
    /// Worker-thread configuration for the parallel sweeps.
    pub parallel: ParallelConfig,
    /// Override for the number of Phase S1 rounds (`K = ⌈1/ε⌉ + 2` when
    /// `None`). Used by the ablation experiment.
    pub k_override: Option<usize>,
    /// Override for the per-terminal Phase S1 / S2 budget (`⌈n^ε⌉` when
    /// `None`). Used by the ablation experiment.
    pub budget_override: Option<usize>,
    /// Disable the Phase S2 heavy-path-decomposition machinery (Sub-phases
    /// S2.1–S2.3). The resulting structure is still correct — the skipped
    /// pairs simply surface as additional reinforced edges — which is exactly
    /// what the ablation experiment measures.
    pub enable_phase_s2: bool,
    /// After construction, run the exact protection verifier and keep only
    /// the genuinely unprotected edges in the reinforced set (the
    /// algorithmic set from Observation 2.2 is an over-approximation).
    pub exact_reinforcement: bool,
    /// Force the ε ≥ 1/2 baseline branch regardless of `eps`.
    pub force_baseline: bool,
}

impl BuildConfig {
    /// Default configuration for a given ε.
    pub fn new(eps: f64) -> Self {
        BuildConfig {
            eps,
            seed: 0xF7B5_0001,
            parallel: ParallelConfig::default(),
            k_override: None,
            budget_override: None,
            enable_phase_s2: true,
            exact_reinforcement: false,
            force_baseline: false,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the parallel configuration.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Use a serial (single-threaded) construction.
    pub fn serial(mut self) -> Self {
        self.parallel = ParallelConfig::serial();
        self
    }

    /// The number of Phase S1 rounds: `K = ⌈1/ε⌉ + 2` (Eq. 4), unless
    /// overridden.
    pub fn k_rounds(&self) -> usize {
        if let Some(k) = self.k_override {
            return k;
        }
        if self.eps <= 0.0 {
            return 2;
        }
        (1.0 / self.eps).ceil() as usize + 2
    }

    /// The per-terminal last-edge budget `⌈n^ε⌉`, unless overridden.
    pub fn budget(&self, n: usize) -> usize {
        if let Some(b) = self.budget_override {
            return b.max(1);
        }
        ((n as f64).powf(self.eps).ceil() as usize).max(1)
    }

    /// `true` if the `ε ≥ 1/2` baseline branch should be used (the
    /// `n^{3/2}` term of Theorem 3.1 dominates there).
    pub fn use_baseline_branch(&self) -> bool {
        self.force_baseline || self.eps >= 0.5
    }
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_rounds_follow_eq_4() {
        assert_eq!(BuildConfig::new(0.5).k_rounds(), 4);
        assert_eq!(BuildConfig::new(0.25).k_rounds(), 6);
        assert_eq!(BuildConfig::new(0.1).k_rounds(), 12);
        assert_eq!(BuildConfig::new(0.0).k_rounds(), 2);
        assert_eq!(
            BuildConfig::new(0.1).with_seed(1).k_rounds(),
            12
        );
        let overridden = BuildConfig {
            k_override: Some(3),
            ..BuildConfig::new(0.1)
        };
        assert_eq!(overridden.k_rounds(), 3);
    }

    #[test]
    fn budget_is_ceil_n_to_eps() {
        let c = BuildConfig::new(0.5);
        assert_eq!(c.budget(100), 10);
        assert_eq!(c.budget(101), 11);
        let c0 = BuildConfig::new(0.0);
        assert_eq!(c0.budget(1000), 1);
        let forced = BuildConfig {
            budget_override: Some(7),
            ..BuildConfig::new(0.5)
        };
        assert_eq!(forced.budget(100), 7);
    }

    #[test]
    fn baseline_branch_selection() {
        assert!(BuildConfig::new(0.5).use_baseline_branch());
        assert!(BuildConfig::new(0.9).use_baseline_branch());
        assert!(!BuildConfig::new(0.3).use_baseline_branch());
        let forced = BuildConfig {
            force_baseline: true,
            ..BuildConfig::new(0.1)
        };
        assert!(forced.use_baseline_branch());
    }

    #[test]
    fn builder_style_setters() {
        let c = BuildConfig::new(0.2).with_seed(99).serial();
        assert_eq!(c.seed, 99);
        assert!(c.parallel.is_serial());
        assert!(c.enable_phase_s2);
        assert!(!c.exact_reinforcement);
    }
}
