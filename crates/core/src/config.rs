//! Construction configuration (ε, seeds, ablation toggles).
//!
//! [`BuildConfig`] is a fluent builder: start from [`BuildConfig::new`] (or
//! [`BuildConfig::try_new`] for checked construction) and chain `with_*`
//! setters. Validation of the whole configuration happens up front in
//! [`BuildConfig::validate`], which every [`crate::StructureBuilder`] calls
//! before doing any work.

use crate::error::FtbfsError;
use crate::ftbfs::AugmentCoverage;
use ftb_par::ParallelConfig;

/// Configuration of the `(b, r)` FT-BFS construction.
#[derive(Clone, Debug)]
pub struct BuildConfig {
    /// The tradeoff parameter `ε ∈ [0, 1]`: the reinforcement budget is
    /// `Õ(n^{1-ε})` and the backup budget `Õ(n^{1+ε})`.
    pub eps: f64,
    /// Seed of the tie-breaking weight assignment `W` (and hence of the whole
    /// construction).
    pub seed: u64,
    /// Worker-thread configuration for the parallel sweeps.
    pub parallel: ParallelConfig,
    /// Override for the number of Phase S1 rounds (`K = ⌈1/ε⌉ + 2` when
    /// `None`). Used by the ablation experiment.
    pub k_override: Option<usize>,
    /// Override for the per-terminal Phase S1 / S2 budget (`⌈n^ε⌉` when
    /// `None`). Used by the ablation experiment.
    pub budget_override: Option<usize>,
    /// Disable the Phase S2 heavy-path-decomposition machinery (Sub-phases
    /// S2.1–S2.3). The resulting structure is still correct — the skipped
    /// pairs simply surface as additional reinforced edges — which is exactly
    /// what the ablation experiment measures.
    pub enable_phase_s2: bool,
    /// After construction, run the exact protection verifier and keep only
    /// the genuinely unprotected edges in the reinforced set (the
    /// algorithmic set from Observation 2.2 is an over-approximation).
    pub exact_reinforcement: bool,
    /// Force the ε ≥ 1/2 baseline branch regardless of `eps`.
    pub force_baseline: bool,
    /// Fail the build with [`FtbfsError::DisconnectedSource`] when the source
    /// cannot reach every vertex. Off by default: unreachable vertices simply
    /// stay outside the structure, matching the legacy behaviour.
    pub require_connected: bool,
    /// Capacity (in distance rows) of the per-context LRU for fault-query
    /// engines configured from this build configuration. Structures do not
    /// carry their config, so this does **not** flow into an engine
    /// automatically: lift it with
    /// [`EngineOptions::from_build_config`](crate::engine::EngineOptions::from_build_config)
    /// and pass the result to `FaultQueryEngine::with_options` /
    /// `EngineCore::build_with`. Minimum 1 (enforced at engine
    /// construction).
    pub engine_lru_rows: usize,
    /// Maximum fault-set size (`|F|`) engines configured from this build
    /// configuration accept; larger sets are rejected with
    /// [`FtbfsError::FaultSetTooLarge`]. Like `engine_lru_rows`, lift it via
    /// [`EngineOptions::from_build_config`](crate::engine::EngineOptions::from_build_config).
    /// Default 2 (the dual-failure regime of the paper's successors);
    /// minimum 1.
    pub max_faults: usize,
    /// Replacement-path augmentation stage to run after construction
    /// ([`crate::builder::build_augmented_structure`] /
    /// [`FtBfsAugmenter::from_build_config`](crate::ftbfs::FtBfsAugmenter::from_build_config)):
    /// [`AugmentCoverage::Off`] (default) builds the plain `(b, r)`
    /// structure, [`AugmentCoverage::SingleFault`] /
    /// [`AugmentCoverage::DualFailure`] additionally build the sparse
    /// `H⁺` answering vertex faults, reinforced-edge hypotheticals and (for
    /// dual) two-failure sets without full-graph recomputation.
    pub augment: AugmentCoverage,
}

impl BuildConfig {
    /// Default configuration for a given ε. Does not validate; call
    /// [`BuildConfig::validate`] (or use [`BuildConfig::try_new`]) before
    /// building.
    pub fn new(eps: f64) -> Self {
        BuildConfig {
            eps,
            seed: 0xF7B5_0001,
            parallel: ParallelConfig::default(),
            k_override: None,
            budget_override: None,
            enable_phase_s2: true,
            exact_reinforcement: false,
            force_baseline: false,
            require_connected: false,
            engine_lru_rows: crate::engine::EngineOptions::DEFAULT_LRU_ROWS,
            max_faults: crate::engine::EngineOptions::DEFAULT_MAX_FAULTS,
            augment: AugmentCoverage::Off,
        }
    }

    /// Checked construction: like [`BuildConfig::new`] but rejects an ε
    /// outside `[0, 1]` immediately.
    pub fn try_new(eps: f64) -> Result<Self, FtbfsError> {
        let config = Self::new(eps);
        config.validate()?;
        Ok(config)
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the parallel configuration.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Use a serial (single-threaded) construction.
    pub fn serial(mut self) -> Self {
        self.parallel = ParallelConfig::serial();
        self
    }

    /// Override the number of Phase S1 rounds (ablation knob).
    pub fn with_k_override(mut self, k: Option<usize>) -> Self {
        self.k_override = k;
        self
    }

    /// Override the per-terminal budget (ablation knob).
    pub fn with_budget_override(mut self, budget: Option<usize>) -> Self {
        self.budget_override = budget;
        self
    }

    /// Enable or disable Phase S2 (ablation knob).
    pub fn with_phase_s2(mut self, enable: bool) -> Self {
        self.enable_phase_s2 = enable;
        self
    }

    /// Enable the exact-reinforcement post-pass.
    pub fn with_exact_reinforcement(mut self, exact: bool) -> Self {
        self.exact_reinforcement = exact;
        self
    }

    /// Force the ε ≥ 1/2 baseline branch.
    pub fn with_force_baseline(mut self, force: bool) -> Self {
        self.force_baseline = force;
        self
    }

    /// Require the source to reach every vertex; otherwise builds fail with
    /// [`FtbfsError::DisconnectedSource`].
    pub fn with_require_connected(mut self, require: bool) -> Self {
        self.require_connected = require;
        self
    }

    /// Set the per-context LRU row capacity of engines derived from this
    /// configuration (minimum 1).
    pub fn with_engine_lru_rows(mut self, rows: usize) -> Self {
        self.engine_lru_rows = rows.max(1);
        self
    }

    /// Set the maximum fault-set size engines derived from this
    /// configuration accept (minimum 1).
    pub fn with_max_faults(mut self, max: usize) -> Self {
        self.max_faults = max.max(1);
        self
    }

    /// Select the replacement-path augmentation stage
    /// ([`AugmentCoverage::Off`] by default).
    pub fn with_augment(mut self, coverage: AugmentCoverage) -> Self {
        self.augment = coverage;
        self
    }

    /// Validate the configuration independently of any input graph.
    ///
    /// Checks `ε ∈ [0, 1]` (finite) and that the ablation overrides describe
    /// a usable amount of work (no zero rounds / zero budget).
    pub fn validate(&self) -> Result<(), FtbfsError> {
        if !self.eps.is_finite() || !(0.0..=1.0).contains(&self.eps) {
            return Err(FtbfsError::InvalidEps { eps: self.eps });
        }
        if self.k_override == Some(0) || self.budget_override == Some(0) {
            // Report the effective values so the offending zero is visible.
            return Err(FtbfsError::BudgetOverflow {
                k_rounds: self.k_rounds(),
                budget: self.budget_override.unwrap_or(1),
            });
        }
        Ok(())
    }

    /// Validate the configuration against an `n`-vertex input: everything in
    /// [`BuildConfig::validate`] plus an overflow check of the total
    /// `K · budget · n` work envelope the phases may allocate.
    pub fn validate_for(&self, n: usize) -> Result<(), FtbfsError> {
        self.validate()?;
        let k = self.k_rounds();
        let budget = self.budget(n);
        if k.checked_mul(budget)
            .and_then(|per_terminal| per_terminal.checked_mul(n))
            .is_none()
        {
            return Err(FtbfsError::BudgetOverflow {
                k_rounds: k,
                budget,
            });
        }
        Ok(())
    }

    /// The number of Phase S1 rounds: `K = ⌈1/ε⌉ + 2` (Eq. 4), unless
    /// overridden.
    pub fn k_rounds(&self) -> usize {
        if let Some(k) = self.k_override {
            return k;
        }
        if self.eps <= 0.0 {
            return 2;
        }
        (1.0 / self.eps).ceil() as usize + 2
    }

    /// The per-terminal last-edge budget `⌈n^ε⌉`, unless overridden.
    pub fn budget(&self, n: usize) -> usize {
        if let Some(b) = self.budget_override {
            return b.max(1);
        }
        ((n as f64).powf(self.eps).ceil() as usize).max(1)
    }

    /// `true` if the `ε ≥ 1/2` baseline branch should be used (the
    /// `n^{3/2}` term of Theorem 3.1 dominates there).
    pub fn use_baseline_branch(&self) -> bool {
        self.force_baseline || self.eps >= 0.5
    }
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self::new(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_rounds_follow_eq_4() {
        assert_eq!(BuildConfig::new(0.5).k_rounds(), 4);
        assert_eq!(BuildConfig::new(0.25).k_rounds(), 6);
        assert_eq!(BuildConfig::new(0.1).k_rounds(), 12);
        assert_eq!(BuildConfig::new(0.0).k_rounds(), 2);
        assert_eq!(BuildConfig::new(0.1).with_seed(1).k_rounds(), 12);
        let overridden = BuildConfig {
            k_override: Some(3),
            ..BuildConfig::new(0.1)
        };
        assert_eq!(overridden.k_rounds(), 3);
    }

    #[test]
    fn budget_is_ceil_n_to_eps() {
        let c = BuildConfig::new(0.5);
        assert_eq!(c.budget(100), 10);
        assert_eq!(c.budget(101), 11);
        let c0 = BuildConfig::new(0.0);
        assert_eq!(c0.budget(1000), 1);
        let forced = BuildConfig {
            budget_override: Some(7),
            ..BuildConfig::new(0.5)
        };
        assert_eq!(forced.budget(100), 7);
    }

    #[test]
    fn baseline_branch_selection() {
        assert!(BuildConfig::new(0.5).use_baseline_branch());
        assert!(BuildConfig::new(0.9).use_baseline_branch());
        assert!(!BuildConfig::new(0.3).use_baseline_branch());
        let forced = BuildConfig {
            force_baseline: true,
            ..BuildConfig::new(0.1)
        };
        assert!(forced.use_baseline_branch());
    }

    #[test]
    fn builder_style_setters() {
        let c = BuildConfig::new(0.2).with_seed(99).serial();
        assert_eq!(c.seed, 99);
        assert!(c.parallel.is_serial());
        assert!(c.enable_phase_s2);
        assert!(!c.exact_reinforcement);
        let c = c
            .with_phase_s2(false)
            .with_exact_reinforcement(true)
            .with_force_baseline(true)
            .with_require_connected(true)
            .with_k_override(Some(5))
            .with_budget_override(Some(9));
        assert!(!c.enable_phase_s2);
        assert!(c.exact_reinforcement);
        assert!(c.force_baseline);
        assert!(c.require_connected);
        assert_eq!(c.k_rounds(), 5);
        assert_eq!(c.budget(1_000_000), 9);
    }

    #[test]
    fn augment_defaults_off_and_is_settable() {
        let c = BuildConfig::new(0.3);
        assert_eq!(c.augment, AugmentCoverage::Off);
        let c = c.with_augment(AugmentCoverage::DualFailure);
        assert_eq!(c.augment, AugmentCoverage::DualFailure);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn max_faults_defaults_to_two_and_clamps_to_one() {
        let c = BuildConfig::new(0.3);
        assert_eq!(c.max_faults, 2);
        assert_eq!(c.clone().with_max_faults(4).max_faults, 4);
        assert_eq!(c.with_max_faults(0).max_faults, 1);
    }

    #[test]
    fn validation_accepts_the_legal_range() {
        for eps in [0.0, 0.25, 0.5, 1.0] {
            assert!(BuildConfig::new(eps).validate().is_ok(), "eps = {eps}");
            assert!(BuildConfig::try_new(eps).is_ok());
        }
    }

    #[test]
    fn validation_rejects_bad_eps() {
        for eps in [-0.1, 1.01, f64::NAN, f64::INFINITY, -f64::INFINITY] {
            let err = BuildConfig::new(eps).validate().unwrap_err();
            assert!(
                matches!(err, FtbfsError::InvalidEps { .. }),
                "eps = {eps} gave {err:?}"
            );
            assert!(BuildConfig::try_new(eps).is_err());
        }
    }

    #[test]
    fn validation_rejects_degenerate_overrides() {
        let zero_k = BuildConfig::new(0.3).with_k_override(Some(0));
        assert!(matches!(
            zero_k.validate(),
            Err(FtbfsError::BudgetOverflow { .. })
        ));
        let zero_budget = BuildConfig::new(0.3).with_budget_override(Some(0));
        assert!(matches!(
            zero_budget.validate(),
            Err(FtbfsError::BudgetOverflow { .. })
        ));
    }

    #[test]
    fn validation_rejects_overflowing_work_envelopes() {
        let absurd = BuildConfig::new(0.3)
            .with_k_override(Some(usize::MAX))
            .with_budget_override(Some(usize::MAX));
        assert!(matches!(
            absurd.validate_for(1000),
            Err(FtbfsError::BudgetOverflow { .. })
        ));
        assert!(BuildConfig::new(0.3).validate_for(1000).is_ok());
    }
}
