//! `ftb_io` serialization for the construction-side types:
//! [`BuildStats`], [`FtBfsStructure`], [`AugmentCoverage`], [`AugmentStats`]
//! and [`AugmentedStructure`].
//!
//! These impls are pure field dumps over the public constructors/accessors;
//! the heavy flat-array payloads (bitsets) go through the bulk `ftb_io`
//! array encoding. Engine-level serialization (the full [`EngineCore`]
//! snapshot container) lives in `engine::snapshot`; it reuses these impls
//! for its `STRUCTURE` section.
//!
//! [`EngineCore`]: crate::engine::EngineCore

use crate::ftbfs::{AugmentCoverage, AugmentStats, AugmentedStructure};
use crate::stats::BuildStats;
use crate::structure::FtBfsStructure;
use ftb_graph::{BitSet, VertexId};
use ftb_io::{Load, Reader, SnapshotError, Store, Writer};

fn bad(section: &'static str, detail: &'static str) -> SnapshotError {
    SnapshotError::Malformed { section, detail }
}

impl Store for BuildStats {
    /// Sixteen `u64` counters in declaration order, the baseline flag, and
    /// five `f64` wall times (total construction plus the four phase
    /// timings).
    fn store(&self, w: &mut Writer) {
        for count in [
            self.num_vertices,
            self.num_graph_edges,
            self.num_tree_edges,
            self.num_pairs,
            self.num_uncovered_pairs,
            self.num_i1_pairs,
            self.num_i2_pairs,
            self.s1_iterations,
            self.s1_added_edges,
            self.s1_leftover_pairs,
            self.s2_glue_added_edges,
            self.s2_added_edges,
            self.s2_sim_sets,
            self.reinforced_edges,
            self.hld_levels,
            self.k_rounds,
        ] {
            w.put_u64(count as u64);
        }
        w.put_u8(self.used_baseline as u8);
        w.put_f64(self.construction_ms);
        w.put_f64(self.s0_ms);
        w.put_f64(self.s1_ms);
        w.put_f64(self.s2_ms);
        w.put_f64(self.reinforce_ms);
    }
}

impl Load for BuildStats {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut counts = [0u64; 16];
        for c in counts.iter_mut() {
            *c = r.get_u64()?;
        }
        let used_baseline = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(bad("build stats", "baseline flag is not 0/1")),
        };
        let construction_ms = r.get_f64()?;
        let s0_ms = r.get_f64()?;
        let s1_ms = r.get_f64()?;
        let s2_ms = r.get_f64()?;
        let reinforce_ms = r.get_f64()?;
        Ok(BuildStats {
            num_vertices: counts[0] as usize,
            num_graph_edges: counts[1] as usize,
            num_tree_edges: counts[2] as usize,
            num_pairs: counts[3] as usize,
            num_uncovered_pairs: counts[4] as usize,
            num_i1_pairs: counts[5] as usize,
            num_i2_pairs: counts[6] as usize,
            s1_iterations: counts[7] as usize,
            s1_added_edges: counts[8] as usize,
            s1_leftover_pairs: counts[9] as usize,
            s2_glue_added_edges: counts[10] as usize,
            s2_added_edges: counts[11] as usize,
            s2_sim_sets: counts[12] as usize,
            reinforced_edges: counts[13] as usize,
            hld_levels: counts[14] as usize,
            k_rounds: counts[15] as usize,
            used_baseline,
            construction_ms,
            s0_ms,
            s1_ms,
            s2_ms,
            reinforce_ms,
        })
    }
}

impl Store for FtBfsStructure {
    /// Source id, `ε` bits, both edge bitsets, construction stats.
    fn store(&self, w: &mut Writer) {
        w.put_u32(self.source().0);
        w.put_f64(self.eps());
        self.edge_set().store(w);
        self.reinforced_set().store(w);
        self.stats().store(w);
    }
}

impl Load for FtBfsStructure {
    /// Revalidates the structure invariant serialization cannot encode:
    /// the reinforced set must live in the same edge-id space as the edge
    /// set and be a subset of it.
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let source = VertexId(r.get_u32()?);
        let eps = r.get_f64()?;
        let edges = BitSet::load(r)?;
        let reinforced = BitSet::load(r)?;
        if reinforced.capacity() != edges.capacity() {
            return Err(bad("structure", "edge-set capacity mismatch"));
        }
        if !reinforced.iter().all(|e| edges.contains(e)) {
            return Err(bad("structure", "reinforced edge outside the edge set"));
        }
        let stats = BuildStats::load(r)?;
        Ok(FtBfsStructure::new(source, eps, edges, reinforced, stats))
    }
}

impl Store for AugmentCoverage {
    /// One byte: 0 = off, 1 = single-fault, 2 = dual-failure.
    fn store(&self, w: &mut Writer) {
        w.put_u8(match self {
            AugmentCoverage::Off => 0,
            AugmentCoverage::SingleFault => 1,
            AugmentCoverage::DualFailure => 2,
        });
    }
}

impl Load for AugmentCoverage {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(AugmentCoverage::Off),
            1 => Ok(AugmentCoverage::SingleFault),
            2 => Ok(AugmentCoverage::DualFailure),
            _ => Err(bad("augment coverage", "unknown coverage tag")),
        }
    }
}

impl Store for AugmentStats {
    /// Six `u64` counters in declaration order plus four `f64` wall times
    /// (total plus the setup / sweep / merge phase timings).
    fn store(&self, w: &mut Writer) {
        for count in [
            self.base_edges,
            self.tree_edges_added,
            self.single_added,
            self.dual_added,
            self.single_passes,
            self.dual_passes,
        ] {
            w.put_u64(count as u64);
        }
        w.put_f64(self.augment_ms);
        w.put_f64(self.setup_ms);
        w.put_f64(self.sweep_ms);
        w.put_f64(self.merge_ms);
    }
}

impl Load for AugmentStats {
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut counts = [0u64; 6];
        for c in counts.iter_mut() {
            *c = r.get_u64()?;
        }
        Ok(AugmentStats {
            base_edges: counts[0] as usize,
            tree_edges_added: counts[1] as usize,
            single_added: counts[2] as usize,
            dual_added: counts[3] as usize,
            single_passes: counts[4] as usize,
            dual_passes: counts[5] as usize,
            augment_ms: r.get_f64()?,
            setup_ms: r.get_f64()?,
            sweep_ms: r.get_f64()?,
            merge_ms: r.get_f64()?,
        })
    }
}

impl Store for AugmentedStructure {
    /// Base structure, the `H⁺` edge set, sources, coverage, counters.
    fn store(&self, w: &mut Writer) {
        self.base.store(w);
        self.edges.store(w);
        let flat: Vec<u32> = self.sources.iter().map(|s| s.0).collect();
        w.put_u32_slice(&flat);
        self.coverage.store(w);
        self.stats.store(w);
    }
}

impl Load for AugmentedStructure {
    /// Revalidates containment: `H⁺` must share the base edge-id space and
    /// contain every base edge, and at least one source must be present.
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let base = FtBfsStructure::load(r)?;
        let edges = BitSet::load(r)?;
        if edges.capacity() != base.edge_set().capacity() {
            return Err(bad("augmented structure", "edge-set capacity mismatch"));
        }
        if !base.edge_set().iter().all(|e| edges.contains(e)) {
            return Err(bad("augmented structure", "H+ does not contain H"));
        }
        let sources: Vec<VertexId> = r.get_u32_vec()?.into_iter().map(VertexId).collect();
        if sources.is_empty() {
            return Err(bad("augmented structure", "no sources"));
        }
        let coverage = AugmentCoverage::load(r)?;
        let stats = AugmentStats::load(r)?;
        Ok(AugmentedStructure {
            base,
            edges,
            sources,
            coverage,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_structure() -> FtBfsStructure {
        let mut edges = BitSet::new(10);
        for e in [0usize, 2, 5, 9] {
            edges.insert(e);
        }
        let mut reinforced = BitSet::new(10);
        reinforced.insert(2);
        let stats = BuildStats {
            num_vertices: 6,
            num_graph_edges: 10,
            reinforced_edges: 1,
            used_baseline: true,
            construction_ms: 1.5,
            ..Default::default()
        };
        FtBfsStructure::new(VertexId(3), 0.25, edges, reinforced, stats)
    }

    fn roundtrip<T: Store + Load>(value: &T) -> T {
        let mut w = Writer::new();
        value.store(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = T::load(&mut r).expect("roundtrip decodes");
        r.finish("roundtrip").expect("consumed exactly");
        out
    }

    #[test]
    fn structure_roundtrips() {
        let s = sample_structure();
        let t = roundtrip(&s);
        assert_eq!(t.source(), s.source());
        assert_eq!(t.eps(), s.eps());
        assert_eq!(t.edge_set(), s.edge_set());
        assert_eq!(t.reinforced_set(), s.reinforced_set());
        assert_eq!(t.stats(), s.stats());
    }

    #[test]
    fn structure_rejects_reinforced_outside_edges() {
        let mut edges = BitSet::new(4);
        edges.insert(0);
        let mut reinforced = BitSet::new(4);
        reinforced.insert(3); // not in edges
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_f64(0.5);
        edges.store(&mut w);
        reinforced.store(&mut w);
        BuildStats::default().store(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            FtBfsStructure::load(&mut Reader::new(&bytes)),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn augmented_structure_roundtrips() {
        let base = sample_structure();
        let mut edges = base.edge_set().clone();
        edges.insert(1);
        edges.insert(7);
        let aug = AugmentedStructure {
            base,
            edges,
            sources: vec![VertexId(3), VertexId(0)],
            coverage: AugmentCoverage::DualFailure,
            stats: AugmentStats {
                base_edges: 4,
                dual_added: 2,
                augment_ms: 0.75,
                ..Default::default()
            },
        };
        let t = roundtrip(&aug);
        assert_eq!(t.base().edge_set(), aug.base().edge_set());
        assert_eq!(t.sources(), aug.sources());
        assert_eq!(t.coverage(), aug.coverage());
        assert_eq!(t.stats(), aug.stats());
        assert!(t.edge_set().contains(7));
    }

    #[test]
    fn coverage_rejects_unknown_tag() {
        let bytes = [9u8];
        assert!(matches!(
            AugmentCoverage::load(&mut Reader::new(&bytes)),
            Err(SnapshotError::Malformed { .. })
        ));
    }
}
