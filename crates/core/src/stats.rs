//! Construction statistics reported alongside a structure.

/// Counters describing how a `(b, r)` FT-BFS structure was built; the
/// experiment harness prints these next to the headline `b`/`r` numbers and
/// the ablation experiments compare them across configurations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BuildStats {
    /// Vertices of the input graph.
    pub num_vertices: usize,
    /// Edges of the input graph.
    pub num_graph_edges: usize,
    /// Edges of the BFS tree `T0`.
    pub num_tree_edges: usize,
    /// Total vertex–edge pairs with a replacement path (Phase S0 output).
    pub num_pairs: usize,
    /// Pairs whose canonical replacement path is new-ending (the set `UP`).
    pub num_uncovered_pairs: usize,
    /// Pairs in `I1` (those with `(≁)`-interference).
    pub num_i1_pairs: usize,
    /// Pairs in `I2` (the initial `(∼)`-set).
    pub num_i2_pairs: usize,
    /// Number of Phase S1 iterations executed.
    pub s1_iterations: usize,
    /// Last edges added to `H` during Phase S1.
    pub s1_added_edges: usize,
    /// Pairs left unhandled after the K Phase S1 iterations and force-added
    /// (0 in the regime the analysis covers).
    pub s1_leftover_pairs: usize,
    /// Last edges added while protecting glue edges (Sub-phase S2.1).
    pub s2_glue_added_edges: usize,
    /// Last edges added by the segment / tree-decomposition covers
    /// (Sub-phases S2.2–S2.3).
    pub s2_added_edges: usize,
    /// Number of `(∼)`-sets processed by Phase S2.
    pub s2_sim_sets: usize,
    /// Tree edges whose chosen replacement-path last edges were not all in
    /// `H` at the end, i.e. the edges the algorithm reinforces.
    pub reinforced_edges: usize,
    /// Levels of the heavy-path decomposition Phase S2 recursed through
    /// (0 when Phase S2 did not run — ablation, baseline or ε = 0 branch).
    pub hld_levels: usize,
    /// `K = ⌈1/ε⌉ + 2` actually used (0 when the baseline branch is taken).
    pub k_rounds: usize,
    /// `true` if the `ε ≥ 1/2` baseline branch was taken.
    pub used_baseline: bool,
    /// Wall-clock milliseconds spent in construction (excluding verification).
    pub construction_ms: f64,
    /// Wall-clock ms of Phase S0 (weights, tree, replacement paths, tree
    /// index) plus the interference split. 0 on the baseline / ε = 0 branches.
    pub s0_ms: f64,
    /// Wall-clock ms of Phase S1.
    pub s1_ms: f64,
    /// Wall-clock ms of Phase S2 (0 when Phase S2 is disabled).
    pub s2_ms: f64,
    /// Wall-clock ms of the reinforcement pass.
    pub reinforce_ms: f64,
}

impl BuildStats {
    /// Total number of last edges added on top of `T0`.
    pub fn total_added_edges(&self) -> usize {
        self.s1_added_edges + self.s2_glue_added_edges + self.s2_added_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = BuildStats::default();
        assert_eq!(s.num_pairs, 0);
        assert_eq!(s.total_added_edges(), 0);
        assert!(!s.used_baseline);
    }

    #[test]
    fn total_added_sums_phases() {
        let s = BuildStats {
            s1_added_edges: 3,
            s2_glue_added_edges: 4,
            s2_added_edges: 5,
            ..Default::default()
        };
        assert_eq!(s.total_added_edges(), 12);
    }
}
