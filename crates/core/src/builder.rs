//! Unified construction: the [`StructureBuilder`] trait and its
//! implementations.
//!
//! Every way of building a fault-tolerant BFS structure — the Theorem 3.1
//! tradeoff, the ESA'13 baseline, the reinforced BFS tree and the
//! multi-source union — is exposed through one interface:
//!
//! ```
//! use ftb_core::{BuildConfig, Sources, StructureBuilder, TradeoffBuilder};
//! use ftb_graph::{generators, VertexId};
//!
//! let graph = generators::hypercube(4);
//! let builder = TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(7));
//! let structure = builder
//!     .build(&graph, &Sources::single(VertexId(0)))
//!     .expect("hypercube input is valid");
//! assert_eq!(
//!     structure.num_backup() + structure.num_reinforced(),
//!     structure.num_edges()
//! );
//! ```
//!
//! Builders validate all input up front and report problems as
//! [`FtbfsError`] values — no entry point behind this trait panics on bad
//! input. A [`BuildPlan`] value names a construction strategy in data (for
//! configuration files, CLIs and experiment sweeps) and resolves to a
//! builder via [`BuildPlan::into_builder`].

use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::ftbfs::{AugmentedStructure, FtBfsAugmenter};
use crate::mbfs::{try_build_ft_mbfs_plan, MultiSourceStructure, SingleSourcePlan};
use crate::structure::FtBfsStructure;
use ftb_graph::{Graph, VertexId};

/// The source set a structure is built for.
///
/// A structure protects distances from every listed source. Most builders
/// take a single source; the multi-source union accepts any non-empty set.
/// Emptiness is diagnosed at build time as [`FtbfsError::EmptySources`], so
/// `Sources` values can be assembled freely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sources {
    vertices: Vec<VertexId>,
}

impl Sources {
    /// A single source.
    pub fn single(source: VertexId) -> Self {
        Sources {
            vertices: vec![source],
        }
    }

    /// An arbitrary source set (order preserved, duplicates tolerated — they
    /// are ignored by the union construction).
    pub fn multi(sources: impl Into<Vec<VertexId>>) -> Self {
        Sources {
            vertices: sources.into(),
        }
    }

    /// The sources as a slice.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The first source, if any — the root of a collapsed union structure.
    pub fn primary(&self) -> Option<VertexId> {
        self.vertices.first().copied()
    }

    /// Number of sources (duplicates included).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` for an empty source set.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

impl From<VertexId> for Sources {
    fn from(v: VertexId) -> Self {
        Sources::single(v)
    }
}

impl From<Vec<VertexId>> for Sources {
    fn from(vs: Vec<VertexId>) -> Self {
        Sources::multi(vs)
    }
}

impl From<&[VertexId]> for Sources {
    fn from(vs: &[VertexId]) -> Self {
        Sources::multi(vs.to_vec())
    }
}

/// Uniform interface over every FT-BFS construction strategy.
///
/// Implementations validate `(graph, sources)` against their configuration
/// before doing any work and never panic on invalid input. For a
/// multi-element source set, single-source strategies build the union of
/// per-source structures (rooted at the first source); use
/// [`MultiSourceBuilder::build_multi`] when the per-source views are needed.
pub trait StructureBuilder {
    /// Build a fault-tolerant BFS structure over `graph` for `sources`.
    fn build(&self, graph: &Graph, sources: &Sources) -> Result<FtBfsStructure, FtbfsError>;

    /// Short human-readable strategy name (used in tables and logs).
    fn name(&self) -> &'static str;
}

fn build_with_plan(
    config: &BuildConfig,
    plan: SingleSourcePlan,
    graph: &Graph,
    sources: &Sources,
) -> Result<FtBfsStructure, FtbfsError> {
    match *sources.as_slice() {
        [] => Err(FtbfsError::EmptySources),
        [source] => {
            crate::algorithm::validate_input(graph, source, config)?;
            Ok(plan.build(graph, source, config))
        }
        _ => {
            let multi = try_build_ft_mbfs_plan(graph, sources.as_slice(), config, plan)?;
            Ok(multi.into_union_structure())
        }
    }
}

macro_rules! config_accessors {
    () => {
        /// The underlying configuration.
        pub fn config(&self) -> &BuildConfig {
            &self.config
        }

        /// Replace the configuration wholesale.
        pub fn with_config_value(mut self, config: BuildConfig) -> Self {
            self.config = config;
            self
        }

        /// Adjust the configuration through a fluent closure, e.g.
        /// `.with_config(|c| c.with_seed(7).serial())`.
        pub fn with_config(mut self, f: impl FnOnce(BuildConfig) -> BuildConfig) -> Self {
            self.config = f(self.config);
            self
        }
    };
}

/// Builder for the Theorem 3.1 reinforcement–backup tradeoff construction.
///
/// `ε` selects the point on the tradeoff curve: `Õ(n^{1+ε})` backup edges
/// against `Õ(n^{1-ε})` reinforced edges. `ε ≥ 1/2` automatically delegates
/// to the baseline branch, `ε = 0` to the reinforced tree.
#[derive(Clone, Debug)]
pub struct TradeoffBuilder {
    config: BuildConfig,
}

impl TradeoffBuilder {
    /// Tradeoff construction at the given `ε` (validated at build time).
    pub fn new(eps: f64) -> Self {
        TradeoffBuilder {
            config: BuildConfig::new(eps),
        }
    }

    /// Builder from a fully specified configuration.
    pub fn from_config(config: BuildConfig) -> Self {
        TradeoffBuilder { config }
    }

    config_accessors!();
}

impl StructureBuilder for TradeoffBuilder {
    fn build(&self, graph: &Graph, sources: &Sources) -> Result<FtBfsStructure, FtbfsError> {
        build_with_plan(&self.config, SingleSourcePlan::Tradeoff, graph, sources)
    }

    fn name(&self) -> &'static str {
        "tradeoff"
    }
}

/// Builder for the ESA'13 `Θ(n^{3/2})` FT-BFS baseline (the `ε = 1`
/// extreme): pure backup, no reinforcement.
#[derive(Clone, Debug)]
pub struct BaselineBuilder {
    config: BuildConfig,
}

impl BaselineBuilder {
    /// Baseline construction with the default configuration (`ε = 1`).
    pub fn new() -> Self {
        BaselineBuilder {
            config: BuildConfig::new(1.0),
        }
    }

    /// Builder from a fully specified configuration.
    pub fn from_config(config: BuildConfig) -> Self {
        BaselineBuilder { config }
    }

    config_accessors!();
}

impl Default for BaselineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StructureBuilder for BaselineBuilder {
    fn build(&self, graph: &Graph, sources: &Sources) -> Result<FtBfsStructure, FtbfsError> {
        build_with_plan(&self.config, SingleSourcePlan::Baseline, graph, sources)
    }

    fn name(&self) -> &'static str {
        "baseline"
    }
}

/// Builder for the `ε = 0` extreme: the BFS tree with every tree edge
/// reinforced and no backup edges.
#[derive(Clone, Debug)]
pub struct ReinforcedTreeBuilder {
    config: BuildConfig,
}

impl ReinforcedTreeBuilder {
    /// Reinforced-tree construction with the default configuration
    /// (`ε = 0`).
    pub fn new() -> Self {
        ReinforcedTreeBuilder {
            config: BuildConfig::new(0.0),
        }
    }

    /// Builder from a fully specified configuration.
    pub fn from_config(config: BuildConfig) -> Self {
        ReinforcedTreeBuilder { config }
    }

    config_accessors!();
}

impl Default for ReinforcedTreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StructureBuilder for ReinforcedTreeBuilder {
    fn build(&self, graph: &Graph, sources: &Sources) -> Result<FtBfsStructure, FtbfsError> {
        build_with_plan(
            &self.config,
            SingleSourcePlan::ReinforcedTree,
            graph,
            sources,
        )
    }

    fn name(&self) -> &'static str {
        "reinforced-tree"
    }
}

/// Builder for multi-source FT-MBFS structures (Theorem 5.4 setting).
///
/// [`StructureBuilder::build`] returns the union collapsed into a single
/// [`FtBfsStructure`]; [`MultiSourceBuilder::build_multi`] additionally
/// exposes the per-source structures.
#[derive(Clone, Debug)]
pub struct MultiSourceBuilder {
    config: BuildConfig,
}

impl MultiSourceBuilder {
    /// Multi-source tradeoff construction at the given `ε`.
    pub fn new(eps: f64) -> Self {
        MultiSourceBuilder {
            config: BuildConfig::new(eps),
        }
    }

    /// Builder from a fully specified configuration.
    pub fn from_config(config: BuildConfig) -> Self {
        MultiSourceBuilder { config }
    }

    config_accessors!();

    /// Build the full multi-source structure with per-source views.
    pub fn build_multi(
        &self,
        graph: &Graph,
        sources: &Sources,
    ) -> Result<MultiSourceStructure, FtbfsError> {
        try_build_ft_mbfs_plan(
            graph,
            sources.as_slice(),
            &self.config,
            SingleSourcePlan::Tradeoff,
        )
    }
}

impl StructureBuilder for MultiSourceBuilder {
    fn build(&self, graph: &Graph, sources: &Sources) -> Result<FtBfsStructure, FtbfsError> {
        Ok(self.build_multi(graph, sources)?.into_union_structure())
    }

    fn name(&self) -> &'static str {
        "multi-source"
    }
}

/// A construction strategy as plain data.
///
/// `BuildPlan` is the serialisable counterpart of the builder types: sweeps,
/// CLIs and config files can store a plan and resolve it to a builder at the
/// edge of the system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BuildPlan {
    /// The Theorem 3.1 tradeoff at a given `ε`.
    Tradeoff {
        /// Tradeoff parameter in `[0, 1]`.
        eps: f64,
    },
    /// The ESA'13 pure-backup baseline (`ε = 1`).
    Baseline,
    /// The reinforced BFS tree (`ε = 0`).
    ReinforcedTree,
    /// The multi-source union at a given `ε`.
    MultiSource {
        /// Tradeoff parameter in `[0, 1]`.
        eps: f64,
    },
}

impl BuildPlan {
    /// Resolve the plan into a boxed builder with the default configuration
    /// for its strategy.
    pub fn into_builder(self) -> Box<dyn StructureBuilder> {
        self.into_builder_with(|c| c)
    }

    /// Resolve the plan into a boxed builder, adjusting the configuration
    /// through `f` (e.g. to set seeds or thread counts).
    pub fn into_builder_with(
        self,
        f: impl FnOnce(BuildConfig) -> BuildConfig,
    ) -> Box<dyn StructureBuilder> {
        match self {
            BuildPlan::Tradeoff { eps } => {
                Box::new(TradeoffBuilder::from_config(f(BuildConfig::new(eps))))
            }
            BuildPlan::Baseline => Box::new(BaselineBuilder::from_config(f(BuildConfig::new(1.0)))),
            BuildPlan::ReinforcedTree => {
                Box::new(ReinforcedTreeBuilder::from_config(f(BuildConfig::new(0.0))))
            }
            BuildPlan::MultiSource { eps } => {
                Box::new(MultiSourceBuilder::from_config(f(BuildConfig::new(eps))))
            }
        }
    }

    /// Short strategy name, matching [`StructureBuilder::name`].
    pub fn name(&self) -> &'static str {
        match self {
            BuildPlan::Tradeoff { .. } => "tradeoff",
            BuildPlan::Baseline => "baseline",
            BuildPlan::ReinforcedTree => "reinforced-tree",
            BuildPlan::MultiSource { .. } => "multi-source",
        }
    }
}

/// One-call convenience: resolve `plan` with `config` and build.
///
/// The plan determines the strategy **and** the tradeoff parameter: `ε`
/// comes from the plan (or is fixed by the strategy — 1 for
/// [`BuildPlan::Baseline`], 0 for [`BuildPlan::ReinforcedTree`]), while
/// `config` supplies everything else (seed, threading, ablation knobs).
/// `config.eps` is deliberately ignored so that one base configuration can
/// drive a sweep over plans.
pub fn build_structure(
    graph: &Graph,
    sources: &Sources,
    plan: BuildPlan,
    config: &BuildConfig,
) -> Result<FtBfsStructure, FtbfsError> {
    let builder = plan.into_builder_with(|base| BuildConfig {
        eps: base.eps,
        ..config.clone()
    });
    builder.build(graph, sources)
}

/// Build per `plan` and then run the replacement-path augmentation stage
/// configured by [`BuildConfig::augment`].
///
/// This is the two-stage pipeline behind augmented serving: construct the
/// seed `(b, r)` structure exactly like [`build_structure`], then let a
/// [`FtBfsAugmenter`] (seed and thread configuration lifted from `config`)
/// extend it to `H⁺`. With [`AugmentCoverage::Off`](crate::ftbfs::AugmentCoverage::Off)
/// the result carries no extra edges and an engine built from it serves
/// exactly like one built from the plain structure.
pub fn build_augmented_structure(
    graph: &Graph,
    sources: &Sources,
    plan: BuildPlan,
    config: &BuildConfig,
) -> Result<AugmentedStructure, FtbfsError> {
    let base = build_structure(graph, sources, plan, config)?;
    FtBfsAugmenter::from_build_config(config).augment_sources(graph, base, sources.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_structure;
    use ftb_graph::generators;
    use ftb_par::ParallelConfig;
    use ftb_sp::{ShortestPathTree, TieBreakWeights};

    fn verify(graph: &Graph, s: &FtBfsStructure, seed: u64) {
        let weights = TieBreakWeights::generate(graph, seed);
        let tree = ShortestPathTree::build(graph, &weights, s.source());
        let report = verify_structure(graph, &tree, s, &ParallelConfig::serial(), false);
        assert!(report.is_valid());
    }

    #[test]
    fn every_builder_produces_a_valid_structure() {
        let g = generators::hypercube(4);
        let sources = Sources::single(VertexId(0));
        let builders: Vec<Box<dyn StructureBuilder>> = vec![
            Box::new(TradeoffBuilder::new(0.3).with_config(|c| c.with_seed(5).serial())),
            Box::new(BaselineBuilder::new().with_config(|c| c.with_seed(5).serial())),
            Box::new(ReinforcedTreeBuilder::new().with_config(|c| c.with_seed(5).serial())),
            Box::new(MultiSourceBuilder::new(0.3).with_config(|c| c.with_seed(5).serial())),
        ];
        for b in &builders {
            let s = b.build(&g, &sources).unwrap_or_else(|e| {
                panic!("builder {} failed: {e}", b.name());
            });
            verify(&g, &s, 5);
            assert_eq!(s.source(), VertexId(0), "{}", b.name());
        }
    }

    #[test]
    fn builder_names_are_distinct() {
        let names = [
            TradeoffBuilder::new(0.3).name(),
            BaselineBuilder::new().name(),
            ReinforcedTreeBuilder::new().name(),
            MultiSourceBuilder::new(0.3).name(),
        ];
        let mut uniq = names.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }

    #[test]
    fn plans_resolve_to_matching_builders() {
        for (plan, expected) in [
            (BuildPlan::Tradeoff { eps: 0.3 }, "tradeoff"),
            (BuildPlan::Baseline, "baseline"),
            (BuildPlan::ReinforcedTree, "reinforced-tree"),
            (BuildPlan::MultiSource { eps: 0.3 }, "multi-source"),
        ] {
            assert_eq!(plan.name(), expected);
            assert_eq!(plan.into_builder().name(), expected);
        }
    }

    #[test]
    fn build_structure_dispatches_on_the_plan() {
        let g = generators::grid(4, 5);
        let sources = Sources::single(VertexId(0));
        let config = BuildConfig::new(0.3).with_seed(3).serial();
        let tradeoff =
            build_structure(&g, &sources, BuildPlan::Tradeoff { eps: 0.3 }, &config).unwrap();
        let tree = build_structure(&g, &sources, BuildPlan::ReinforcedTree, &config).unwrap();
        let baseline = build_structure(&g, &sources, BuildPlan::Baseline, &config).unwrap();
        assert_eq!(tree.num_backup(), 0);
        assert_eq!(baseline.num_reinforced(), 0);
        assert!(tradeoff.num_edges() <= baseline.num_edges().max(tradeoff.num_edges()));
        verify(&g, &tradeoff, 3);
    }

    #[test]
    fn multi_source_union_is_exposed_both_ways() {
        let g = generators::grid(5, 5);
        let sources = Sources::multi(vec![VertexId(0), VertexId(24)]);
        let b = MultiSourceBuilder::new(0.25).with_config(|c| c.with_seed(7).serial());
        let multi = b.build_multi(&g, &sources).expect("valid input");
        let collapsed = b.build(&g, &sources).expect("valid input");
        assert_eq!(multi.num_edges(), collapsed.num_edges());
        assert_eq!(multi.num_reinforced(), collapsed.num_reinforced());
        assert_eq!(collapsed.source(), VertexId(0));
    }

    #[test]
    fn single_source_builders_union_over_multi_sources() {
        let g = generators::grid(5, 5);
        let sources = Sources::multi(vec![VertexId(0), VertexId(24)]);
        let s = TradeoffBuilder::new(0.25)
            .with_config(|c| c.with_seed(7).serial())
            .build(&g, &sources)
            .expect("valid input");
        let expected = MultiSourceBuilder::new(0.25)
            .with_config(|c| c.with_seed(7).serial())
            .build(&g, &sources)
            .expect("valid input");
        assert_eq!(s.num_edges(), expected.num_edges());
        assert_eq!(s.num_reinforced(), expected.num_reinforced());
    }

    #[test]
    fn builders_reject_bad_input_with_typed_errors() {
        let g = generators::grid(3, 3);
        let b = TradeoffBuilder::new(1.7);
        assert!(matches!(
            b.build(&g, &Sources::single(VertexId(0))),
            Err(FtbfsError::InvalidEps { .. })
        ));
        let b = TradeoffBuilder::new(0.3);
        assert!(matches!(
            b.build(&g, &Sources::single(VertexId(99))),
            Err(FtbfsError::SourceOutOfRange { .. })
        ));
        assert_eq!(
            b.build(&g, &Sources::multi(Vec::new())).unwrap_err(),
            FtbfsError::EmptySources
        );
    }

    #[test]
    fn sources_conversions_and_accessors() {
        let s: Sources = VertexId(3).into();
        assert_eq!(s.primary(), Some(VertexId(3)));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let m: Sources = vec![VertexId(1), VertexId(2)].into();
        assert_eq!(m.as_slice(), &[VertexId(1), VertexId(2)]);
        let from_slice: Sources = [VertexId(5)].as_slice().into();
        assert_eq!(from_slice, Sources::single(VertexId(5)));
        assert!(Sources::multi(Vec::new()).is_empty());
    }
}
