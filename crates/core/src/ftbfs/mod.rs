//! Sparse replacement-path FT-BFS structures: the successors of the
//! reproduced paper behind the same serving interface.
//!
//! The `(b, r)` tradeoff structure guarantees exactness only for single
//! non-reinforced **edge** failures; everything richer — vertex faults, dual
//! failures, reinforced-edge hypotheticals — previously fell back to a
//! recomputed BFS over the full graph `G ∖ F`. This module implements the
//! upgrade path named by the paper lineage: the single-fault structures of
//! *Sparse Fault-Tolerant BFS Trees* (Parter–Peleg, ESA 2013 / 2013 vertex
//! version) and the dual-failure regime of *Dual Failure Resilient BFS
//! Structure* (Parter 2015), realised as an **offline augmentation pass**
//! over the seed structure:
//!
//! * [`FtBfsAugmenter`] — enumerates the fault sets in the coverage family
//!   that can change a canonical shortest path, computes a canonical
//!   replacement tree per set, and adds every rerouted vertex's "last leg"
//!   (its new parent edge) to the structure;
//! * [`AugmentedStructure`] — the result `H⁺ ⊇ H`, carrying the declared
//!   [`AugmentCoverage`] and [`AugmentStats`];
//! * the serving side — [`EngineCore::build_augmented`] and the facades'
//!   `from_augmented` constructors — answers every covered fault set with a
//!   banned-element BFS over the compact CSR of `H⁺ ∖ F` instead of a
//!   full-graph recomputation.
//!
//! [`EngineCore::build_augmented`]: crate::engine::EngineCore::build_augmented
//!
//! # Why the construction is exact
//!
//! Fix the tie-breaking weights `W` and write `P(s, v, F)` for the unique
//! canonical (`(hops, Σ W)`-minimal) shortest path in `G ∖ F`. Two facts
//! drive everything:
//!
//! 1. **Prefix closure** — a prefix of a canonical path is the canonical
//!    path to its endpoint (under the same `F`).
//! 2. **Subset stability** — if `P(s, v, F′)` avoids `F ∖ F′` for some
//!    `F′ ⊆ F`, then `P(s, v, F) = P(s, v, F′)`: the minimiser over the
//!    larger graph survives in the smaller one, and minimisers are unique.
//!
//! By (2), a single fault `x` changes some canonical path only if `x` lies
//! on the canonical tree `T0` (a tree edge, or a vertex), and a second fault
//! `y` matters beyond `x` only if `y` lies on the replacement tree `T_x` of
//! `G ∖ {x}`. That bounds the enumeration: `O(n)` first-level faults, and
//! per first-level fault `O(n)` second-level edges — `O(n²)` canonical
//! trees for the dual sweep, each `O(n + m)` via
//! [`CanonicalScratch`](ftb_sp::CanonicalScratch).
//!
//! Adding the last leg of every changed path then suffices by induction on
//! path length, exactly the Parter–Peleg argument: each edge of
//! `P(s, v, F)` is the last edge of a prefix `P(s, u, F)` (by (1)), which by
//! (2) equals `P(s, u, F′)` for the minimal binding `F′ ⊆ F` — and the pass
//! for `F′` added that edge (or it is a `T0` edge, which `H⁺` always
//! contains). Hence `P(s, v, F) ⊆ H⁺` and
//! `dist(s, v, H⁺ ∖ F) = dist(s, v, G ∖ F)` for every covered `F`; the
//! reverse inequality is immediate from `H⁺ ⊆ G`.
//!
//! The covered family ([`AugmentCoverage::DualFailure`]) is every
//! `|F| ≤ 2` set with **at most one vertex fault**. Two simultaneous vertex
//! faults have no published sparse structure and keep the exact full-graph
//! fallback (see the ROADMAP decision record).
//!
//! # Size
//!
//! The single-fault layer adds the last legs of canonical replacement
//! paths, the object the papers bound by `O(n^{3/2})` edges; the dual layer
//! corresponds to Parter 2015's `O(n^{5/3})` regime. We do not re-derive
//! the bounds for the lex-canonical path choice used here — measured sizes
//! are reported per run in [`AugmentStats`] and by the
//! `exp_ftbfs_augment` experiment, and `|E(H⁺)| ≤ m` always holds since
//! `H⁺ ⊆ G`.

mod augment;
mod structure;

pub use augment::FtBfsAugmenter;
pub use structure::{AugmentCoverage, AugmentStats, AugmentedStructure};
