//! The augmented structure type: [`AugmentedStructure`], its coverage
//! contract [`AugmentCoverage`] and construction counters [`AugmentStats`].

use crate::structure::FtBfsStructure;
use ftb_graph::{BitSet, FaultSet, VertexId};

/// Which fault-set family an augmented structure answers exactly with a
/// sparse search over `H⁺ ∖ F`.
///
/// Coverage is a *contract*: the [`FtBfsAugmenter`](super::FtBfsAugmenter)
/// runs exactly the replacement-path passes the declared coverage needs, and
/// the serving engine routes a query to the augmented tier only when
/// [`AugmentCoverage::covers`] accepts its fault set — everything else falls
/// back (see the [engine docs](crate::engine)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum AugmentCoverage {
    /// No augmentation: the structure carries no extra edges and the
    /// augmented tier never fires. The default, and what a plain
    /// [`FtBfsStructure`] build corresponds to.
    #[default]
    Off,
    /// Single faults (Parter–Peleg 2013 regime): any one failed edge —
    /// including the hypothetical failure of a reinforced edge — or any one
    /// failed vertex.
    SingleFault,
    /// Dual failures (Parter 2015 regime): every fault set of size ≤ 2 with
    /// at most one vertex fault — single faults, dual edge failures, and a
    /// vertex plus an edge. Two simultaneous **vertex** faults remain
    /// outside every published sparse structure and fall back to the exact
    /// full-graph recomputation.
    DualFailure,
}

impl AugmentCoverage {
    /// `true` if a query under `faults` may be routed to the augmented tier
    /// (a banned-element BFS over `H⁺ ∖ F`) and still be exact.
    pub fn covers(&self, faults: &FaultSet) -> bool {
        let vertex_faults = faults.vertices().count();
        match self {
            AugmentCoverage::Off => false,
            AugmentCoverage::SingleFault => faults.len() == 1,
            AugmentCoverage::DualFailure => faults.len() <= 2 && vertex_faults <= 1,
        }
    }

    /// Short table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            AugmentCoverage::Off => "off",
            AugmentCoverage::SingleFault => "single-fault",
            AugmentCoverage::DualFailure => "dual-failure",
        }
    }
}

/// Counters describing one augmentation run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AugmentStats {
    /// Edges of the seed structure `H`.
    pub base_edges: usize,
    /// Canonical-tree edges inserted that the seed structure lacked
    /// (non-zero only when the augmenter's tie-break seed differs from the
    /// seed the structure was built with).
    pub tree_edges_added: usize,
    /// Last-leg edges added by the single-fault passes.
    pub single_added: usize,
    /// Last-leg edges added by the dual-failure passes.
    pub dual_added: usize,
    /// Single-fault replacement trees computed (one per faulted tree edge or
    /// vertex, summed over sources).
    pub single_passes: usize,
    /// Dual-failure replacement trees computed.
    pub dual_passes: usize,
    /// Wall-clock milliseconds spent augmenting.
    pub augment_ms: f64,
    /// Wall-clock ms setting up canonical trees and fault lists (summed over
    /// sources).
    pub setup_ms: f64,
    /// Wall-clock ms in the parallel replacement-tree sweeps (summed over
    /// sources).
    pub sweep_ms: f64,
    /// Wall-clock ms merging per-fault edge lists into `H⁺` (summed over
    /// sources).
    pub merge_ms: f64,
}

impl AugmentStats {
    /// Total edges the augmentation added on top of `H`.
    pub fn total_added(&self) -> usize {
        self.tree_edges_added + self.single_added + self.dual_added
    }
}

/// A seed FT-BFS structure `H` plus the replacement-path "last leg" edges
/// that make sparse searches exact for a declared fault family: the
/// augmented structure `H⁺ ⊇ H`.
///
/// Built by [`FtBfsAugmenter`](super::FtBfsAugmenter); served by
/// [`EngineCore::build_augmented`](crate::engine::EngineCore::build_augmented)
/// and the facades' `from_augmented` constructors. The exactness guarantee:
/// for every fault set `F` accepted by [`AugmentedStructure::covers`] and
/// every vertex `v`,
///
/// ```text
/// dist(s, v, H⁺ ∖ F) = dist(s, v, G ∖ F)
/// ```
///
/// for every source `s` in [`AugmentedStructure::sources`]. This is the
/// defining property of the Parter–Peleg 2013 single-fault and Parter 2015
/// dual-failure structures, realised here by the canonical last-leg
/// construction (see the [module docs](super) for the argument).
#[derive(Clone, Debug)]
pub struct AugmentedStructure {
    pub(crate) base: FtBfsStructure,
    /// Edge set of `H⁺` (always a superset of the base edges plus the
    /// canonical BFS tree of every source).
    pub(crate) edges: BitSet,
    pub(crate) sources: Vec<VertexId>,
    pub(crate) coverage: AugmentCoverage,
    pub(crate) stats: AugmentStats,
}

impl AugmentedStructure {
    /// The seed structure `H` the augmentation started from.
    pub fn base(&self) -> &FtBfsStructure {
        &self.base
    }

    /// The sources whose replacement paths were augmented (slot order
    /// matches the serving engine's).
    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// The primary source.
    pub fn primary_source(&self) -> VertexId {
        self.sources[0]
    }

    /// The declared (and constructed-for) fault coverage.
    pub fn coverage(&self) -> AugmentCoverage {
        self.coverage
    }

    /// `true` if a query under `faults` is inside this structure's exactness
    /// guarantee.
    pub fn covers(&self, faults: &FaultSet) -> bool {
        self.coverage.covers(faults)
    }

    /// The edge set of `H⁺` as a bitset over the parent graph's edge ids.
    pub fn edge_set(&self) -> &BitSet {
        &self.edges
    }

    /// Total number of edges `|E(H⁺)|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges added on top of the seed structure.
    pub fn added_edges(&self) -> usize {
        self.num_edges() - self.base.num_edges()
    }

    /// Augmentation counters.
    pub fn stats(&self) -> &AugmentStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::{EdgeId, Fault};

    fn set(faults: &[Fault]) -> FaultSet {
        faults.iter().copied().collect()
    }

    #[test]
    fn coverage_accepts_exactly_the_declared_family() {
        let e0 = Fault::Edge(EdgeId(0));
        let e1 = Fault::Edge(EdgeId(1));
        let v0 = Fault::Vertex(VertexId(0));
        let v1 = Fault::Vertex(VertexId(1));

        let off = AugmentCoverage::Off;
        assert!(!off.covers(&set(&[e0])));

        let single = AugmentCoverage::SingleFault;
        assert!(single.covers(&set(&[e0])));
        assert!(single.covers(&set(&[v0])));
        assert!(!single.covers(&set(&[e0, e1])));
        assert!(!single.covers(&FaultSet::new()));

        let dual = AugmentCoverage::DualFailure;
        assert!(dual.covers(&set(&[e0])));
        assert!(dual.covers(&set(&[v0])));
        assert!(dual.covers(&set(&[e0, e1])));
        assert!(dual.covers(&set(&[e0, v0])));
        assert!(!dual.covers(&set(&[v0, v1])), "dual vertex faults excluded");
        assert!(!dual.covers(&set(&[e0, e1, v0])));
    }

    #[test]
    fn coverage_ordering_and_names() {
        assert!(AugmentCoverage::Off < AugmentCoverage::SingleFault);
        assert!(AugmentCoverage::SingleFault < AugmentCoverage::DualFailure);
        assert_eq!(AugmentCoverage::default(), AugmentCoverage::Off);
        assert_eq!(AugmentCoverage::DualFailure.name(), "dual-failure");
    }

    #[test]
    fn stats_total_sums_layers() {
        let s = AugmentStats {
            tree_edges_added: 1,
            single_added: 2,
            dual_added: 4,
            ..Default::default()
        };
        assert_eq!(s.total_added(), 7);
    }
}
