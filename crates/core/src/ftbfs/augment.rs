//! The offline replacement-path augmentation pass: [`FtBfsAugmenter`].

use super::structure::{AugmentCoverage, AugmentStats, AugmentedStructure};
use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::mbfs::MultiSourceStructure;
use crate::structure::FtBfsStructure;
use ftb_graph::{EdgeId, Fault, Graph, VertexId};
use ftb_par::{parallel_map_init, ParallelConfig};
use ftb_sp::{CanonicalScratch, TieBreakWeights};
use std::time::Instant;

/// Offline augmentation stage turning a seed structure `H` into an
/// [`AugmentedStructure`] `H⁺` whose sparse searches are exact for the
/// declared [`AugmentCoverage`].
///
/// The pass enumerates fault sets in the coverage family that can actually
/// change a canonical shortest path (first-level: tree edges and vertices;
/// second-level: elements of the first fault's replacement tree — see the
/// [module docs](super) for why this enumeration is sufficient), computes
/// the canonical replacement tree of `G ∖ F` for each, and records the
/// "last leg" (the rerouted parent edge) of every vertex whose canonical
/// path changed. First-level faults are distributed over
/// [`ParallelConfig`] workers, each owning one reusable
/// [`CanonicalScratch`]; the dual sweep for a first fault runs in the same
/// task, so work units are uniformly `Θ(n)` searches wide.
///
/// ```
/// use ftb_core::ftbfs::{AugmentCoverage, FtBfsAugmenter};
/// use ftb_core::{Sources, StructureBuilder, TradeoffBuilder};
/// use ftb_graph::{generators, VertexId};
///
/// let graph = generators::hypercube(4);
/// let structure = TradeoffBuilder::new(0.3)
///     .with_config(|c| c.with_seed(7).serial())
///     .build(&graph, &Sources::single(VertexId(0)))
///     .expect("valid input");
/// let augmented = FtBfsAugmenter::new(AugmentCoverage::DualFailure)
///     .with_seed(7)
///     .serial()
///     .augment(&graph, structure)
///     .expect("matching graph");
/// assert!(augmented.num_edges() >= augmented.base().num_edges());
/// ```
#[derive(Clone, Debug)]
pub struct FtBfsAugmenter {
    coverage: AugmentCoverage,
    seed: u64,
    parallel: ParallelConfig,
}

impl FtBfsAugmenter {
    /// An augmenter for the given coverage, with the default tie-break seed
    /// and the default (env-overridable) thread configuration.
    pub fn new(coverage: AugmentCoverage) -> Self {
        FtBfsAugmenter {
            coverage,
            seed: 0xF7B5_0001,
            parallel: ParallelConfig::default(),
        }
    }

    /// Lift the augmentation-relevant fields out of a build configuration
    /// (coverage, tie-break seed, worker threads).
    pub fn from_build_config(config: &BuildConfig) -> Self {
        FtBfsAugmenter {
            coverage: config.augment,
            seed: config.seed,
            parallel: config.parallel.clone(),
        }
    }

    /// Set the tie-breaking weight seed (use the seed the structure was
    /// built with to make `H⁺ ∖ H` as small as possible — a different seed
    /// is still exact but re-adds the canonical tree).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread configuration for the replacement sweeps.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Run the sweeps on the calling thread only.
    pub fn serial(mut self) -> Self {
        self.parallel = ParallelConfig::serial();
        self
    }

    /// The coverage this augmenter constructs for.
    pub fn coverage(&self) -> AugmentCoverage {
        self.coverage
    }

    /// Augment a single-source structure for its own source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::StructureMismatch`] when the structure's edge space
    /// does not match `graph`, [`FtbfsError::SourceOutOfRange`] for a source
    /// outside the graph.
    pub fn augment(
        &self,
        graph: &Graph,
        structure: FtBfsStructure,
    ) -> Result<AugmentedStructure, FtbfsError> {
        let source = structure.source();
        self.augment_sources(graph, structure, &[source])
    }

    /// Augment a (possibly collapsed multi-source) structure for an explicit
    /// source list. Every source gets its own full set of replacement
    /// passes; the added edges are unioned.
    ///
    /// # Errors
    ///
    /// As [`FtBfsAugmenter::augment`], plus [`FtbfsError::EmptySources`] for
    /// an empty source list.
    pub fn augment_sources(
        &self,
        graph: &Graph,
        structure: FtBfsStructure,
        sources: &[VertexId],
    ) -> Result<AugmentedStructure, FtbfsError> {
        if structure.edge_set().capacity() != graph.num_edges() {
            return Err(FtbfsError::StructureMismatch {
                structure_edges: structure.edge_set().capacity(),
                graph_edges: graph.num_edges(),
            });
        }
        if sources.is_empty() {
            return Err(FtbfsError::EmptySources);
        }
        for &s in sources {
            if s.index() >= graph.num_vertices() {
                return Err(FtbfsError::SourceOutOfRange {
                    source: s,
                    num_vertices: graph.num_vertices(),
                });
            }
        }

        let start = Instant::now();
        let mut stats = AugmentStats {
            base_edges: structure.num_edges(),
            ..AugmentStats::default()
        };
        let mut edges = structure.edge_set().clone();

        if self.coverage != AugmentCoverage::Off {
            let weights = TieBreakWeights::generate(graph, self.seed);
            let dual = self.coverage >= AugmentCoverage::DualFailure;
            for &source in sources {
                self.augment_one_source(graph, &weights, source, dual, &mut edges, &mut stats);
            }
        }
        stats.augment_ms = start.elapsed().as_secs_f64() * 1e3;

        Ok(AugmentedStructure {
            base: structure,
            edges,
            sources: sources.to_vec(),
            coverage: self.coverage,
            stats,
        })
    }

    /// Augment every source of a multi-source structure over its collapsed
    /// union.
    pub fn augment_multi(
        &self,
        graph: &Graph,
        structure: MultiSourceStructure,
    ) -> Result<AugmentedStructure, FtbfsError> {
        let sources = structure.sources().to_vec();
        self.augment_sources(graph, structure.into_union_structure(), &sources)
    }

    /// One source's worth of passes: the canonical tree, the single-fault
    /// sweep, and (when `dual`) the pair sweep.
    fn augment_one_source(
        &self,
        graph: &Graph,
        weights: &TieBreakWeights,
        source: VertexId,
        dual: bool,
        edges: &mut ftb_graph::BitSet,
        stats: &mut AugmentStats,
    ) {
        let n = graph.num_vertices();
        let t_setup = Instant::now();
        let mut scratch = CanonicalScratch::new(n);
        scratch.run(graph, weights, source, &[]);

        // The canonical tree T0 is the base of every replacement-path
        // prefix argument; make sure H⁺ contains it even if the structure
        // was built with a different tie-break seed.
        let mut t0_parent: Vec<Option<EdgeId>> = vec![None; n];
        let mut t0_edges: Vec<EdgeId> = Vec::new();
        for &v in scratch.visited() {
            if let Some(e) = scratch.parent_edge(v) {
                t0_parent[v.index()] = Some(e);
                t0_edges.push(e);
            }
        }
        for &e in &t0_edges {
            if !edges.contains(e.index()) {
                edges.insert(e.index());
                stats.tree_edges_added += 1;
            }
        }

        // First-level faults: every canonical tree edge (reinforced or not
        // — the augmented tier also serves reinforced-edge hypotheticals)
        // and every reachable non-source vertex. Nothing else can change a
        // canonical path on its own.
        let first_level: Vec<Fault> = t0_edges
            .iter()
            .map(|&e| Fault::Edge(e))
            .chain(
                scratch
                    .visited()
                    .iter()
                    .filter(|&&v| v != source)
                    .map(|&v| Fault::Vertex(v)),
            )
            .collect();
        stats.setup_ms += t_setup.elapsed().as_secs_f64() * 1e3;
        let t_sweep = Instant::now();

        // Each task: one single-fault tree, plus (dual) one tree per edge
        // of that replacement tree — every task is Θ(n) searches wide, so
        // chunking over first-level faults balances well. A per-worker
        // `seen` bitset dedupes within the task (pair passes for the same
        // first fault reroute the same subtrees over and over), bounding a
        // task's output at `m` edges instead of Θ(n) per pass.
        let per_fault: Vec<(Vec<EdgeId>, Vec<EdgeId>, usize)> = parallel_map_init(
            &self.parallel,
            first_level.len(),
            || {
                (
                    CanonicalScratch::new(n),
                    Vec::new(),
                    ftb_graph::BitSet::new(graph.num_edges()),
                )
            },
            |(scr, tx_edges, seen), i| {
                let x = first_level[i];
                scr.run(graph, weights, source, &[x]);
                let mut single = Vec::new();
                collect_changed_last_legs(scr, &t0_parent, source, seen, &mut single);
                let mut dual_added = Vec::new();
                let mut dual_passes = 0usize;
                if dual {
                    scr.collect_tree_edges(tx_edges);
                    for &fe in tx_edges.iter() {
                        let f = Fault::Edge(fe);
                        debug_assert_ne!(f, x, "a banned edge cannot re-enter its own tree");
                        scr.run(graph, weights, source, &[x, f]);
                        collect_changed_last_legs(scr, &t0_parent, source, seen, &mut dual_added);
                        dual_passes += 1;
                    }
                }
                // The worker (and its bitset) outlives this task: clear
                // exactly the bits this task set.
                for &e in single.iter().chain(dual_added.iter()) {
                    seen.remove(e.index());
                }
                (single, dual_added, dual_passes)
            },
        );
        stats.sweep_ms += t_sweep.elapsed().as_secs_f64() * 1e3;
        let t_merge = Instant::now();

        // Merge the whole single-fault layer before the dual layer so the
        // per-layer `*_added` counters describe the layers themselves, not
        // the interleaving order of the sweep.
        for (single, _, dual_passes) in &per_fault {
            stats.single_passes += 1;
            stats.dual_passes += dual_passes;
            for e in single {
                if !edges.contains(e.index()) {
                    edges.insert(e.index());
                    stats.single_added += 1;
                }
            }
        }
        for (_, dual_added, _) in &per_fault {
            for e in dual_added {
                if !edges.contains(e.index()) {
                    edges.insert(e.index());
                    stats.dual_added += 1;
                }
            }
        }
        stats.merge_ms += t_merge.elapsed().as_secs_f64() * 1e3;
    }
}

/// Append the "last legs" of one replacement tree — the parent edges of
/// every vertex whose canonical parent edge differs from its fault-free
/// one — to `out`, skipping edges already recorded in `seen`.
fn collect_changed_last_legs(
    scratch: &CanonicalScratch,
    t0_parent: &[Option<EdgeId>],
    source: VertexId,
    seen: &mut ftb_graph::BitSet,
    out: &mut Vec<EdgeId>,
) {
    for &v in scratch.visited() {
        if v == source {
            continue;
        }
        let e = scratch
            .parent_edge(v)
            .expect("visited non-source vertices have parents");
        if t0_parent[v.index()] != Some(e) && !seen.contains(e.index()) {
            seen.insert(e.index());
            out.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
    use ftb_graph::generators;

    fn build(graph: &Graph, seed: u64) -> FtBfsStructure {
        TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(seed).serial())
            .build(graph, &Sources::single(VertexId(0)))
            .expect("valid input")
    }

    #[test]
    fn off_coverage_adds_nothing() {
        let g = generators::hypercube(4);
        let s = build(&g, 5);
        let base_edges = s.num_edges();
        let aug = FtBfsAugmenter::new(AugmentCoverage::Off)
            .augment(&g, s)
            .expect("matching graph");
        assert_eq!(aug.num_edges(), base_edges);
        assert_eq!(aug.added_edges(), 0);
        assert_eq!(aug.stats().single_passes, 0);
        assert_eq!(aug.coverage(), AugmentCoverage::Off);
    }

    #[test]
    fn augmentation_is_monotone_in_coverage() {
        let g = generators::hypercube(4);
        let single = FtBfsAugmenter::new(AugmentCoverage::SingleFault)
            .with_seed(5)
            .serial()
            .augment(&g, build(&g, 5))
            .expect("matching graph");
        let dual = FtBfsAugmenter::new(AugmentCoverage::DualFailure)
            .with_seed(5)
            .serial()
            .augment(&g, build(&g, 5))
            .expect("matching graph");
        assert!(single.num_edges() <= dual.num_edges());
        assert!(single.num_edges() >= single.base().num_edges());
        assert_eq!(single.stats().dual_passes, 0);
        assert!(dual.stats().dual_passes > 0);
        // H⁺ never leaves G
        assert!(dual.num_edges() <= g.num_edges());
    }

    #[test]
    fn serial_and_parallel_augmentation_agree() {
        let g = generators::grid(5, 6);
        let serial = FtBfsAugmenter::new(AugmentCoverage::DualFailure)
            .with_seed(3)
            .serial()
            .augment(&g, build(&g, 3))
            .expect("matching graph");
        let parallel = FtBfsAugmenter::new(AugmentCoverage::DualFailure)
            .with_seed(3)
            .with_parallel(ParallelConfig::with_threads(4))
            .augment(&g, build(&g, 3))
            .expect("matching graph");
        let a: Vec<usize> = serial.edge_set().iter().collect();
        let b: Vec<usize> = parallel.edge_set().iter().collect();
        assert_eq!(a, b, "augmented edge set must be thread-count independent");
    }

    #[test]
    fn mismatched_graph_and_empty_sources_are_typed_errors() {
        let g = generators::hypercube(3);
        let other = generators::grid(3, 4); // different edge count than the hypercube
        let s = build(&g, 1);
        assert!(matches!(
            FtBfsAugmenter::new(AugmentCoverage::SingleFault).augment(&other, s.clone()),
            Err(FtbfsError::StructureMismatch { .. })
        ));
        assert!(matches!(
            FtBfsAugmenter::new(AugmentCoverage::SingleFault).augment_sources(&g, s.clone(), &[]),
            Err(FtbfsError::EmptySources)
        ));
        assert!(matches!(
            FtBfsAugmenter::new(AugmentCoverage::SingleFault).augment_sources(
                &g,
                s,
                &[VertexId(99)]
            ),
            Err(FtbfsError::SourceOutOfRange { .. })
        ));
    }

    #[test]
    fn foreign_seed_readds_the_canonical_tree() {
        let g = generators::grid(4, 4);
        let s = build(&g, 1);
        let aug = FtBfsAugmenter::new(AugmentCoverage::SingleFault)
            .with_seed(999) // different canonical tree than the build's
            .serial()
            .augment(&g, s)
            .expect("matching graph");
        // Exactness is maintained regardless; the only observable cost is
        // possibly re-added tree edges.
        assert!(aug.stats().total_added() >= aug.stats().tree_edges_added);
    }
}
