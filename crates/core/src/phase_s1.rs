//! Phase S1: handling the `(≁)`-interference set `I1`.
//!
//! Phase S1 runs `K = ⌈1/ε⌉ + 2` rounds. In each round the current working
//! set is typed into A/B/C paths (Eq. 2–3); the C pairs form a `(∼)`-set and
//! are deferred to Phase S2, while for the A and B pairs the algorithm adds,
//! **per terminal**, the last edges of the replacement paths protecting the
//! `⌈n^ε⌉` deepest still-uncovered failing edges. Pairs whose last edge was
//! not added survive into the next round.
//!
//! Lemma 4.10 shows that after `K` rounds no A/B pair survives; because that
//! argument is asymptotic, the implementation defensively force-adds the last
//! edges of any survivors (and reports how many there were — the count is
//! zero on all tested workloads and the paper's regime).

use crate::config::BuildConfig;
use ftb_graph::{BitSet, VertexId};
use ftb_rp::{InterferenceIndex, PairId, ReplacementPaths};
use std::collections::HashMap;

/// Outcome of Phase S1.
#[derive(Clone, Debug, Default)]
pub struct PhaseS1Outcome {
    /// The `(∼)`-sets `P^C_1, …, P^C_K` produced by the per-round typing;
    /// Phase S2 processes them together with `I2`.
    pub sim_sets: Vec<Vec<PairId>>,
    /// Number of edges newly added to `H` by the round budgets.
    pub added_edges: usize,
    /// Number of pairs still unhandled after `K` rounds whose last edges
    /// were force-added.
    pub leftover_pairs: usize,
    /// Rounds actually executed (early exit when the working set empties).
    pub iterations: usize,
}

/// Run Phase S1 over the `(≁)`-interference set `i1`, inserting last edges
/// into the structure edge set `h`.
pub fn run_phase_s1(
    rp: &ReplacementPaths,
    interference: &InterferenceIndex<'_>,
    config: &BuildConfig,
    n: usize,
    i1: Vec<PairId>,
    h: &mut BitSet,
) -> PhaseS1Outcome {
    let mut outcome = PhaseS1Outcome::default();
    let k_rounds = config.k_rounds();
    let budget = config.budget(n);
    let mut current = i1;

    for _round in 0..k_rounds {
        if current.is_empty() {
            break;
        }
        outcome.iterations += 1;
        let (type_a, type_b, type_c) = interference.classify(&current);
        if !type_c.is_empty() {
            outcome.sim_sets.push(type_c);
        }

        // Per terminal, deepest failing edges first, add up to `budget`
        // distinct last edges for the A pairs and for the B pairs.
        let mut survivors: Vec<PairId> = Vec::new();
        let mut handled: Vec<PairId> = Vec::new();
        for class in [&type_a, &type_b] {
            let mut by_terminal: HashMap<VertexId, Vec<PairId>> = HashMap::new();
            for &p in class.iter() {
                by_terminal
                    .entry(rp.get(p).pair.terminal)
                    .or_default()
                    .push(p);
            }
            for (_v, mut pairs) in by_terminal {
                // increasing distance of the failing edge from the terminal
                // = deepest failing edges first
                pairs.sort_by_key(|&p| {
                    let item = rp.get(p);
                    (item.edge_to_terminal_distance(), item.failing_edge_depth)
                });
                let mut distinct: std::collections::HashSet<usize> =
                    std::collections::HashSet::new();
                for &p in &pairs {
                    let le = rp.get(p).last_edge;
                    if distinct.contains(&le.index()) {
                        handled.push(p);
                        continue;
                    }
                    if distinct.len() >= budget {
                        break;
                    }
                    distinct.insert(le.index());
                    if h.insert(le.index()) {
                        outcome.added_edges += 1;
                    }
                    handled.push(p);
                }
            }
        }
        let _ = handled;

        // Pairs of type A/B whose last edge is still missing survive.
        for &p in type_a.iter().chain(type_b.iter()) {
            if !h.contains(rp.get(p).last_edge.index()) {
                survivors.push(p);
            }
        }
        current = survivors;
    }

    // Defensive completion: any pair surviving all K rounds gets its last
    // edge added directly (the analysis says this set is empty).
    outcome.leftover_pairs = current.len();
    for &p in &current {
        if h.insert(rp.get(p).last_edge.index()) {
            outcome.added_edges += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::Graph;
    use ftb_par::ParallelConfig;
    use ftb_sp::{ReplacementDistances, ShortestPathTree, TieBreakWeights};
    use ftb_tree::TreeIndex;
    use ftb_workloads::families;

    struct Fixture {
        graph: Graph,
        tree: ShortestPathTree,
        rp: ReplacementPaths,
        index: TreeIndex,
    }

    fn fixture(graph: Graph, seed: u64) -> Fixture {
        let weights = TieBreakWeights::generate(&graph, seed);
        let tree = ShortestPathTree::build(&graph, &weights, VertexId(0));
        let dists = ReplacementDistances::compute(&graph, &tree, &ParallelConfig::serial());
        let rp =
            ReplacementPaths::compute(&graph, &weights, &tree, &dists, &ParallelConfig::serial());
        let index = TreeIndex::build(&tree);
        Fixture {
            graph,
            tree,
            rp,
            index,
        }
    }

    #[test]
    fn empty_i1_is_a_no_op() {
        let f = fixture(families::erdos_renyi_gnp(40, 0.1, 3), 3);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let mut h = BitSet::new(f.graph.num_edges());
        let out = run_phase_s1(
            &f.rp,
            &interference,
            &BuildConfig::new(0.3),
            f.graph.num_vertices(),
            Vec::new(),
            &mut h,
        );
        assert_eq!(out.added_edges, 0);
        assert_eq!(out.iterations, 0);
        assert!(out.sim_sets.is_empty());
        assert!(h.is_empty());
    }

    #[test]
    fn after_phase_s1_every_i1_pair_is_covered_or_deferred() {
        let f = fixture(families::erdos_renyi_gnp(90, 0.08, 7), 7);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, _i2) = interference.split_i1_i2();
        let mut h = BitSet::new(f.graph.num_edges());
        let config = BuildConfig::new(0.3);
        let out = run_phase_s1(
            &f.rp,
            &interference,
            &config,
            f.graph.num_vertices(),
            i1.clone(),
            &mut h,
        );
        // Every I1 pair either has its last edge in H or belongs to one of
        // the deferred (∼)-sets.
        let deferred: std::collections::HashSet<PairId> =
            out.sim_sets.iter().flatten().copied().collect();
        for &p in &i1 {
            let covered = h.contains(f.rp.get(p).last_edge.index());
            assert!(
                covered || deferred.contains(&p),
                "pair {p} neither covered nor deferred"
            );
        }
        assert_eq!(out.added_edges, h.len());
        assert!(out.iterations >= 1);
    }

    #[test]
    fn deferred_sets_are_sim_sets() {
        // Observation 4.11.
        let f = fixture(families::layered_random(6, 12, 3, 0.4, 11), 11);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, _) = interference.split_i1_i2();
        let mut h = BitSet::new(f.graph.num_edges());
        let out = run_phase_s1(
            &f.rp,
            &interference,
            &BuildConfig::new(0.25),
            f.graph.num_vertices(),
            i1,
            &mut h,
        );
        for sim_set in &out.sim_sets {
            assert!(interference.is_sim_set(sim_set));
        }
    }

    #[test]
    fn budget_limits_per_round_additions_per_terminal() {
        let f = fixture(families::erdos_renyi_gnp(70, 0.12, 13), 13);
        let interference = InterferenceIndex::build(&f.rp, &f.tree, &f.index);
        let (i1, _) = interference.split_i1_i2();
        if i1.is_empty() {
            return; // nothing to exercise on this draw
        }
        // With a budget of 1 and one round, at most (#terminals in A) +
        // (#terminals in B) edges can be added.
        let config = BuildConfig {
            budget_override: Some(1),
            k_override: Some(1),
            ..BuildConfig::new(0.2)
        };
        let (a, b, _c) = interference.classify(&i1);
        let terminals_a: std::collections::HashSet<VertexId> =
            a.iter().map(|&p| f.rp.get(p).pair.terminal).collect();
        let terminals_b: std::collections::HashSet<VertexId> =
            b.iter().map(|&p| f.rp.get(p).pair.terminal).collect();
        let mut h = BitSet::new(f.graph.num_edges());
        let out = run_phase_s1(
            &f.rp,
            &interference,
            &config,
            f.graph.num_vertices(),
            i1,
            &mut h,
        );
        // leftover pairs are force-added, so only bound the round additions
        let round_added = out.added_edges - out.leftover_added_upper_bound(&f.rp, &h);
        assert!(round_added <= terminals_a.len() + terminals_b.len());
    }

    impl PhaseS1Outcome {
        /// Test helper: the force-added leftovers are at most
        /// `leftover_pairs`, which is what we subtract to bound the per-round
        /// additions.
        fn leftover_added_upper_bound(&self, _rp: &ReplacementPaths, _h: &BitSet) -> usize {
            self.leftover_pairs.min(self.added_edges)
        }
    }
}
