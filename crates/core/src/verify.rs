//! Exact, definition-level verification of FT-BFS structures.
//!
//! The analysis of the paper guarantees protection via Observation 2.2
//! (last-protected ⇒ protected); this module does not trust that argument and
//! instead re-checks the defining inequality
//! `dist(s, v, H ∖ {e}) ≤ dist(s, v, G ∖ {e})` for every vertex `v` and every
//! non-reinforced tree edge `e` (failures of other edges can never violate
//! the inequality because `T0 ⊆ H` survives them; the exhaustive mode checks
//! them anyway).

use crate::engine::EngineCore;
use crate::error::FtbfsError;
use crate::structure::FtBfsStructure;
use ftb_graph::{BitSet, EdgeId, EdgeMask, FaultSet, Graph, SubgraphView, VertexId, VertexMask};
use ftb_par::{parallel_map, parallel_map_init, ParallelConfig};
use ftb_sp::{bfs_distances_view, ShortestPathTree, UNREACHABLE};

/// A single protection violation: after `failed_edge` fails, `vertex` is
/// strictly farther from the source in `H` than in `G`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The failing edge.
    pub failed_edge: EdgeId,
    /// The vertex whose distance regresses.
    pub vertex: VertexId,
    /// `dist(s, vertex, H ∖ {failed_edge})` (`u32::MAX` if unreachable).
    pub dist_in_structure: u32,
    /// `dist(s, vertex, G ∖ {failed_edge})`.
    pub dist_in_graph: u32,
}

/// Result of verifying a structure.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// All violations found (empty iff the structure is a valid
    /// `(b, r)` FT-BFS structure w.r.t. its reinforced set).
    pub violations: Vec<Violation>,
    /// Number of failing edges checked.
    pub checked_edges: usize,
    /// `true` if the fault-free distances in `H` equal those in `G`.
    pub fault_free_ok: bool,
}

impl VerificationReport {
    /// `true` if no violation was found and the fault-free distances match.
    pub fn is_valid(&self) -> bool {
        self.fault_free_ok && self.violations.is_empty()
    }
}

/// Verify a structure against the definition.
///
/// `exhaustive = false` checks the failures of non-reinforced **tree** edges
/// (the only ones that can be violated when `T0 ⊆ H`); `exhaustive = true`
/// additionally checks every other non-reinforced edge of `H`.
pub fn verify_structure(
    graph: &Graph,
    tree: &ShortestPathTree,
    structure: &FtBfsStructure,
    parallel: &ParallelConfig,
    exhaustive: bool,
) -> VerificationReport {
    let source = structure.source();

    // Fault-free check: H preserves all distances from the source.
    let view_h = structure.as_view(graph);
    let dist_h0 = bfs_distances_view(&view_h, source);
    let dist_g0 = ftb_sp::bfs_distances(graph, source);
    let fault_free_ok = dist_h0 == dist_g0;

    // Candidate failing edges.
    let mut candidates: Vec<EdgeId> = tree
        .tree_edges()
        .iter()
        .copied()
        .filter(|&e| !structure.is_reinforced(e))
        .collect();
    if exhaustive {
        candidates.extend(
            structure
                .edges()
                .filter(|&e| !tree.is_tree_edge(e) && !structure.is_reinforced(e)),
        );
    }

    let edge_set = structure.edge_set();
    let per_edge: Vec<Vec<Violation>> = parallel_map(parallel, candidates.len(), |i| {
        let e = candidates[i];
        check_single_failure(graph, edge_set, source, e)
    });
    VerificationReport {
        violations: per_edge.into_iter().flatten().collect(),
        checked_edges: candidates.len(),
        fault_free_ok,
    }
}

/// Compute the violations caused by the failure of a single edge.
fn check_single_failure(
    graph: &Graph,
    structure_edges: &BitSet,
    source: VertexId,
    e: EdgeId,
) -> Vec<Violation> {
    let view_g = SubgraphView::full(graph).without_edge(e);
    let dist_g = bfs_distances_view(&view_g, source);
    let view_h = SubgraphView::full(graph)
        .with_allowed_edges(structure_edges)
        .without_edge(e);
    let dist_h = bfs_distances_view(&view_h, source);
    let mut out = Vec::new();
    for v in graph.vertices() {
        let dg = dist_g[v.index()];
        let dh = dist_h[v.index()];
        if dg != UNREACHABLE && dh > dg {
            out.push(Violation {
                failed_edge: e,
                vertex: v,
                dist_in_structure: dh,
                dist_in_graph: dg,
            });
        }
    }
    out
}

/// The set of tree edges that are *unprotected* in the edge set `h` — the
/// edges whose failure makes some vertex strictly farther in `(V, h) ∖ {e}`
/// than in `G ∖ {e}`. This is the exact (minimal) reinforcement set for `h`.
pub fn unprotected_edges(
    graph: &Graph,
    tree: &ShortestPathTree,
    h: &BitSet,
    parallel: &ParallelConfig,
) -> Vec<EdgeId> {
    let source = tree.source();
    let edges: Vec<EdgeId> = tree.tree_edges().to_vec();
    let flags: Vec<bool> = parallel_map(parallel, edges.len(), |i| {
        !check_single_failure(graph, h, source, edges[i]).is_empty()
    });
    edges
        .into_iter()
        .zip(flags)
        .filter_map(|(e, bad)| if bad { Some(e) } else { None })
        .collect()
}

/// Reference distances `dist(source, ·, G ∖ F)` by brute-force BFS over the
/// masked graph.
///
/// Failed vertices (and the source itself, if failed) are reported
/// [`UNREACHABLE`] — the semantics the engines' fault-set queries promise.
pub fn dist_after_faults_brute(graph: &Graph, source: VertexId, faults: &FaultSet) -> Vec<u32> {
    let edge_mask = EdgeMask::removing(graph, faults.edges());
    let vertex_mask = VertexMask::removing(graph, faults.vertices());
    let view = SubgraphView::full(graph)
        .with_edge_mask(&edge_mask)
        .with_vertex_mask(&vertex_mask);
    bfs_distances_view(&view, source)
}

/// One disagreement between an engine core and brute-force BFS under a
/// fault set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSetMismatch {
    /// The queried source.
    pub source: VertexId,
    /// The queried vertex.
    pub vertex: VertexId,
    /// The fault set under which the answers disagree.
    pub faults: FaultSet,
    /// The engine's answer (`None` = disconnected).
    pub engine_dist: Option<u32>,
    /// The brute-force answer.
    pub brute_dist: Option<u32>,
}

/// Cross-check an [`EngineCore`]'s fault-set answers against brute-force
/// BFS: every fault set in `fault_sets`, every served source, every vertex.
///
/// Fault sets are validated up front (so a too-large or out-of-range set is
/// a typed error, not a mismatch), then distributed over `parallel` workers,
/// one fresh [`QueryContext`](crate::QueryContext) each. A fault set
/// containing a served source is **skipped for that source**: a failed
/// source answers every query "disconnected" on both sides, so sweeping it
/// (as the `enumerate_fault_sets` sweeps used to) burns a brute-force BFS
/// to compare two all-unreachable rows and verifies nothing. Returns the
/// disagreements — an empty vector is a clean bill of health.
pub fn cross_check_fault_sets(
    core: &EngineCore,
    fault_sets: &[FaultSet],
    parallel: &ParallelConfig,
) -> Result<Vec<FaultSetMismatch>, FtbfsError> {
    for faults in fault_sets {
        core.check_fault_set(faults)?;
    }
    let graph = core.graph();
    let per_set: Vec<Vec<FaultSetMismatch>> = parallel_map_init(
        parallel,
        fault_sets.len(),
        || core.new_context(),
        |ctx, i| {
            let faults = &fault_sets[i];
            let mut bad = Vec::new();
            for &source in core.sources() {
                if faults.contains_vertex(source) {
                    continue;
                }
                let brute = dist_after_faults_brute(graph, source, faults);
                for v in graph.vertices() {
                    let engine = ctx
                        .dist_after_faults_from(core, source, v, faults)
                        .expect("fault sets validated up front");
                    let want = (brute[v.index()] != UNREACHABLE).then_some(brute[v.index()]);
                    if engine != want {
                        bad.push(FaultSetMismatch {
                            source,
                            vertex: v,
                            faults: faults.clone(),
                            engine_dist: engine,
                            brute_dist: want,
                        });
                    }
                }
            }
            bad
        },
    );
    Ok(per_set.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::BuildStats;
    use ftb_graph::generators;
    use ftb_sp::TieBreakWeights;

    fn tree_only_structure(
        graph: &Graph,
        reinforce_all: bool,
    ) -> (ShortestPathTree, FtBfsStructure) {
        let w = TieBreakWeights::generate(graph, 1);
        let tree = ShortestPathTree::build(graph, &w, VertexId(0));
        let mut edges = BitSet::new(graph.num_edges());
        for &e in tree.tree_edges() {
            edges.insert(e.index());
        }
        let reinforced = if reinforce_all {
            edges.clone()
        } else {
            BitSet::new(graph.num_edges())
        };
        let s = FtBfsStructure::new(VertexId(0), 0.0, edges, reinforced, BuildStats::default());
        (tree, s)
    }

    #[test]
    fn fully_reinforced_tree_is_valid() {
        let g = generators::complete(8);
        let (tree, s) = tree_only_structure(&g, true);
        let report = verify_structure(&g, &tree, &s, &ParallelConfig::serial(), false);
        assert!(report.is_valid());
        assert_eq!(report.checked_edges, 0);
        assert!(report.fault_free_ok);
    }

    #[test]
    fn bare_tree_without_reinforcement_is_invalid_on_a_clique() {
        let g = generators::complete(8);
        let (tree, s) = tree_only_structure(&g, false);
        let report = verify_structure(&g, &tree, &s, &ParallelConfig::serial(), false);
        assert!(!report.is_valid());
        assert!(!report.violations.is_empty());
        assert_eq!(report.checked_edges, 7);
        // every violation is real: the structure distance exceeds the graph distance
        for v in &report.violations {
            assert!(v.dist_in_structure > v.dist_in_graph);
        }
    }

    #[test]
    fn whole_graph_is_always_a_valid_structure() {
        let g = generators::hypercube(4);
        let w = TieBreakWeights::generate(&g, 2);
        let tree = ShortestPathTree::build(&g, &w, VertexId(0));
        let edges = BitSet::full(g.num_edges());
        let s = FtBfsStructure::new(
            VertexId(0),
            1.0,
            edges,
            BitSet::new(g.num_edges()),
            BuildStats::default(),
        );
        let report = verify_structure(&g, &tree, &s, &ParallelConfig::with_threads(4), true);
        assert!(report.is_valid());
        assert!(report.checked_edges >= g.num_edges());
    }

    #[test]
    fn unprotected_edges_of_bare_tree_match_verifier() {
        let g = generators::hypercube(3);
        let (tree, s) = tree_only_structure(&g, false);
        let unprotected = unprotected_edges(&g, &tree, s.edge_set(), &ParallelConfig::serial());
        let report = verify_structure(&g, &tree, &s, &ParallelConfig::serial(), false);
        let violated: std::collections::HashSet<EdgeId> =
            report.violations.iter().map(|v| v.failed_edge).collect();
        let unprotected_set: std::collections::HashSet<EdgeId> =
            unprotected.iter().copied().collect();
        assert_eq!(violated, unprotected_set);
        // on the 2-edge-connected hypercube, every tree edge of a bare tree
        // is unprotected
        assert_eq!(unprotected.len(), tree.tree_edges().len());
    }

    #[test]
    fn path_graph_tree_is_trivially_protected() {
        // Removing any tree edge of a path disconnects the suffix in G as
        // well, so the inequality holds vacuously and nothing is unprotected.
        let g = generators::path(10);
        let (tree, s) = tree_only_structure(&g, false);
        let report = verify_structure(&g, &tree, &s, &ParallelConfig::serial(), false);
        assert!(report.is_valid());
        let unprotected = unprotected_edges(&g, &tree, s.edge_set(), &ParallelConfig::serial());
        assert!(unprotected.is_empty());
    }

    #[test]
    fn brute_force_masks_vertices_edges_and_the_source() {
        let g = generators::path(5); // 0-1-2-3-4
        let mid = FaultSet::single_vertex(VertexId(2));
        let d = dist_after_faults_brute(&g, VertexId(0), &mid);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);

        let src = FaultSet::single_vertex(VertexId(0));
        let d = dist_after_faults_brute(&g, VertexId(0), &src);
        assert!(d.iter().all(|&x| x == UNREACHABLE), "failed source: {d:?}");

        let e = g.find_edge(VertexId(1), VertexId(2)).unwrap();
        let cut = FaultSet::single_edge(e);
        let d = dist_after_faults_brute(&g, VertexId(0), &cut);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn cross_check_passes_on_every_small_fault_set() {
        use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
        let g = generators::hypercube(3);
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.with_seed(5).serial())
            .build(&g, &Sources::single(VertexId(0)))
            .expect("valid input");
        let core = crate::engine::EngineCore::build(&g, s).expect("matching graph");
        let sets = ftb_graph::enumerate_fault_sets(&g, 2);
        assert!(!sets.is_empty());
        let mismatches = cross_check_fault_sets(&core, &sets, &ParallelConfig::serial())
            .expect("sets are in range and within the cap");
        assert!(mismatches.is_empty(), "first: {:?}", mismatches.first());
        // and the parallel sweep agrees
        let mismatches = cross_check_fault_sets(&core, &sets, &ParallelConfig::with_threads(4))
            .expect("sets are in range and within the cap");
        assert!(mismatches.is_empty());
    }

    #[test]
    fn cross_check_skips_fault_sets_containing_the_source() {
        use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
        use ftb_graph::Fault;
        let g = generators::grid(3, 3);
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.serial())
            .build(&g, &Sources::single(VertexId(0)))
            .expect("valid input");
        let core = crate::engine::EngineCore::build(&g, s).expect("matching graph");
        // Degenerate sets (the source itself, alone or with another fault)
        // are skipped rather than swept: still a clean bill of health, and
        // no brute-force BFS is burnt comparing two all-unreachable rows.
        let sets = [
            FaultSet::single_vertex(VertexId(0)),
            [Fault::Vertex(VertexId(0)), Fault::Edge(EdgeId(0))]
                .into_iter()
                .collect(),
        ];
        let mismatches = cross_check_fault_sets(&core, &sets, &ParallelConfig::serial())
            .expect("sets are in range");
        assert!(mismatches.is_empty());
    }

    #[test]
    fn cross_check_reports_bad_fault_sets_as_typed_errors() {
        use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
        use ftb_graph::Fault;
        let g = generators::grid(3, 3);
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.serial())
            .build(&g, &Sources::single(VertexId(0)))
            .expect("valid input");
        let core = crate::engine::EngineCore::build(&g, s).expect("matching graph");
        let too_big: FaultSet = (0..3).map(|i| Fault::Edge(EdgeId(i))).collect();
        assert!(matches!(
            cross_check_fault_sets(&core, &[too_big], &ParallelConfig::serial()),
            Err(FtbfsError::FaultSetTooLarge { got: 3, max: 2 })
        ));
        let out_of_range = FaultSet::single_vertex(VertexId(500));
        assert!(matches!(
            cross_check_fault_sets(&core, &[out_of_range], &ParallelConfig::serial()),
            Err(FtbfsError::InvalidFault { .. })
        ));
    }

    #[test]
    fn serial_and_parallel_verification_agree() {
        let g = generators::complete_bipartite(5, 6);
        let (tree, s) = tree_only_structure(&g, false);
        let a = verify_structure(&g, &tree, &s, &ParallelConfig::serial(), false);
        let b = verify_structure(&g, &tree, &s, &ParallelConfig::with_threads(4), false);
        assert_eq!(a.violations.len(), b.violations.len());
        assert_eq!(a.checked_edges, b.checked_edges);
    }
}
