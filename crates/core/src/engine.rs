//! Build-once / query-many fault queries: [`FaultQueryEngine`].
//!
//! The construction side of this crate produces a static
//! [`FtBfsStructure`]; this module makes it *servable*. Mirroring the
//! preprocess-then-query `Server` pattern of route-planning engines, the
//! engine is built once from a graph and a structure, allocates all scratch
//! state up front, and then answers an arbitrary number of
//! post-failure distance and path queries without any per-query allocation.
//!
//! # Answering model
//!
//! For a query `(v, e)` the engine reports `dist(s, v, G ∖ {e})`, resolved
//! entirely inside the sparse structure `H`:
//!
//! * `e ∉ H` — the BFS tree `T0 ⊆ H` survives, so no distance changes; the
//!   cached fault-free row is returned without any search.
//! * `e ∈ H`, not reinforced — one BFS over the compact CSR of `H ∖ {e}`.
//!   By the defining FT-BFS guarantee (`dist(s, v, H ∖ {e}) ≤
//!   dist(s, v, G ∖ {e})`, with `≥` from `H ⊆ G`) the answer equals the
//!   from-scratch distance in `G ∖ {e}` whenever the structure is valid.
//! * `e ∈ H`, reinforced — reinforced edges are assumed fault-immune, so
//!   this is a hypothetical query; the engine stays exact by falling back to
//!   one BFS over the full graph `G ∖ {e}`.
//!
//! Consecutive queries against the same failing edge reuse the computed
//! distance row (a one-row cache), and [`FaultQueryEngine::query_many`]
//! sorts its batch by edge so each distinct failure is searched exactly
//! once.

use crate::error::FtbfsError;
use crate::structure::FtBfsStructure;
use ftb_graph::{EdgeId, Graph, VertexId};
use ftb_sp::{Path, UNREACHABLE};
use std::collections::VecDeque;

/// Counters describing how the engine answered its queries so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total queries answered (distance, path and batched).
    pub queries: usize,
    /// BFS sweeps over the compact structure CSR.
    pub structure_bfs_runs: usize,
    /// BFS sweeps over the full graph (reinforced-edge fallback).
    pub full_graph_bfs_runs: usize,
    /// Queries answered from the cached row or the fault-free row.
    pub cached_answers: usize,
}

/// Borrowed distance + parent rows of one BFS sweep.
type RowRefs<'a> = (&'a [u32], &'a [Option<(VertexId, EdgeId)>]);

/// Where the distance row for the current failing edge lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Row {
    /// The failure does not affect distances; use the fault-free row.
    FaultFree,
    /// The scratch row holds the post-failure distances.
    Scratch,
}

/// A preprocessed query server answering post-failure distance and path
/// queries against an [`FtBfsStructure`].
///
/// See the module documentation for the answering model. The engine borrows
/// the parent graph (queries about reinforced-edge failures need it) and
/// owns the structure plus all scratch buffers; query methods take `&mut
/// self` purely to reuse those buffers.
#[derive(Clone, Debug)]
pub struct FaultQueryEngine<'g> {
    graph: &'g Graph,
    structure: FtBfsStructure,
    /// Compact CSR of `H` (vertex ids preserved).
    h_graph: Graph,
    /// Compact edge id (index) → parent graph edge id.
    h_edge_to_parent: Vec<EdgeId>,
    /// Parent graph edge id → compact edge id, for edges of `H`.
    parent_edge_to_h: Vec<Option<u32>>,
    /// Fault-free distances from the source (computed in `H`; equals the
    /// graph distances whenever the structure is valid).
    fault_free_dist: Vec<u32>,
    /// Fault-free BFS parents in `H` (parent vertex + parent-graph edge id).
    fault_free_parent: Vec<Option<(VertexId, EdgeId)>>,
    // --- reusable query state ---------------------------------------------
    scratch_dist: Vec<u32>,
    scratch_parent: Vec<Option<(VertexId, EdgeId)>>,
    queue: VecDeque<VertexId>,
    cached_edge: Option<EdgeId>,
    cached_row: Row,
    stats: QueryStats,
}

impl<'g> FaultQueryEngine<'g> {
    /// Preprocess `structure` (built from `graph`) into a query engine.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::StructureMismatch`] when the structure's edge space does
    /// not match `graph`, [`FtbfsError::VertexOutOfRange`] when its source
    /// does not exist in `graph`, and
    /// [`FtbfsError::FaultFreeDistanceMismatch`] when the structure fails to
    /// preserve the graph's fault-free distances — together these catch a
    /// structure paired with a graph it was not built from, even one with a
    /// coincidentally matching edge count.
    pub fn new(graph: &'g Graph, structure: FtBfsStructure) -> Result<Self, FtbfsError> {
        if structure.edge_set().capacity() != graph.num_edges() {
            return Err(FtbfsError::StructureMismatch {
                structure_edges: structure.edge_set().capacity(),
                graph_edges: graph.num_edges(),
            });
        }
        if structure.source().index() >= graph.num_vertices() {
            return Err(FtbfsError::VertexOutOfRange {
                vertex: structure.source(),
                num_vertices: graph.num_vertices(),
            });
        }
        let (h_graph, h_edge_to_parent) = structure.to_graph(graph);
        let mut parent_edge_to_h = vec![None; graph.num_edges()];
        for (new_idx, &parent) in h_edge_to_parent.iter().enumerate() {
            parent_edge_to_h[parent.index()] = Some(new_idx as u32);
        }
        let n = graph.num_vertices();
        let mut engine = FaultQueryEngine {
            graph,
            structure,
            h_graph,
            h_edge_to_parent,
            parent_edge_to_h,
            fault_free_dist: Vec::new(),
            fault_free_parent: Vec::new(),
            scratch_dist: vec![UNREACHABLE; n],
            scratch_parent: vec![None; n],
            queue: VecDeque::with_capacity(n),
            cached_edge: None,
            cached_row: Row::FaultFree,
            stats: QueryStats::default(),
        };
        // Fault-free preprocessing: one BFS over H with no edge removed.
        engine.bfs_structure(None);
        engine.fault_free_dist = engine.scratch_dist.clone();
        engine.fault_free_parent = engine.scratch_parent.clone();
        // Cross-check against the graph's own distances: any valid structure
        // preserves them, so a divergence means the pairing is wrong.
        let graph_dist = ftb_sp::bfs_distances(graph, engine.structure.source());
        if let Some(i) = (0..graph_dist.len()).find(|&i| graph_dist[i] != engine.fault_free_dist[i])
        {
            return Err(FtbfsError::FaultFreeDistanceMismatch {
                vertex: VertexId::new(i),
            });
        }
        Ok(engine)
    }

    /// The source vertex whose distances the engine serves.
    pub fn source(&self) -> VertexId {
        self.structure.source()
    }

    /// The structure the engine was built from.
    pub fn structure(&self) -> &FtBfsStructure {
        &self.structure
    }

    /// The parent graph the engine was built from.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Query counters accumulated since construction.
    pub fn query_stats(&self) -> QueryStats {
        self.stats
    }

    /// Fault-free distance `dist(s, v, G)` (`None` if `v` is unreachable).
    pub fn fault_free_dist(&self, v: VertexId) -> Result<Option<u32>, FtbfsError> {
        self.check_vertex(v)?;
        Ok(finite(self.fault_free_dist[v.index()]))
    }

    /// Post-failure distance `dist(s, v, G ∖ {e})`.
    ///
    /// Returns `Ok(None)` when the failure disconnects `v` from the source.
    ///
    /// # Errors
    ///
    /// [`FtbfsError::VertexOutOfRange`] / [`FtbfsError::EdgeOutOfRange`] for
    /// ids outside the engine's graph.
    pub fn dist_after_fault(&mut self, v: VertexId, e: EdgeId) -> Result<Option<u32>, FtbfsError> {
        self.check_vertex(v)?;
        self.check_edge(e)?;
        self.stats.queries += 1;
        let row = self.ensure_row(e);
        let dist = match row {
            Row::FaultFree => self.fault_free_dist[v.index()],
            Row::Scratch => self.scratch_dist[v.index()],
        };
        Ok(finite(dist))
    }

    /// A concrete post-failure shortest path from the source to `v` in
    /// `G ∖ {e}`, or `Ok(None)` when the failure disconnects `v`.
    ///
    /// The path runs inside `H ∖ {e}` except for the hypothetical failure of
    /// a reinforced edge, where it runs inside `G ∖ {e}` (see the module
    /// docs). Path extraction allocates the returned [`Path`]; the search
    /// itself still reuses the engine's scratch state.
    pub fn path_after_fault(&mut self, v: VertexId, e: EdgeId) -> Result<Option<Path>, FtbfsError> {
        self.check_vertex(v)?;
        self.check_edge(e)?;
        self.stats.queries += 1;
        let row = self.ensure_row(e);
        let (dist, parent): RowRefs<'_> = match row {
            Row::FaultFree => (&self.fault_free_dist, &self.fault_free_parent),
            Row::Scratch => (&self.scratch_dist, &self.scratch_parent),
        };
        if dist[v.index()] == UNREACHABLE {
            return Ok(None);
        }
        let mut vertices = vec![v];
        let mut edges = Vec::new();
        let mut cursor = v;
        while let Some((p, pe)) = parent[cursor.index()] {
            vertices.push(p);
            edges.push(pe);
            cursor = p;
        }
        vertices.reverse();
        edges.reverse();
        Ok(Some(Path::new(vertices, edges)))
    }

    /// Answer a batch of `(vertex, failing edge)` queries.
    ///
    /// The batch is grouped by failing edge internally, so each distinct
    /// failure triggers at most one BFS regardless of how many vertices are
    /// probed against it. Results are returned in input order; `None` marks
    /// a disconnected vertex.
    pub fn query_many(
        &mut self,
        queries: &[(VertexId, EdgeId)],
    ) -> Result<Vec<Option<u32>>, FtbfsError> {
        for &(v, e) in queries {
            self.check_vertex(v)?;
            self.check_edge(e)?;
        }
        let mut order: Vec<u32> = (0..queries.len() as u32).collect();
        order.sort_by_key(|&i| queries[i as usize].1);
        let mut results = vec![None; queries.len()];
        for i in order {
            let (v, e) = queries[i as usize];
            self.stats.queries += 1;
            let row = self.ensure_row(e);
            let dist = match row {
                Row::FaultFree => self.fault_free_dist[v.index()],
                Row::Scratch => self.scratch_dist[v.index()],
            };
            results[i as usize] = finite(dist);
        }
        Ok(results)
    }

    /// Make the distance row for failing edge `e` available and report where
    /// it lives.
    fn ensure_row(&mut self, e: EdgeId) -> Row {
        if !self.structure.contains_edge(e) {
            // T0 ⊆ H survives the failure: distances are unchanged.
            self.stats.cached_answers += 1;
            return Row::FaultFree;
        }
        if self.cached_edge == Some(e) {
            self.stats.cached_answers += 1;
            return self.cached_row;
        }
        if self.structure.is_reinforced(e) {
            self.bfs_full_graph(e);
            self.stats.full_graph_bfs_runs += 1;
        } else {
            let banned = self.parent_edge_to_h[e.index()];
            self.bfs_structure(banned);
            self.stats.structure_bfs_runs += 1;
        }
        self.cached_edge = Some(e);
        self.cached_row = Row::Scratch;
        Row::Scratch
    }

    /// BFS over the compact structure CSR, skipping the compact edge
    /// `banned` (if any), into the scratch row. Parent edges are recorded as
    /// parent-graph edge ids.
    fn bfs_structure(&mut self, banned: Option<u32>) {
        let h_graph = &self.h_graph;
        let to_parent = &self.h_edge_to_parent;
        bfs_sweep(
            self.structure.source(),
            &mut self.scratch_dist,
            &mut self.scratch_parent,
            &mut self.queue,
            |u| {
                h_graph
                    .neighbors(u)
                    .filter(move |&(_, he)| Some(he.0) != banned)
                    .map(|(w, he)| (w, to_parent[he.index()]))
            },
        );
    }

    /// BFS over the full parent graph, skipping edge `banned`, into the
    /// scratch row (exact fallback for reinforced-edge failures).
    fn bfs_full_graph(&mut self, banned: EdgeId) {
        let graph = self.graph;
        bfs_sweep(
            self.structure.source(),
            &mut self.scratch_dist,
            &mut self.scratch_parent,
            &mut self.queue,
            |u| graph.neighbors(u).filter(move |&(_, ge)| ge != banned),
        );
    }

    fn check_vertex(&self, v: VertexId) -> Result<(), FtbfsError> {
        if v.index() >= self.graph.num_vertices() {
            return Err(FtbfsError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.graph.num_vertices(),
            });
        }
        Ok(())
    }

    fn check_edge(&self, e: EdgeId) -> Result<(), FtbfsError> {
        if e.index() >= self.graph.num_edges() {
            return Err(FtbfsError::EdgeOutOfRange {
                edge: e,
                num_edges: self.graph.num_edges(),
            });
        }
        Ok(())
    }
}

fn finite(d: u32) -> Option<u32> {
    if d == UNREACHABLE {
        None
    } else {
        Some(d)
    }
}

/// The one BFS loop both sweeps share: reset the scratch rows, then expand
/// from `source` over whatever adjacency `neighbors` yields. `neighbors`
/// must already exclude the failed edge and report edges as parent-graph
/// edge ids.
fn bfs_sweep<I, F>(
    source: VertexId,
    dist: &mut [u32],
    parent: &mut [Option<(VertexId, EdgeId)>],
    queue: &mut VecDeque<VertexId>,
    neighbors: F,
) where
    I: Iterator<Item = (VertexId, EdgeId)>,
    F: Fn(VertexId) -> I,
{
    dist.fill(UNREACHABLE);
    parent.fill(None);
    queue.clear();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for (w, ge) in neighbors(u) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = du + 1;
                parent[w.index()] = Some((u, ge));
                queue.push_back(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Sources, StructureBuilder, TradeoffBuilder};
    use crate::config::BuildConfig;
    use ftb_graph::{generators, SubgraphView};
    use ftb_sp::bfs_distances_view;

    fn engine_for(graph: &Graph, eps: f64, seed: u64) -> FaultQueryEngine<'_> {
        let s = TradeoffBuilder::new(eps)
            .with_config(|c| c.with_seed(seed).serial())
            .build(graph, &Sources::single(VertexId(0)))
            .expect("valid input");
        FaultQueryEngine::new(graph, s).expect("matching graph")
    }

    fn brute_force(graph: &Graph, v: VertexId, e: EdgeId) -> Option<u32> {
        let view = SubgraphView::full(graph).without_edge(e);
        let d = bfs_distances_view(&view, VertexId(0))[v.index()];
        if d == UNREACHABLE {
            None
        } else {
            Some(d)
        }
    }

    #[test]
    fn distances_match_brute_force_on_all_pairs() {
        for (name, graph) in [
            ("hypercube", generators::hypercube(3)),
            ("grid", generators::grid(4, 4)),
            ("clique_pendant", generators::clique_with_pendant(10)),
            ("cycle", generators::cycle(12)),
        ] {
            let mut engine = engine_for(&graph, 0.3, 7);
            for e in graph.edge_ids() {
                for v in graph.vertices() {
                    let got = engine.dist_after_fault(v, e).expect("in range");
                    let want = brute_force(&graph, v, e);
                    assert_eq!(got, want, "{name}: vertex {v:?}, edge {e:?}");
                }
            }
        }
    }

    #[test]
    fn paths_are_valid_witnesses_of_the_distances() {
        let graph = generators::grid(4, 5);
        let mut engine = engine_for(&graph, 0.25, 3);
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                let d = engine.dist_after_fault(v, e).expect("in range");
                let p = engine.path_after_fault(v, e).expect("in range");
                match (d, p) {
                    (None, None) => {}
                    (Some(d), Some(p)) => {
                        assert_eq!(p.len() as u32, d, "path length mismatch at {v:?}/{e:?}");
                        assert_eq!(p.first(), VertexId(0));
                        assert_eq!(p.last(), v);
                        assert!(!p.contains_edge(e), "path uses the failed edge");
                        // consecutive vertices really are joined by the edges
                        for (i, &pe) in p.edges().iter().enumerate() {
                            let edge = graph.edge(pe);
                            let (a, b) = (p.vertices()[i], p.vertices()[i + 1]);
                            assert!(edge.is_incident(a) && edge.is_incident(b));
                        }
                    }
                    (d, p) => panic!("distance {d:?} but path {p:?}"),
                }
            }
        }
    }

    #[test]
    fn batched_queries_match_single_queries() {
        let graph = generators::hypercube(4);
        let mut engine = engine_for(&graph, 0.3, 5);
        let queries: Vec<(VertexId, EdgeId)> = graph
            .edge_ids()
            .flat_map(|e| graph.vertices().map(move |v| (v, e)))
            .collect();
        let batch = engine.query_many(&queries).expect("in range");
        let mut engine2 = engine_for(&graph, 0.3, 5);
        for (i, &(v, e)) in queries.iter().enumerate() {
            assert_eq!(batch[i], engine2.dist_after_fault(v, e).expect("in range"));
        }
        // grouping by edge keeps the number of sweeps at one per distinct
        // structure edge at most
        let stats = engine.query_stats();
        assert!(stats.structure_bfs_runs + stats.full_graph_bfs_runs <= graph.num_edges());
        assert_eq!(stats.queries, queries.len());
    }

    #[test]
    fn repeated_edge_queries_hit_the_row_cache() {
        let graph = generators::grid(5, 5);
        let mut engine = engine_for(&graph, 0.3, 11);
        let e = *engine
            .structure()
            .edges()
            .collect::<Vec<_>>()
            .first()
            .expect("structure has edges");
        for v in graph.vertices() {
            engine.dist_after_fault(v, e).expect("in range");
        }
        let stats = engine.query_stats();
        assert!(stats.structure_bfs_runs + stats.full_graph_bfs_runs <= 1);
        assert!(stats.cached_answers >= graph.num_vertices() - 1);
    }

    #[test]
    fn non_structure_edges_answer_from_the_fault_free_row() {
        let graph = generators::complete(8);
        let mut engine = engine_for(&graph, 0.3, 13);
        let outside = graph
            .edge_ids()
            .find(|&e| !engine.structure().contains_edge(e))
            .expect("K8 structure is sparse");
        let before = engine.query_stats();
        for v in graph.vertices() {
            let d = engine.dist_after_fault(v, outside).expect("in range");
            assert_eq!(d, engine.fault_free_dist(v).expect("in range"));
        }
        let after = engine.query_stats();
        assert_eq!(before.structure_bfs_runs, after.structure_bfs_runs);
        assert_eq!(before.full_graph_bfs_runs, after.full_graph_bfs_runs);
    }

    #[test]
    fn out_of_range_queries_are_typed_errors() {
        let graph = generators::grid(3, 3);
        let mut engine = engine_for(&graph, 0.3, 1);
        assert!(matches!(
            engine.dist_after_fault(VertexId(99), EdgeId(0)),
            Err(FtbfsError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            engine.dist_after_fault(VertexId(0), EdgeId(999)),
            Err(FtbfsError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            engine.path_after_fault(VertexId(99), EdgeId(0)),
            Err(FtbfsError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            engine.query_many(&[(VertexId(0), EdgeId(999))]),
            Err(FtbfsError::EdgeOutOfRange { .. })
        ));
    }

    #[test]
    fn mismatched_structure_is_rejected() {
        let g1 = generators::grid(3, 3);
        let g2 = generators::complete(6);
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.serial())
            .build(&g1, &Sources::single(VertexId(0)))
            .expect("valid input");
        assert!(matches!(
            FaultQueryEngine::new(&g2, s),
            Err(FtbfsError::StructureMismatch { .. })
        ));
    }

    #[test]
    fn mismatched_structure_with_equal_edge_count_is_rejected() {
        // complete(7) and cycle(21) both have 21 edges, so the capacity
        // check alone cannot tell them apart. The K7 structure is sparse
        // (far fewer than 21 edges), and any proper edge subset of a cycle
        // distorts distances, so the fault-free cross-check must fire.
        let k7 = generators::complete(7);
        let cycle = generators::cycle(21);
        assert_eq!(k7.num_edges(), cycle.num_edges());
        let s = TradeoffBuilder::new(0.3)
            .with_config(|c| c.serial())
            .build(&k7, &Sources::single(VertexId(0)))
            .expect("valid input");
        assert!(
            s.num_edges() < k7.num_edges(),
            "K7 structure must be sparse"
        );
        assert!(matches!(
            FaultQueryEngine::new(&cycle, s),
            Err(FtbfsError::FaultFreeDistanceMismatch { .. })
        ));
    }

    #[test]
    fn disconnecting_failures_return_none() {
        let graph = generators::path(5);
        let mut engine = engine_for(&graph, 0.3, 2);
        let e = graph
            .find_edge(VertexId(1), VertexId(2))
            .expect("path edge");
        assert_eq!(
            engine.dist_after_fault(VertexId(4), e).expect("in range"),
            None
        );
        assert_eq!(
            engine.path_after_fault(VertexId(4), e).expect("in range"),
            None
        );
        assert_eq!(
            engine.dist_after_fault(VertexId(1), e).expect("in range"),
            Some(1)
        );
    }

    #[test]
    fn reinforced_edge_fallback_is_exact() {
        // eps = 0 reinforces every tree edge, so every tree-edge query takes
        // the full-graph fallback; the answers must still be exact.
        let graph = generators::cycle(9);
        let s = crate::baseline::try_build_reinforced_tree(
            &graph,
            VertexId(0),
            &BuildConfig::new(0.0).serial(),
        )
        .expect("valid input");
        let mut engine = FaultQueryEngine::new(&graph, s).expect("matching graph");
        for e in graph.edge_ids() {
            for v in graph.vertices() {
                assert_eq!(
                    engine.dist_after_fault(v, e).expect("in range"),
                    brute_force(&graph, v, e)
                );
            }
        }
        assert!(engine.query_stats().full_graph_bfs_runs > 0);
    }
}
