//! Typed errors for construction and querying.
//!
//! Every entry point of the redesigned API ([`crate::StructureBuilder`],
//! [`crate::FaultQueryEngine`], the `try_*` construction functions) reports
//! invalid input through [`FtbfsError`] instead of panicking. The legacy free
//! functions (`build_ft_bfs` & friends) remain available as deprecated shims
//! that unwrap these errors into panics. Validation is stricter than in 0.1:
//! inputs the old code silently tolerated (e.g. `eps` outside `[0, 1]`,
//! which the baseline branch happened to accept) now panic through the
//! shims — migrate to the builders to handle them as values.

use ftb_graph::{EdgeId, Fault, VertexId};
use std::fmt;

/// Errors produced by the FT-BFS builders and the fault-query engine.
#[derive(Clone, Debug, PartialEq)]
pub enum FtbfsError {
    /// The tradeoff parameter is outside `[0, 1]` (or not a finite number).
    InvalidEps {
        /// The offending value.
        eps: f64,
    },
    /// A requested source vertex does not exist in the graph.
    SourceOutOfRange {
        /// The offending source.
        source: VertexId,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// The source cannot reach every vertex and the configuration demands a
    /// connected input ([`crate::BuildConfig::require_connected`]).
    DisconnectedSource {
        /// The source whose component does not span the graph.
        source: VertexId,
        /// Number of vertices the source cannot reach.
        num_unreachable: usize,
    },
    /// The configured round/budget overrides degenerate to zero work or
    /// overflow the per-terminal edge-budget accounting.
    BudgetOverflow {
        /// The effective number of Phase S1 rounds.
        k_rounds: usize,
        /// The effective per-terminal budget.
        budget: usize,
    },
    /// A builder was invoked with an empty source set.
    EmptySources,
    /// A query refers to a vertex outside the engine's graph.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// Number of vertices of the graph.
        num_vertices: usize,
    },
    /// A query refers to an edge outside the engine's graph.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges of the graph.
        num_edges: usize,
    },
    /// A fault set refers to a vertex or edge outside the engine's graph.
    InvalidFault {
        /// The offending fault.
        fault: Fault,
        /// Number of vertices of the graph.
        num_vertices: usize,
        /// Number of edges of the graph.
        num_edges: usize,
    },
    /// A fault set exceeds the engine's configured fault cap
    /// ([`EngineOptions::max_faults`](crate::engine::EngineOptions) /
    /// [`BuildConfig::max_faults`](crate::BuildConfig)).
    FaultSetTooLarge {
        /// Size of the offending fault set.
        got: usize,
        /// The configured cap.
        max: usize,
    },
    /// A structure was paired with a graph it was not built from (edge-space
    /// capacities disagree).
    StructureMismatch {
        /// Edge capacity the structure was built for.
        structure_edges: usize,
        /// Edge count of the supplied graph.
        graph_edges: usize,
    },
    /// The structure does not preserve the graph's fault-free distances —
    /// even with matching edge counts it was built from a different graph
    /// (or has been corrupted).
    FaultFreeDistanceMismatch {
        /// A vertex whose distance in the structure differs from the graph.
        vertex: VertexId,
    },
    /// A query context was used with an engine core it was not created by
    /// (`EngineCore::new_context` ties each context to its core).
    ContextMismatch,
    /// A facade was attached to a shared engine core whose graph does not
    /// match the supplied one.
    CoreGraphMismatch {
        /// Vertex count of the core's graph.
        core_vertices: usize,
        /// Edge count of the core's graph.
        core_edges: usize,
        /// Vertex count of the supplied graph.
        graph_vertices: usize,
        /// Edge count of the supplied graph.
        graph_edges: usize,
    },
    /// A per-source query named a source the engine core does not serve.
    SourceNotServed {
        /// The requested source.
        source: VertexId,
    },
}

impl fmt::Display for FtbfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtbfsError::InvalidEps { eps } => {
                write!(f, "tradeoff parameter eps = {eps} is outside [0, 1]")
            }
            FtbfsError::SourceOutOfRange {
                source,
                num_vertices,
            } => write!(
                f,
                "source {source:?} is out of range for a graph with {num_vertices} vertices"
            ),
            FtbfsError::DisconnectedSource {
                source,
                num_unreachable,
            } => write!(
                f,
                "source {source:?} cannot reach {num_unreachable} vertices but the \
                 configuration requires a connected input"
            ),
            FtbfsError::BudgetOverflow { k_rounds, budget } => write!(
                f,
                "phase budget overflow: K = {k_rounds} rounds with per-terminal budget \
                 {budget} is not a usable work bound"
            ),
            FtbfsError::EmptySources => write!(f, "the source set is empty"),
            FtbfsError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex:?} is out of range for a graph with {num_vertices} vertices"
            ),
            FtbfsError::EdgeOutOfRange { edge, num_edges } => write!(
                f,
                "edge {edge:?} is out of range for a graph with {num_edges} edges"
            ),
            FtbfsError::InvalidFault {
                fault,
                num_vertices,
                num_edges,
            } => write!(
                f,
                "fault {fault} is out of range for a graph with {num_vertices} vertices \
                 and {num_edges} edges"
            ),
            FtbfsError::FaultSetTooLarge { got, max } => write!(
                f,
                "fault set has {got} faults but the engine caps fault sets at {max}; \
                 raise `EngineOptions::max_faults` (or `BuildConfig::max_faults`) to \
                 serve larger sets"
            ),
            FtbfsError::StructureMismatch {
                structure_edges,
                graph_edges,
            } => write!(
                f,
                "structure covers an edge space of size {structure_edges} but the graph \
                 has {graph_edges} edges; was it built from a different graph?"
            ),
            FtbfsError::FaultFreeDistanceMismatch { vertex } => write!(
                f,
                "structure does not preserve the fault-free distance of vertex {vertex:?}; \
                 was it built from a different graph?"
            ),
            FtbfsError::ContextMismatch => write!(
                f,
                "query context used with an engine core it was not created by; create \
                 contexts with `EngineCore::new_context` on the core they will serve"
            ),
            FtbfsError::CoreGraphMismatch {
                core_vertices,
                core_edges,
                graph_vertices,
                graph_edges,
            } => write!(
                f,
                "shared engine core was built from a graph with {core_vertices} vertices \
                 and {core_edges} edges but the supplied graph has {graph_vertices} \
                 vertices and {graph_edges} edges"
            ),
            FtbfsError::SourceNotServed { source } => write!(
                f,
                "source {source:?} is not served by this engine core; it was not among \
                 the sources the structure was built for"
            ),
        }
    }
}

impl std::error::Error for FtbfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_payload() {
        let e = FtbfsError::InvalidEps { eps: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = FtbfsError::SourceOutOfRange {
            source: VertexId(9),
            num_vertices: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = FtbfsError::EdgeOutOfRange {
            edge: EdgeId(77),
            num_edges: 10,
        };
        assert!(e.to_string().contains("77"));
    }

    #[test]
    fn fault_errors_name_the_offender_and_the_cap() {
        let e = FtbfsError::InvalidFault {
            fault: Fault::Vertex(VertexId(12)),
            num_vertices: 10,
            num_edges: 20,
        };
        let msg = e.to_string();
        assert!(msg.contains("v12"), "vertex fault named: {msg}");
        assert!(msg.contains("10") && msg.contains("20"));
        let e = FtbfsError::InvalidFault {
            fault: Fault::Edge(EdgeId(33)),
            num_vertices: 10,
            num_edges: 20,
        };
        assert!(e.to_string().contains("e33"), "edge fault named");

        let e = FtbfsError::FaultSetTooLarge { got: 5, max: 2 };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('2'));
        assert!(msg.contains("max_faults"), "points at the knob: {msg}");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(FtbfsError::EmptySources);
        assert!(!e.to_string().is_empty());
    }
}
