//! The two extreme points of the tradeoff:
//!
//! * `ε = 1` — the ESA'13 FT-BFS structure of [14]: no reinforcement,
//!   `Θ(n^{3/2})` backup edges (this is also the branch Theorem 3.1 uses for
//!   every `ε ≥ 1/2`),
//! * `ε = 0` — reinforce the `n − 1` BFS-tree edges, no backup at all.
//!
//! The checked entry points are [`try_build_baseline_ftbfs`] and
//! [`try_build_reinforced_tree`]; the [`crate::BaselineBuilder`] and
//! [`crate::ReinforcedTreeBuilder`] wrap them behind the
//! [`crate::StructureBuilder`] trait.

use crate::algorithm::validate_input;
use crate::config::BuildConfig;
use crate::error::FtbfsError;
use crate::stats::BuildStats;
use crate::structure::FtBfsStructure;
use ftb_graph::{BitSet, Graph, VertexId};
use ftb_rp::ReplacementPaths;
use ftb_sp::{ReplacementDistances, ShortestPathTree, TieBreakWeights};
use std::time::Instant;

/// Build the ESA'13 baseline FT-BFS structure (the `ε ≥ 1/2` branch):
/// `T0` plus the last edge of the canonical replacement path of **every**
/// vertex–edge pair. No edge is reinforced.
///
/// # Errors
///
/// See [`crate::algorithm::try_build_ft_bfs`]; the same input validation
/// applies.
pub fn try_build_baseline_ftbfs(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> Result<FtBfsStructure, FtbfsError> {
    validate_input(graph, source, config)?;
    Ok(build_baseline_impl(graph, source, config))
}

/// The unvalidated ESA'13 baseline body; callers must validate the input.
pub(crate) fn build_baseline_impl(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> FtBfsStructure {
    let start = Instant::now();
    let weights = TieBreakWeights::generate(graph, config.seed);
    let tree = ShortestPathTree::build(graph, &weights, source);
    let dists = ReplacementDistances::compute(graph, &tree, &config.parallel);
    let rp = ReplacementPaths::compute(graph, &weights, &tree, &dists, &config.parallel);

    let mut edges = BitSet::new(graph.num_edges());
    for &e in tree.tree_edges() {
        edges.insert(e.index());
    }
    let tree_edge_count = edges.len();
    let mut added = 0usize;
    for item in rp.all() {
        if edges.insert(item.last_edge.index()) {
            added += 1;
        }
    }

    let stats = BuildStats {
        num_vertices: graph.num_vertices(),
        num_graph_edges: graph.num_edges(),
        num_tree_edges: tree_edge_count,
        num_pairs: rp.len(),
        num_uncovered_pairs: rp.uncovered().len(),
        s1_added_edges: added,
        used_baseline: true,
        construction_ms: start.elapsed().as_secs_f64() * 1e3,
        ..Default::default()
    };
    FtBfsStructure::new(
        source,
        config.eps,
        edges,
        BitSet::new(graph.num_edges()),
        stats,
    )
}

/// Build the `ε = 0` extreme: the BFS tree with every tree edge reinforced
/// and no backup edges.
///
/// # Errors
///
/// See [`crate::algorithm::try_build_ft_bfs`]; the same input validation
/// applies.
pub fn try_build_reinforced_tree(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> Result<FtBfsStructure, FtbfsError> {
    validate_input(graph, source, config)?;
    Ok(build_reinforced_tree_impl(graph, source, config))
}

/// The unvalidated `ε = 0` body; callers must validate the input.
pub(crate) fn build_reinforced_tree_impl(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> FtBfsStructure {
    let start = Instant::now();
    let weights = TieBreakWeights::generate(graph, config.seed);
    let tree = ShortestPathTree::build(graph, &weights, source);
    let mut edges = BitSet::new(graph.num_edges());
    for &e in tree.tree_edges() {
        edges.insert(e.index());
    }
    let reinforced = edges.clone();
    let stats = BuildStats {
        num_vertices: graph.num_vertices(),
        num_graph_edges: graph.num_edges(),
        num_tree_edges: edges.len(),
        reinforced_edges: reinforced.len(),
        construction_ms: start.elapsed().as_secs_f64() * 1e3,
        ..Default::default()
    };
    FtBfsStructure::new(source, 0.0, edges, reinforced, stats)
}

/// Build the ESA'13 baseline, panicking on invalid input.
#[deprecated(
    since = "0.2.0",
    note = "use `BaselineBuilder` (or `try_build_baseline_ftbfs`) which \
            reports invalid input as `FtbfsError` instead of panicking"
)]
pub fn build_baseline_ftbfs(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> FtBfsStructure {
    try_build_baseline_ftbfs(graph, source, config).expect("invalid FT-BFS construction input")
}

/// Build the reinforced BFS tree, panicking on invalid input.
#[deprecated(
    since = "0.2.0",
    note = "use `ReinforcedTreeBuilder` (or `try_build_reinforced_tree`) \
            which reports invalid input as `FtbfsError` instead of panicking"
)]
pub fn build_reinforced_tree(
    graph: &Graph,
    source: VertexId,
    config: &BuildConfig,
) -> FtBfsStructure {
    try_build_reinforced_tree(graph, source, config).expect("invalid FT-BFS construction input")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_structure;
    use ftb_graph::generators;
    use ftb_par::ParallelConfig;
    use ftb_workloads::families;

    fn tree_of(graph: &Graph, config: &BuildConfig, source: VertexId) -> ShortestPathTree {
        let w = TieBreakWeights::generate(graph, config.seed);
        ShortestPathTree::build(graph, &w, source)
    }

    #[test]
    fn baseline_is_a_valid_ftbfs_structure() {
        for (name, graph) in [
            ("hypercube", generators::hypercube(4)),
            ("grid", generators::grid(5, 6)),
            ("er", families::erdos_renyi_gnp(70, 0.1, 3)),
            ("clique_pendant", generators::clique_with_pendant(20)),
        ] {
            let config = BuildConfig::new(1.0).serial();
            let s = try_build_baseline_ftbfs(&graph, VertexId(0), &config).expect("valid input");
            let tree = tree_of(&graph, &config, VertexId(0));
            let report = verify_structure(&graph, &tree, &s, &ParallelConfig::serial(), false);
            assert!(
                report.is_valid(),
                "baseline invalid on {name}: {:?}",
                report.violations.len()
            );
            assert_eq!(s.num_reinforced(), 0, "{name}");
            assert!(s.stats().used_baseline);
        }
    }

    #[test]
    fn baseline_size_is_subquadratic_on_dense_graphs() {
        let g = generators::complete(40);
        let config = BuildConfig::new(1.0).serial();
        let s = try_build_baseline_ftbfs(&g, VertexId(0), &config).expect("valid input");
        // Θ(n^{3/2}) with a small constant; certainly far below the ~800
        // edges of K_40.
        assert!(s.num_edges() < g.num_edges() / 2);
        assert!(s.num_edges() >= g.num_vertices() - 1);
    }

    #[test]
    fn reinforced_tree_has_no_backup_and_is_valid() {
        let g = families::erdos_renyi_gnp(60, 0.1, 7);
        let config = BuildConfig::new(0.0).serial();
        let s = try_build_reinforced_tree(&g, VertexId(0), &config).expect("valid input");
        assert_eq!(s.num_backup(), 0);
        assert_eq!(s.num_reinforced(), g.num_vertices() - 1);
        let tree = tree_of(&g, &config, VertexId(0));
        let report = verify_structure(&g, &tree, &s, &ParallelConfig::serial(), false);
        assert!(report.is_valid());
        assert_eq!(report.checked_edges, 0);
    }

    #[test]
    fn baseline_on_intro_example_keeps_a_clique_fraction() {
        // On the clique-with-pendant example the pendant edge disconnects the
        // source, so it needs no protection; the rest of the structure stays
        // sparse relative to the clique.
        let n = 40;
        let g = generators::clique_with_pendant(n);
        let config = BuildConfig::new(1.0).serial();
        let s = try_build_baseline_ftbfs(&g, VertexId(0), &config).expect("valid input");
        assert!(s.num_edges() < g.num_edges());
    }

    #[test]
    fn checked_and_deprecated_entry_points_agree() {
        let g = generators::grid(4, 5);
        let config = BuildConfig::new(1.0).serial();
        let a = try_build_baseline_ftbfs(&g, VertexId(0), &config).expect("valid input");
        #[allow(deprecated)]
        let b = build_baseline_ftbfs(&g, VertexId(0), &config);
        assert_eq!(a.num_edges(), b.num_edges());

        let bad = try_build_baseline_ftbfs(&g, VertexId(1000), &config);
        assert!(matches!(bad, Err(FtbfsError::SourceOutOfRange { .. })));
        let bad = try_build_reinforced_tree(&g, VertexId(1000), &config);
        assert!(matches!(bad, Err(FtbfsError::SourceOutOfRange { .. })));
    }
}
