//! Seeded, deterministic fault injection for the serving tier.
//!
//! The server threads a [`Chaos`] handle through its IO and worker hot
//! paths. In production the handle is `None` and every hook site is a
//! single branch on an absent `Option` — no drawing, no atomics, no
//! allocation. Under test, [`SeededChaos`] turns each hook call into a
//! deterministic decision: draw *i* of a run is `splitmix64(seed, i)`,
//! where *i* comes from one shared atomic counter. The decision *stream*
//! is therefore a pure function of the seed; which call site consumes
//! which draw depends on thread interleaving, so multi-threaded runs are
//! reproducible statistically (same seed → same fault mix and rates),
//! while single-threaded drivers replay exactly.
//!
//! Six fault kinds cover the failure domains of a TCP query server:
//!
//! | kind            | hook                      | what the server does        |
//! |-----------------|---------------------------|-----------------------------|
//! | slow read       | [`Chaos::on_read`]        | stalls before reading       |
//! | connection reset| [`Chaos::on_read`]        | errors the read             |
//! | partial write   | [`Chaos::on_write`]       | writes a prefix, then errors|
//! | accept error    | [`Chaos::on_accept`]      | treats accept as failed     |
//! | worker panic    | [`Chaos::on_job`]         | panics in/around a job      |
//! | queue stall     | [`Chaos::on_job`]         | sleeps before the job       |
//!
//! Every injection is counted in [`ChaosStats`], so a chaos suite can
//! assert it actually exercised each kind instead of trusting
//! probabilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What an IO hook ([`Chaos::on_read`] / [`Chaos::on_write`]) injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// No fault: proceed normally.
    None,
    /// Stall for the given duration before the IO proceeds.
    Slow(Duration),
    /// Write a prefix of the frame, then fail the connection — the peer
    /// sees a truncated frame and a close, never a desynced stream.
    /// (Meaningless for reads; [`Chaos::on_read`] never returns it.)
    PartialWrite,
    /// Fail the IO as a connection reset.
    Reset,
}

/// What the worker hook ([`Chaos::on_job`]) injects at job pickup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// No fault: handle the job normally.
    None,
    /// Panic *inside* the request handler — exercises the server's
    /// `catch_unwind` isolation (typed `Internal` reply, context rebuilt).
    Panic,
    /// Panic *outside* the handler's catch — kills the worker thread and
    /// exercises the supervisor's respawn path.
    PanicUncaught,
    /// Sleep before handling, backing the queue up — exercises
    /// `Overloaded` shedding and in-queue `DeadlineExceeded`.
    Stall(Duration),
}

/// Per-kind injection probabilities and magnitudes for [`SeededChaos`].
///
/// Probabilities are per hook call in `[0, 1]`; durations are the upper
/// bound of a uniform draw.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// P(stall before a read).
    pub slow_read: f64,
    /// Upper bound of an injected read stall.
    pub slow_read_max: Duration,
    /// P(fail a read as a connection reset).
    pub conn_reset: f64,
    /// P(truncate a write and fail the connection).
    pub partial_write: f64,
    /// P(fail an accept).
    pub accept_error: f64,
    /// P(panic at job pickup) — split evenly between caught and uncaught.
    pub worker_panic: f64,
    /// P(stall at job pickup).
    pub queue_stall: f64,
    /// Upper bound of an injected job-pickup stall.
    pub queue_stall_max: Duration,
}

impl ChaosConfig {
    /// A profile that exercises every fault kind at rates a few thousand
    /// requests will hit hundreds of times, without drowning the run.
    pub fn storm(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            slow_read: 0.05,
            slow_read_max: Duration::from_millis(3),
            conn_reset: 0.03,
            partial_write: 0.03,
            accept_error: 0.10,
            worker_panic: 0.03,
            queue_stall: 0.04,
            queue_stall_max: Duration::from_millis(5),
        }
    }

    /// All probabilities zero: hooks fire but never inject. Useful to
    /// measure the overhead of the enabled-but-quiet path.
    pub fn quiet(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            slow_read: 0.0,
            slow_read_max: Duration::ZERO,
            conn_reset: 0.0,
            partial_write: 0.0,
            accept_error: 0.0,
            worker_panic: 0.0,
            queue_stall: 0.0,
            queue_stall_max: Duration::ZERO,
        }
    }
}

/// Running totals of injected faults, one counter per kind.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Read stalls injected.
    pub slow_reads: AtomicU64,
    /// Connection resets injected.
    pub conn_resets: AtomicU64,
    /// Partial writes injected.
    pub partial_writes: AtomicU64,
    /// Accept failures injected.
    pub accept_errors: AtomicU64,
    /// Worker panics injected (caught + uncaught).
    pub worker_panics: AtomicU64,
    /// Job-pickup stalls injected.
    pub queue_stalls: AtomicU64,
}

/// A point-in-time copy of [`ChaosStats`], with the totals a chaos suite
/// asserts against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Read stalls injected.
    pub slow_reads: u64,
    /// Connection resets injected.
    pub conn_resets: u64,
    /// Partial writes injected.
    pub partial_writes: u64,
    /// Accept failures injected.
    pub accept_errors: u64,
    /// Worker panics injected (caught + uncaught).
    pub worker_panics: u64,
    /// Job-pickup stalls injected.
    pub queue_stalls: u64,
}

impl ChaosStatsSnapshot {
    /// Sum over every fault kind.
    pub fn total(&self) -> u64 {
        self.slow_reads
            + self.conn_resets
            + self.partial_writes
            + self.accept_errors
            + self.worker_panics
            + self.queue_stalls
    }

    /// `true` when every fault kind was injected at least once.
    pub fn all_kinds_hit(&self) -> bool {
        self.slow_reads > 0
            && self.conn_resets > 0
            && self.partial_writes > 0
            && self.accept_errors > 0
            && self.worker_panics > 0
            && self.queue_stalls > 0
    }
}

/// The injection interface the server threads through its hot paths.
///
/// Default implementations inject nothing, so an implementor overrides
/// only the hooks it cares about (tests use this to build single-fault
/// injectors: "reset the first read", "panic the next job").
pub trait Chaos: Send + Sync {
    /// Called before the server reads from a client connection.
    fn on_read(&self) -> IoFault {
        IoFault::None
    }
    /// Called before the server writes a response frame.
    fn on_write(&self) -> IoFault {
        IoFault::None
    }
    /// Called per accepted connection; `true` fails the accept.
    fn on_accept(&self) -> bool {
        false
    }
    /// Called at worker job pickup.
    fn on_job(&self) -> WorkerFault {
        WorkerFault::None
    }
}

/// `splitmix64` — the standard 64-bit finalizer-based generator. Pure, so
/// draw *i* of seed *s* is the same in every run.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded implementation: one atomic draw counter, one pure hash.
pub struct SeededChaos {
    config: ChaosConfig,
    counter: AtomicU64,
    stats: ChaosStats,
}

impl SeededChaos {
    /// Build an injector drawing from `config`'s seed.
    pub fn new(config: ChaosConfig) -> SeededChaos {
        SeededChaos {
            config,
            counter: AtomicU64::new(0),
            stats: ChaosStats::default(),
        }
    }

    /// The configuration the injector was built with.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Copy the per-kind injection counters.
    pub fn stats(&self) -> ChaosStatsSnapshot {
        let s = &self.stats;
        ChaosStatsSnapshot {
            slow_reads: s.slow_reads.load(Ordering::Relaxed),
            conn_resets: s.conn_resets.load(Ordering::Relaxed),
            partial_writes: s.partial_writes.load(Ordering::Relaxed),
            accept_errors: s.accept_errors.load(Ordering::Relaxed),
            worker_panics: s.worker_panics.load(Ordering::Relaxed),
            queue_stalls: s.queue_stalls.load(Ordering::Relaxed),
        }
    }

    /// Draw the next 64-bit value of the decision stream.
    fn draw(&self) -> u64 {
        let i = self.counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.config.seed ^ splitmix64(i))
    }

    /// Map a draw to `[0, 1)`.
    fn unit(draw: u64) -> f64 {
        (draw >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A duration uniform in `[0, max]`, derived from its own draw.
    fn duration_upto(&self, max: Duration) -> Duration {
        let nanos = max.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.draw() % (nanos + 1))
    }
}

impl Chaos for SeededChaos {
    fn on_read(&self) -> IoFault {
        let u = Self::unit(self.draw());
        if u < self.config.conn_reset {
            self.stats.conn_resets.fetch_add(1, Ordering::Relaxed);
            IoFault::Reset
        } else if u < self.config.conn_reset + self.config.slow_read {
            self.stats.slow_reads.fetch_add(1, Ordering::Relaxed);
            IoFault::Slow(self.duration_upto(self.config.slow_read_max))
        } else {
            IoFault::None
        }
    }

    fn on_write(&self) -> IoFault {
        if Self::unit(self.draw()) < self.config.partial_write {
            self.stats.partial_writes.fetch_add(1, Ordering::Relaxed);
            IoFault::PartialWrite
        } else {
            IoFault::None
        }
    }

    fn on_accept(&self) -> bool {
        if Self::unit(self.draw()) < self.config.accept_error {
            self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn on_job(&self) -> WorkerFault {
        let u = Self::unit(self.draw());
        if u < self.config.worker_panic {
            self.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            // Split the panic budget between the caught path (handler
            // panic → Internal frame) and the uncaught path (thread death
            // → supervisor respawn), so both stay exercised.
            if self.draw().is_multiple_of(2) {
                WorkerFault::Panic
            } else {
                WorkerFault::PanicUncaught
            }
        } else if u < self.config.worker_panic + self.config.queue_stall {
            self.stats.queue_stalls.fetch_add(1, Ordering::Relaxed);
            WorkerFault::Stall(self.duration_upto(self.config.queue_stall_max))
        } else {
            WorkerFault::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_single_threaded_stream() {
        let a = SeededChaos::new(ChaosConfig::storm(42));
        let b = SeededChaos::new(ChaosConfig::storm(42));
        for _ in 0..10_000 {
            assert_eq!(a.on_read(), b.on_read());
            assert_eq!(a.on_write(), b.on_write());
            assert_eq!(a.on_accept(), b.on_accept());
            assert_eq!(a.on_job(), b.on_job());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().all_kinds_hit(), "storm profile hits every kind");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = SeededChaos::new(ChaosConfig::storm(1));
        let b = SeededChaos::new(ChaosConfig::storm(2));
        let mut diverged = false;
        for _ in 0..1_000 {
            if a.on_read() != b.on_read() {
                diverged = true;
            }
        }
        assert!(diverged, "seeds 1 and 2 produce different streams");
    }

    #[test]
    fn quiet_profile_injects_nothing() {
        let c = SeededChaos::new(ChaosConfig::quiet(7));
        for _ in 0..1_000 {
            assert_eq!(c.on_read(), IoFault::None);
            assert_eq!(c.on_write(), IoFault::None);
            assert!(!c.on_accept());
            assert_eq!(c.on_job(), WorkerFault::None);
        }
        assert_eq!(c.stats().total(), 0);
    }

    #[test]
    fn rates_track_configuration() {
        let c = SeededChaos::new(ChaosConfig::storm(99));
        let n = 100_000;
        for _ in 0..n {
            c.on_read();
            c.on_write();
            c.on_accept();
            c.on_job();
        }
        let s = c.stats();
        let within = |count: u64, p: f64| {
            let expect = p * n as f64;
            (count as f64) > expect * 0.7 && (count as f64) < expect * 1.3
        };
        assert!(within(s.slow_reads, 0.05), "slow reads: {}", s.slow_reads);
        assert!(within(s.conn_resets, 0.03), "resets: {}", s.conn_resets);
        assert!(
            within(s.partial_writes, 0.03),
            "partial writes: {}",
            s.partial_writes
        );
        assert!(
            within(s.accept_errors, 0.10),
            "accept errors: {}",
            s.accept_errors
        );
        assert!(
            within(s.worker_panics, 0.03),
            "worker panics: {}",
            s.worker_panics
        );
        assert!(
            within(s.queue_stalls, 0.04),
            "queue stalls: {}",
            s.queue_stalls
        );
    }

    #[test]
    fn injected_durations_respect_bounds() {
        let c = SeededChaos::new(ChaosConfig::storm(5));
        for _ in 0..10_000 {
            if let IoFault::Slow(d) = c.on_read() {
                assert!(d <= c.config().slow_read_max);
            }
            if let WorkerFault::Stall(d) = c.on_job() {
                assert!(d <= c.config().queue_stall_max);
            }
        }
    }
}
