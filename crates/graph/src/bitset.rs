//! A fixed-capacity bitset used for vertex and edge masks.
//!
//! The algorithms in this workspace repeatedly need "is this edge banned?" /
//! "is this vertex removed?" membership queries on dense id spaces; a packed
//! `u64` bitset is both compact and fast for that access pattern.

/// A fixed-capacity set of small integers, packed 64 per word.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl BitSet {
    /// Create an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0u64; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Create a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Number of values the set can hold (`0..capacity`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of values currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set contains no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value`, returning `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `value >= capacity`.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "BitSet::insert out of range");
        let (w, b) = (value / 64, value % 64);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        if newly {
            self.len += 1;
        }
        newly
    }

    /// Remove `value`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        if present {
            self.len -= 1;
        }
        present
    }

    /// Membership test. Out-of-range values are reported as absent.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// Remove every value.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterate over the contained values in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place difference `self \ other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "BitSet capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Number of values present in both `self` and `other`.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Collect the contained values into a `Vec<usize>` in increasing order.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl ftb_io::Store for BitSet {
    /// Capacity (`u64`) followed by the packed words as a flat `u64` array.
    fn store(&self, w: &mut ftb_io::Writer) {
        w.put_u64(self.capacity as u64);
        w.put_u64_slice(&self.words);
    }
}

impl ftb_io::Load for BitSet {
    /// Rebuilds the set, revalidating the packing invariants: the word count
    /// must match the capacity and no bit above `capacity` may be set (the
    /// set operations assume clean tail words). `len` is recomputed from the
    /// words rather than trusted from the input.
    fn load(r: &mut ftb_io::Reader<'_>) -> Result<Self, ftb_io::SnapshotError> {
        let capacity = r.get_u64()? as usize;
        let words = r.get_u64_vec()?;
        if words.len() != capacity.div_ceil(64) {
            return Err(ftb_io::SnapshotError::Malformed {
                section: "bitset",
                detail: "word count does not match capacity",
            });
        }
        if !capacity.is_multiple_of(64) {
            let tail_mask = !((1u64 << (capacity % 64)) - 1);
            if words.last().is_some_and(|&last| last & tail_mask != 0) {
                return Err(ftb_io::SnapshotError::Malformed {
                    section: "bitset",
                    detail: "bits set above capacity",
                });
            }
        }
        let len = words.iter().map(|w| w.count_ones() as usize).sum();
        Ok(BitSet {
            words,
            capacity,
            len,
        })
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set with capacity `max + 1` of the yielded values (or 0).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

/// Iterator over the values of a [`BitSet`] in increasing order.
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert_eq!(s.len(), 3);
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_vec(), vec![0, 129]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(100);
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            assert!(s.contains(i));
        }
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(50));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn set_operations() {
        let mut a: BitSet = [1usize, 3, 5, 7].into_iter().collect();
        let b: BitSet = [3usize, 4, 5].into_iter().collect();
        // align capacities
        let mut a2 = BitSet::new(8);
        for v in a.iter() {
            a2.insert(v);
        }
        let mut b2 = BitSet::new(8);
        for v in b.iter() {
            b2.insert(v);
        }
        a = a2.clone();
        a.union_with(&b2);
        assert_eq!(a.to_vec(), vec![1, 3, 4, 5, 7]);

        let mut i = a2.clone();
        i.intersect_with(&b2);
        assert_eq!(i.to_vec(), vec![3, 5]);

        let mut d = a2.clone();
        d.difference_with(&b2);
        assert_eq!(d.to_vec(), vec![1, 7]);

        assert_eq!(a2.intersection_count(&b2), 2);
    }

    #[test]
    fn iterator_crosses_word_boundaries() {
        let mut s = BitSet::new(200);
        for v in [0usize, 63, 64, 65, 127, 128, 199] {
            s.insert(v);
        }
        assert_eq!(s.to_vec(), vec![0, 63, 64, 65, 127, 128, 199]);
    }

    proptest! {
        #[test]
        fn matches_btreeset_semantics(ops in proptest::collection::vec((0usize..256, any::<bool>()), 0..200)) {
            let mut bs = BitSet::new(256);
            let mut reference = BTreeSet::new();
            for (v, insert) in ops {
                if insert {
                    prop_assert_eq!(bs.insert(v), reference.insert(v));
                } else {
                    prop_assert_eq!(bs.remove(v), reference.remove(&v));
                }
                prop_assert_eq!(bs.len(), reference.len());
            }
            prop_assert_eq!(bs.to_vec(), reference.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn union_len_is_inclusion_exclusion(a in proptest::collection::btree_set(0usize..128, 0..60),
                                            b in proptest::collection::btree_set(0usize..128, 0..60)) {
            let mut sa = BitSet::new(128);
            for &v in &a { sa.insert(v); }
            let mut sb = BitSet::new(128);
            for &v in &b { sb.insert(v); }
            let inter = sa.intersection_count(&sb);
            let mut u = sa.clone();
            u.union_with(&sb);
            prop_assert_eq!(u.len(), a.len() + b.len() - inter);
        }
    }
}
