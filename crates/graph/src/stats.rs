//! Structural statistics and connectivity helpers.

use crate::csr::Graph;
use crate::ids::VertexId;

/// Summary statistics of a graph, used by the experiment harness to describe
/// workloads next to the measured structure sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Average degree (`2m / n`).
    pub avg_degree: f64,
    /// Number of connected components.
    pub num_components: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated_vertices: usize,
}

impl GraphStats {
    /// Compute statistics for `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let mut min_degree = usize::MAX;
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        for v in graph.vertices() {
            let d = graph.degree(v);
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        if n == 0 {
            min_degree = 0;
        }
        GraphStats {
            num_vertices: n,
            num_edges: m,
            min_degree,
            max_degree,
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            num_components: connected_components(graph).1,
            isolated_vertices: isolated,
        }
    }
}

/// Label the connected components of `graph`.
///
/// Returns `(labels, count)` where `labels[v]` is the 0-based component id of
/// vertex `v` and `count` is the number of components.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in graph.vertices() {
        if labels[start.index()] != u32::MAX {
            continue;
        }
        labels[start.index()] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for (w, _) in graph.neighbors(v) {
                if labels[w.index()] == u32::MAX {
                    labels[w.index()] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// `true` if every vertex is reachable from every other (and the graph is
/// non-empty).
pub fn is_connected(graph: &Graph) -> bool {
    graph.num_vertices() > 0 && connected_components(graph).1 == 1
}

/// `true` if all vertices are reachable from `source`.
pub fn is_reachable_from(graph: &Graph, source: VertexId) -> bool {
    let (labels, _) = connected_components(graph);
    let src_label = labels[source.index()];
    labels.iter().all(|&l| l == src_label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn stats_of_cycle() {
        let g = generators::cycle(8);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 8);
        assert_eq!(s.num_edges, 8);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.num_components, 1);
        assert_eq!(s.isolated_vertices, 0);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(2), VertexId(3));
        // vertices 4, 5 isolated
        let g = b.build();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(!is_connected(&g));
        assert!(!is_reachable_from(&g, VertexId(0)));
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated_vertices, 2);
        assert_eq!(s.min_degree, 0);
    }

    #[test]
    fn connected_graph_is_reachable_from_anywhere() {
        let g = generators::grid(4, 5);
        assert!(is_connected(&g));
        for v in g.vertices() {
            assert!(is_reachable_from(&g, v));
        }
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_components, 0);
        assert!(!is_connected(&g));
    }
}
