//! Mutable graph construction that freezes into a CSR [`Graph`].

use crate::csr::{Edge, Graph};
use crate::ids::VertexId;
use std::collections::HashSet;
use std::fmt;

/// Typed errors reported by [`GraphBuilder::try_build`].
///
/// The CSR representation stores vertex and edge ids as `u32`; inputs beyond
/// that range used to truncate silently in the infallible path. They are now
/// diagnosed up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// More vertices than a `u32` vertex id can address.
    TooManyVertices {
        /// The offending vertex count.
        num_vertices: usize,
    },
    /// More edge slots (`2m`) than a `u32` edge id can address.
    TooManyEdges {
        /// The offending edge count.
        num_edges: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooManyVertices { num_vertices } => write!(
                f,
                "{num_vertices} vertices exceed the u32 CSR vertex-id space"
            ),
            GraphError::TooManyEdges { num_edges } => {
                write!(f, "{num_edges} edges exceed the u32 CSR edge-id space")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Accumulates edges and freezes them into an immutable [`Graph`].
///
/// The builder:
/// * ignores self loops,
/// * de-duplicates parallel edges (the graph model in the paper is simple),
/// * can grow the vertex count on demand via [`GraphBuilder::ensure_vertex`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    seen: HashSet<(u32, u32)>,
    ignored_self_loops: usize,
    ignored_duplicates: usize,
}

impl GraphBuilder {
    /// Create a builder for a graph with `num_vertices` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            seen: HashSet::new(),
            ignored_self_loops: 0,
            ignored_duplicates: 0,
        }
    }

    /// Create a builder preallocating space for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(num_edges);
        b.seen.reserve(num_edges);
        b
    }

    /// Current number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of accepted edges so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of rejected self-loops so far.
    pub fn ignored_self_loops(&self) -> usize {
        self.ignored_self_loops
    }

    /// Number of rejected duplicate edges so far.
    pub fn ignored_duplicates(&self) -> usize {
        self.ignored_duplicates
    }

    /// Grow the vertex set so that it contains `v`.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v.index() >= self.num_vertices {
            self.num_vertices = v.index() + 1;
        }
    }

    /// Allocate and return a fresh vertex id.
    pub fn add_vertex(&mut self) -> VertexId {
        let v = VertexId::new(self.num_vertices);
        self.num_vertices += 1;
        v
    }

    /// Allocate `count` fresh vertices and return their ids.
    pub fn add_vertices(&mut self, count: usize) -> Vec<VertexId> {
        (0..count).map(|_| self.add_vertex()).collect()
    }

    /// Add an undirected edge `{a, b}`.
    ///
    /// Self loops and duplicates are ignored (and counted). Returns `true`
    /// iff the edge was accepted. Endpoints outside the current vertex range
    /// grow the graph.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) -> bool {
        if a == b {
            self.ignored_self_loops += 1;
            return false;
        }
        self.ensure_vertex(a);
        self.ensure_vertex(b);
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if !self.seen.insert(key) {
            self.ignored_duplicates += 1;
            return false;
        }
        self.edges.push(Edge::new(a, b));
        true
    }

    /// `true` if the edge `{a, b}` has already been accepted.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.seen.contains(&key)
    }

    /// Add a path `vs[0] - vs[1] - ... - vs[k-1]`.
    pub fn add_path(&mut self, vs: &[VertexId]) {
        for w in vs.windows(2) {
            self.add_edge(w[0], w[1]);
        }
    }

    /// Freeze into an immutable CSR [`Graph`], diagnosing inputs that do not
    /// fit the `u32` id space as a typed [`GraphError`].
    pub fn try_build(self) -> Result<Graph, GraphError> {
        if self.num_vertices > u32::MAX as usize {
            return Err(GraphError::TooManyVertices {
                num_vertices: self.num_vertices,
            });
        }
        if self.edges.len() > (u32::MAX / 2) as usize {
            return Err(GraphError::TooManyEdges {
                num_edges: self.edges.len(),
            });
        }
        Ok(self.build_unchecked())
    }

    /// Freeze into an immutable CSR [`Graph`].
    ///
    /// # Panics
    /// Panics when the graph does not fit the `u32` id space; use
    /// [`GraphBuilder::try_build`] to handle that case gracefully.
    pub fn build(self) -> Graph {
        match self.try_build() {
            Ok(graph) => graph,
            Err(err) => panic!("GraphBuilder::build: {err}"),
        }
    }

    fn build_unchecked(self) -> Graph {
        let n = self.num_vertices;
        let m = self.edges.len();
        let mut degree = vec![0u32; n];
        for e in &self.edges {
            degree[e.u.index()] += 1;
            degree[e.v.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n] as usize;
        debug_assert_eq!(total, 2 * m);
        let mut neighbors = vec![0u32; total];
        let mut slot_edges = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (idx, e) in self.edges.iter().enumerate() {
            let (u, v) = (e.u.index(), e.v.index());
            let cu = cursor[u] as usize;
            neighbors[cu] = e.v.0;
            slot_edges[cu] = idx as u32;
            cursor[u] += 1;
            let cv = cursor[v] as usize;
            neighbors[cv] = e.u.0;
            slot_edges[cv] = idx as u32;
            cursor[v] += 1;
        }
        Graph::from_parts(offsets, neighbors, slot_edges, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn self_loops_and_duplicates_are_ignored() {
        let mut b = GraphBuilder::new(3);
        assert!(!b.add_edge(VertexId(1), VertexId(1)));
        assert!(b.add_edge(VertexId(0), VertexId(1)));
        assert!(!b.add_edge(VertexId(1), VertexId(0)));
        assert_eq!(b.ignored_self_loops(), 1);
        assert_eq!(b.ignored_duplicates(), 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn vertices_grow_on_demand() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(VertexId(0), VertexId(9));
        assert_eq!(b.num_vertices(), 10);
        let v = b.add_vertex();
        assert_eq!(v, VertexId(10));
        let more = b.add_vertices(3);
        assert_eq!(more, vec![VertexId(11), VertexId(12), VertexId(13)]);
        let g = b.build();
        assert_eq!(g.num_vertices(), 14);
    }

    #[test]
    fn add_path_builds_chain() {
        let mut b = GraphBuilder::new(5);
        let vs: Vec<VertexId> = (0..5).map(VertexId).collect();
        b.add_path(&vs);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(2)), 2);
    }

    #[test]
    fn try_build_accepts_normal_graphs_and_reports_overflow() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        let g = b.try_build().expect("small graphs always fit");
        assert_eq!(g.num_edges(), 1);

        // An empty builder claiming more vertices than u32 can address must
        // be rejected rather than truncated.
        let mut huge = GraphBuilder::new(0);
        huge.num_vertices = u32::MAX as usize + 1;
        assert!(matches!(
            huge.try_build(),
            Err(GraphError::TooManyVertices {
                num_vertices
            }) if num_vertices == u32::MAX as usize + 1
        ));
    }

    #[test]
    fn graph_error_display_is_informative() {
        let e = GraphError::TooManyEdges { num_edges: 5 };
        assert!(e.to_string().contains('5'));
        let e = GraphError::TooManyVertices { num_vertices: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn has_edge_tracks_insertions() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(2), VertexId(3));
        assert!(b.has_edge(VertexId(3), VertexId(2)));
        assert!(!b.has_edge(VertexId(0), VertexId(1)));
    }

    proptest! {
        /// The CSR adjacency must agree with the edge list: every accepted
        /// edge appears exactly once in each endpoint's adjacency and degree
        /// sums equal 2m.
        #[test]
        fn csr_is_consistent_with_edge_list(
            n in 1usize..40,
            raw_edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120)
        ) {
            let mut b = GraphBuilder::new(n);
            for (a, bb) in raw_edges {
                b.add_edge(VertexId(a % n as u32), VertexId(bb % n as u32));
            }
            let g = b.build();
            prop_assert_eq!(g.degree_sum(), 2 * g.num_edges());
            for (eid, edge) in g.edges() {
                let cnt_u = g.neighbors(edge.u).filter(|&(w, e)| w == edge.v && e == eid).count();
                let cnt_v = g.neighbors(edge.v).filter(|&(w, e)| w == edge.u && e == eid).count();
                prop_assert_eq!(cnt_u, 1);
                prop_assert_eq!(cnt_v, 1);
            }
            // no duplicate undirected edges
            let mut keys: Vec<(u32, u32)> = g.edges().map(|(_, e)| (e.u.0, e.v.0)).collect();
            keys.sort_unstable();
            let before = keys.len();
            keys.dedup();
            prop_assert_eq!(keys.len(), before);
        }
    }
}
