//! Masked subgraph views.
//!
//! The algorithms in the paper constantly reason about `G \ {e}` (one failed
//! edge), `G \ V(π)` (a removed path's interior) and about the constructed
//! structure `H ⊆ G`. Instead of materialising new CSR graphs for each of
//! these, searches take a [`SubgraphView`] — a pair of optional vertex/edge
//! masks over the parent graph — and skip masked-out elements on the fly.

use crate::bitset::BitSet;
use crate::csr::Graph;
use crate::ids::{EdgeId, VertexId};

/// A set of **removed** vertices.
#[derive(Clone, Debug)]
pub struct VertexMask {
    removed: BitSet,
}

impl VertexMask {
    /// No vertex removed.
    pub fn none(graph: &Graph) -> Self {
        VertexMask {
            removed: BitSet::new(graph.num_vertices()),
        }
    }

    /// Remove exactly the given vertices.
    pub fn removing<I: IntoIterator<Item = VertexId>>(graph: &Graph, vs: I) -> Self {
        let mut m = Self::none(graph);
        for v in vs {
            m.remove(v);
        }
        m
    }

    /// Mark `v` as removed.
    pub fn remove(&mut self, v: VertexId) {
        self.removed.insert(v.index());
    }

    /// Undo removal of `v`.
    pub fn restore(&mut self, v: VertexId) {
        self.removed.remove(v.index());
    }

    /// `true` if `v` is still present.
    #[inline]
    pub fn allows(&self, v: VertexId) -> bool {
        !self.removed.contains(v.index())
    }

    /// Number of removed vertices.
    pub fn num_removed(&self) -> usize {
        self.removed.len()
    }

    /// Iterate over the removed vertices.
    pub fn removed_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.removed.iter().map(VertexId::new)
    }
}

/// A set of **removed** edges.
#[derive(Clone, Debug)]
pub struct EdgeMask {
    removed: BitSet,
}

impl EdgeMask {
    /// No edge removed.
    pub fn none(graph: &Graph) -> Self {
        EdgeMask {
            removed: BitSet::new(graph.num_edges()),
        }
    }

    /// Remove exactly the given edges.
    pub fn removing<I: IntoIterator<Item = EdgeId>>(graph: &Graph, es: I) -> Self {
        let mut m = Self::none(graph);
        for e in es {
            m.remove(e);
        }
        m
    }

    /// Mark `e` as removed.
    pub fn remove(&mut self, e: EdgeId) {
        self.removed.insert(e.index());
    }

    /// Undo removal of `e`.
    pub fn restore(&mut self, e: EdgeId) {
        self.removed.remove(e.index());
    }

    /// `true` if `e` is still present.
    #[inline]
    pub fn allows(&self, e: EdgeId) -> bool {
        !self.removed.contains(e.index())
    }

    /// Number of removed edges.
    pub fn num_removed(&self) -> usize {
        self.removed.len()
    }
}

/// A lightweight filtered view of a [`Graph`].
///
/// Combines (all optional):
/// * a single banned edge (the failing edge `e` in `G \ {e}`),
/// * an [`EdgeMask`] restricting the edge set (used for `H ⊆ G`),
/// * a [`VertexMask`] removing vertices (used by Algorithm `Pcons`'s
///   `G_j(v)` graphs).
#[derive(Clone)]
pub struct SubgraphView<'a> {
    graph: &'a Graph,
    banned_edge: Option<EdgeId>,
    edge_mask: Option<&'a EdgeMask>,
    allowed_edges: Option<&'a BitSet>,
    vertex_mask: Option<&'a VertexMask>,
}

impl<'a> SubgraphView<'a> {
    /// A view of the whole graph.
    pub fn full(graph: &'a Graph) -> Self {
        SubgraphView {
            graph,
            banned_edge: None,
            edge_mask: None,
            allowed_edges: None,
            vertex_mask: None,
        }
    }

    /// Ban a single edge (the failing edge).
    pub fn without_edge(mut self, e: EdgeId) -> Self {
        self.banned_edge = Some(e);
        self
    }

    /// Optionally ban a single edge.
    pub fn without_edge_opt(mut self, e: Option<EdgeId>) -> Self {
        self.banned_edge = e;
        self
    }

    /// Restrict to edges allowed by `mask` (mask lists *removed* edges).
    pub fn with_edge_mask(mut self, mask: &'a EdgeMask) -> Self {
        self.edge_mask = Some(mask);
        self
    }

    /// Restrict to edges whose ids are members of `allowed` (a whitelist);
    /// used to view a structure `H ⊆ G` given its edge set.
    pub fn with_allowed_edges(mut self, allowed: &'a BitSet) -> Self {
        self.allowed_edges = Some(allowed);
        self
    }

    /// Remove the vertices listed in `mask`.
    pub fn with_vertex_mask(mut self, mask: &'a VertexMask) -> Self {
        self.vertex_mask = Some(mask);
        self
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// `true` if the edge survives all filters.
    #[inline]
    pub fn allows_edge(&self, e: EdgeId) -> bool {
        if self.banned_edge == Some(e) {
            return false;
        }
        if let Some(mask) = self.edge_mask {
            if !mask.allows(e) {
                return false;
            }
        }
        if let Some(allowed) = self.allowed_edges {
            if !allowed.contains(e.index()) {
                return false;
            }
        }
        true
    }

    /// `true` if the vertex survives all filters.
    #[inline]
    pub fn allows_vertex(&self, v: VertexId) -> bool {
        match self.vertex_mask {
            Some(mask) => mask.allows(v),
            None => true,
        }
    }

    /// Iterate over the surviving `(neighbor, edge)` pairs of `v`.
    ///
    /// If `v` itself is masked out the iterator is empty.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let alive = self.allows_vertex(v);
        self.graph
            .neighbors(v)
            .filter(move |&(w, e)| alive && self.allows_vertex(w) && self.allows_edge(e))
    }

    /// Count the surviving edges (each undirected edge counted once).
    pub fn count_edges(&self) -> usize {
        self.graph
            .edges()
            .filter(|&(e, edge)| {
                self.allows_edge(e) && self.allows_vertex(edge.u) && self.allows_vertex(edge.v)
            })
            .count()
    }
}

/// Materialise the subgraph induced by an edge whitelist as a fresh [`Graph`]
/// together with the mapping from new edge ids to original edge ids.
///
/// Vertex ids are preserved (the vertex set is unchanged); only edges are
/// filtered. This is used when a constructed structure `H` needs to be
/// handled as a standalone graph.
pub fn extract_edge_subgraph(graph: &Graph, allowed: &BitSet) -> (Graph, Vec<EdgeId>) {
    let mut builder =
        crate::builder::GraphBuilder::with_capacity(graph.num_vertices(), allowed.len());
    let mut mapping = Vec::with_capacity(allowed.len());
    for (eid, edge) in graph.edges() {
        if allowed.contains(eid.index()) {
            builder.add_edge(edge.u, edge.v);
            mapping.push(eid);
        }
    }
    (builder.build(), mapping)
}

/// A compact CSR materialisation of an edge-induced subgraph, carrying the
/// edge-id translation both ways.
///
/// Serving engines search sparse subgraphs (`H`, the augmented `H⁺`) many
/// times per second; iterating a masked [`SubgraphView`] pays a filter test
/// per incident edge of the *parent* graph, while a compact CSR touches only
/// the surviving edges. `CompactSubgraph` pairs that CSR with
/// [`CompactSubgraph::parent_edge`] / [`CompactSubgraph::compact_edge`] so
/// callers can keep talking in parent-graph edge ids (fault sets, parent
/// pointers) while searching the compact id space.
#[derive(Clone, Debug)]
pub struct CompactSubgraph {
    graph: Graph,
    to_parent: Vec<EdgeId>,
    from_parent: Vec<Option<u32>>,
}

impl CompactSubgraph {
    /// Extract the subgraph induced by the `allowed` edge whitelist of
    /// `parent` (vertex ids preserved, edges renumbered densely).
    pub fn from_edge_set(parent: &Graph, allowed: &BitSet) -> Self {
        let (graph, to_parent) = extract_edge_subgraph(parent, allowed);
        let mut from_parent = vec![None; parent.num_edges()];
        for (compact, &pe) in to_parent.iter().enumerate() {
            from_parent[pe.index()] = Some(compact as u32);
        }
        CompactSubgraph {
            graph,
            to_parent,
            from_parent,
        }
    }

    /// The compact CSR graph (vertex ids match the parent graph).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of edges in the compact subgraph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Translate a compact edge id back to the parent graph's edge id.
    #[inline]
    pub fn parent_edge(&self, compact: EdgeId) -> EdgeId {
        self.to_parent[compact.index()]
    }

    /// Translate a parent-graph edge id to its compact id, if the edge
    /// survived the extraction.
    #[inline]
    pub fn compact_edge(&self, parent: EdgeId) -> Option<EdgeId> {
        self.from_parent[parent.index()].map(EdgeId)
    }

    /// `true` if the parent-graph edge survived the extraction (is part of
    /// this compact subgraph). Out-of-range parent ids are simply absent.
    #[inline]
    pub fn contains_parent_edge(&self, parent: EdgeId) -> bool {
        self.from_parent
            .get(parent.index())
            .is_some_and(|slot| slot.is_some())
    }

    /// Iterate the surviving `(neighbor, edge)` pairs of `v`, reporting
    /// edges as **parent-graph** edge ids.
    pub fn neighbors_parent_ids(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.graph
            .neighbors(v)
            .map(|(w, ce)| (w, self.parent_edge(ce)))
    }

    /// Serialize as the compact CSR plus the compact→parent edge mapping.
    ///
    /// The reverse mapping (`from_parent`) is not written: it is a pure
    /// function of `to_parent` and the parent edge count, and rebuilding it
    /// at load time is one `O(m)` scatter — cheaper than reading it.
    pub fn store_into(&self, w: &mut ftb_io::Writer) {
        use ftb_io::Store;
        self.graph.store(w);
        let flat: Vec<u32> = self.to_parent.iter().map(|e| e.0).collect();
        w.put_u32_slice(&flat);
    }

    /// Decode a subgraph written by [`CompactSubgraph::store_into`].
    ///
    /// `parent_num_edges` is the edge count of the parent graph this
    /// subgraph was extracted from; the mapping is validated to be an
    /// injection into that id space before the reverse index is rebuilt.
    pub fn load_from(
        r: &mut ftb_io::Reader<'_>,
        parent_num_edges: usize,
    ) -> Result<Self, ftb_io::SnapshotError> {
        use ftb_io::Load;
        let bad = |detail: &'static str| ftb_io::SnapshotError::Malformed {
            section: "compact subgraph",
            detail,
        };
        let graph = Graph::load(r)?;
        let to_parent: Vec<EdgeId> = r.get_u32_vec()?.into_iter().map(EdgeId).collect();
        if to_parent.len() != graph.num_edges() {
            return Err(bad("edge mapping length does not match compact CSR"));
        }
        let mut from_parent = vec![None; parent_num_edges];
        for (compact, pe) in to_parent.iter().enumerate() {
            if pe.index() >= parent_num_edges {
                return Err(bad("parent edge id out of range"));
            }
            if from_parent[pe.index()].replace(compact as u32).is_some() {
                return Err(bad("duplicate parent edge in mapping"));
            }
        }
        Ok(CompactSubgraph {
            graph,
            to_parent,
            from_parent,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn full_view_allows_everything() {
        let g = generators::cycle(5);
        let view = SubgraphView::full(&g);
        for (e, edge) in g.edges() {
            assert!(view.allows_edge(e));
            assert!(view.allows_vertex(edge.u));
        }
        assert_eq!(view.count_edges(), 5);
    }

    #[test]
    fn banned_edge_is_filtered() {
        let g = generators::cycle(5);
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let view = SubgraphView::full(&g).without_edge(e);
        assert!(!view.allows_edge(e));
        assert_eq!(view.count_edges(), 4);
        let nbrs: Vec<_> = view.neighbors(VertexId(0)).map(|(v, _)| v).collect();
        assert!(!nbrs.contains(&VertexId(1)));
    }

    #[test]
    fn vertex_mask_removes_incident_edges() {
        let g = generators::complete(4);
        let mask = VertexMask::removing(&g, [VertexId(3)]);
        let view = SubgraphView::full(&g).with_vertex_mask(&mask);
        assert_eq!(view.count_edges(), 3); // K4 minus a vertex = K3
        assert_eq!(view.neighbors(VertexId(3)).count(), 0);
        assert_eq!(view.neighbors(VertexId(0)).count(), 2);
        assert_eq!(mask.num_removed(), 1);
        assert_eq!(
            mask.removed_vertices().collect::<Vec<_>>(),
            vec![VertexId(3)]
        );
    }

    #[test]
    fn edge_mask_and_whitelist() {
        let g = generators::complete(4);
        let e01 = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let mask = EdgeMask::removing(&g, [e01]);
        let view = SubgraphView::full(&g).with_edge_mask(&mask);
        assert_eq!(view.count_edges(), 5);

        let mut allowed = BitSet::new(g.num_edges());
        allowed.insert(e01.index());
        let view2 = SubgraphView::full(&g).with_allowed_edges(&allowed);
        assert_eq!(view2.count_edges(), 1);
        assert!(view2.allows_edge(e01));
    }

    #[test]
    fn masks_can_be_restored() {
        let g = generators::path(4);
        let e = g.find_edge(VertexId(1), VertexId(2)).unwrap();
        let mut em = EdgeMask::none(&g);
        em.remove(e);
        assert!(!em.allows(e));
        em.restore(e);
        assert!(em.allows(e));
        assert_eq!(em.num_removed(), 0);

        let mut vm = VertexMask::none(&g);
        vm.remove(VertexId(2));
        vm.restore(VertexId(2));
        assert!(vm.allows(VertexId(2)));
    }

    #[test]
    fn extraction_preserves_vertex_ids() {
        let g = generators::cycle(6);
        let mut allowed = BitSet::new(g.num_edges());
        for (eid, edge) in g.edges() {
            if edge.u != VertexId(0) && edge.v != VertexId(0) {
                allowed.insert(eid.index());
            }
        }
        let (sub, mapping) = extract_edge_subgraph(&g, &allowed);
        assert_eq!(sub.num_vertices(), 6);
        assert_eq!(sub.num_edges(), 4);
        assert_eq!(mapping.len(), 4);
        assert_eq!(sub.degree(VertexId(0)), 0);
    }

    #[test]
    fn combined_filters_compose() {
        let g = generators::complete(5);
        let e = g.find_edge(VertexId(0), VertexId(1)).unwrap();
        let vmask = VertexMask::removing(&g, [VertexId(4)]);
        let view = SubgraphView::full(&g)
            .without_edge(e)
            .with_vertex_mask(&vmask);
        // K5 has 10 edges; removing vertex 4 kills 4, banning e kills 1 more.
        assert_eq!(view.count_edges(), 5);
    }
}
