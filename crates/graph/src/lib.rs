//! Graph substrate for the fault-tolerant BFS reproduction suite.
//!
//! This crate provides the low-level graph representation used throughout the
//! workspace:
//!
//! * [`VertexId`] / [`EdgeId`] — compact `u32` newtypes for vertices and
//!   (undirected) edges,
//! * [`Graph`] — an immutable undirected graph in CSR (compressed sparse row)
//!   form, carrying per-position edge identifiers so that edge-indexed sets
//!   are cheap,
//! * [`GraphBuilder`] — a mutable accumulator with duplicate/self-loop
//!   handling that freezes into a [`Graph`],
//! * [`Fault`] / [`FaultSet`] — the fault model: failed edges and vertices,
//!   kept as small canonical (sorted, deduplicated) sets usable as query
//!   arguments and cache keys,
//! * [`BitSet`] — a fixed-capacity bitset used for vertex and edge masks,
//! * [`generators`] — deterministic constructions of basic graph families
//!   (paths, cycles, cliques, bipartite graphs, stars, grids),
//! * [`subgraph`] — masked views and subgraph extraction,
//! * [`stats`] — degree and connectivity statistics.
//!
//! All graphs in this workspace are **undirected and unweighted**; fault
//! tolerance, shortest paths and tie-breaking weights live in the higher
//! layers (`ftb-sp`, `ftb-rp`, `ftb-core`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod fault;
pub mod generators;
pub mod ids;
pub mod stats;
pub mod subgraph;

pub use bitset::BitSet;
pub use builder::{GraphBuilder, GraphError};
pub use csr::{Edge, Graph, NeighborIter};
pub use fault::{enumerate_fault_sets, Fault, FaultSet};
pub use ids::{EdgeId, VertexId};
pub use stats::GraphStats;
pub use subgraph::{CompactSubgraph, EdgeMask, SubgraphView, VertexMask};
