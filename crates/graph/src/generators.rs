//! Deterministic generators of basic graph families.
//!
//! Randomised families (Erdős–Rényi, layered random graphs, preferential
//! attachment) live in the `ftb-workloads` crate; this module only contains
//! the deterministic building blocks needed by the lower-bound constructions
//! and by tests.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::ids::VertexId;

/// A simple path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(VertexId::new(i - 1), VertexId::new(i));
    }
    b.build()
}

/// A cycle on `n >= 3` vertices (for `n < 3` this degrades to a path).
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 1..n {
        b.add_edge(VertexId::new(i - 1), VertexId::new(i));
    }
    if n >= 3 {
        b.add_edge(VertexId::new(n - 1), VertexId::new(0));
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(VertexId::new(i), VertexId::new(j));
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`; the first `a` vertices form one
/// side, the remaining `b` the other.
pub fn complete_bipartite(a: usize, b_side: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(a + b_side, a * b_side);
    for i in 0..a {
        for j in 0..b_side {
            b.add_edge(VertexId::new(i), VertexId::new(a + j));
        }
    }
    b.build()
}

/// A star with centre `0` and `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(leaves + 1, leaves);
    for i in 1..=leaves {
        b.add_edge(VertexId(0), VertexId::new(i));
    }
    b.build()
}

/// A `rows x cols` grid graph. Vertex `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let idx = |r: usize, c: usize| VertexId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube (`2^d` vertices).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::with_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1usize << bit);
            if w > v {
                b.add_edge(VertexId::new(v), VertexId::new(w));
            }
        }
    }
    b.build()
}

/// The paper's introductory example: a source `s` (vertex `0`) connected by a
/// single pendant edge to one vertex of an `(n-1)`-vertex clique.
///
/// In this graph the conservative "keep all edges" strategy still has edge
/// connectivity 1 (the pendant edge), whereas in the mixed model reinforcing
/// the single pendant edge yields high survivability with only a fraction of
/// the clique edges as backup.
pub fn clique_with_pendant(n: usize) -> Graph {
    assert!(n >= 2, "clique_with_pendant needs at least 2 vertices");
    let mut b = GraphBuilder::with_capacity(n, (n - 1) * (n - 2) / 2 + 1);
    // clique on vertices 1..n
    for i in 1..n {
        for j in (i + 1)..n {
            b.add_edge(VertexId::new(i), VertexId::new(j));
        }
    }
    // pendant edge s = 0 to vertex 1
    b.add_edge(VertexId(0), VertexId(1));
    b.build()
}

/// Two cliques of size `k` joined by a path of `bridge_len` edges
/// (a "barbell"); useful as a stress test with a long mandatory path.
pub fn barbell(k: usize, bridge_len: usize) -> Graph {
    assert!(k >= 1);
    let n = 2 * k + bridge_len.saturating_sub(1);
    let mut b = GraphBuilder::with_capacity(n, k * k + bridge_len);
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(VertexId::new(i), VertexId::new(j));
            b.add_edge(
                VertexId::new(k + bridge_len - 1 + i),
                VertexId::new(k + bridge_len - 1 + j),
            );
        }
    }
    // bridge from vertex k-1 through fresh vertices to the second clique's vertex (k+bridge_len-1)
    let mut prev = VertexId::new(k - 1);
    for step in 0..bridge_len {
        let next = if step + 1 == bridge_len {
            VertexId::new(k + bridge_len - 1)
        } else {
            VertexId::new(k + step)
        };
        b.add_edge(prev, next);
        prev = next;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(2)), 2);
    }

    #[test]
    fn path_degenerate_cases() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        // n < 3 degrades to a path
        assert_eq!(cycle(2).num_edges(), 1);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        for i in 0..3 {
            assert_eq!(g.degree(VertexId(i)), 4);
        }
        for j in 3..7 {
            assert_eq!(g.degree(VertexId(j)), 3);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.degree(VertexId(0)), 7);
        assert_eq!(g.degree(VertexId(3)), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // horizontal 3*3 + vertical 2*4 = 17
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(VertexId(0)), 2); // corner
        assert_eq!(g.degree(VertexId(5)), 4); // interior
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 32);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn clique_with_pendant_shape() {
        let g = clique_with_pendant(10);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 9 * 8 / 2 + 1);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(1)), 9);
    }

    #[test]
    fn barbell_is_connected_and_sized() {
        let g = barbell(4, 3);
        assert_eq!(g.num_vertices(), 2 * 4 + 2);
        // 2 * C(4,2) + 3 bridge edges
        assert_eq!(g.num_edges(), 2 * 6 + 3);
    }
}
