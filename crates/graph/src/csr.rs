//! Immutable undirected graphs in CSR (compressed sparse row) form.

use crate::ids::{EdgeId, VertexId};

/// An undirected edge: the pair of endpoints, stored with `u <= v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Canonicalise an endpoint pair (orders the endpoints).
    pub fn new(a: VertexId, b: VertexId) -> Self {
        if a <= b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x:?} is not an endpoint of {self:?}")
        }
    }

    /// `true` if `x` is one of the two endpoints.
    pub fn is_incident(&self, x: VertexId) -> bool {
        x == self.u || x == self.v
    }
}

/// An immutable undirected graph in CSR form.
///
/// The adjacency of every vertex is stored contiguously; every adjacency
/// entry carries both the neighbour and the [`EdgeId`] of the connecting
/// (undirected) edge, so higher layers can build edge-indexed masks without
/// hash lookups.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` is the adjacency slice of vertex `v`.
    offsets: Vec<u32>,
    /// Neighbour vertex per adjacency slot.
    neighbors: Vec<u32>,
    /// Undirected edge id per adjacency slot.
    slot_edges: Vec<u32>,
    /// Endpoints per undirected edge id.
    edges: Vec<Edge>,
}

impl Graph {
    /// Construct from prebuilt CSR arrays. Intended for [`crate::GraphBuilder`].
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        neighbors: Vec<u32>,
        slot_edges: Vec<u32>,
        edges: Vec<Edge>,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), slot_edges.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, neighbors.len());
        Graph {
            offsets,
            neighbors,
            slot_edges,
            edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterate over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterate over all edge ids `0..m`.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Endpoints of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.index()]
    }

    /// All edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (EdgeId::new(i), e))
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate over `(neighbor, edge_id)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> NeighborIter<'_> {
        let i = v.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        NeighborIter {
            neighbors: &self.neighbors[lo..hi],
            slot_edges: &self.slot_edges[lo..hi],
            pos: 0,
        }
    }

    /// Find the edge id connecting `u` and `v`, if any.
    ///
    /// Scans the adjacency of the lower-degree endpoint.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).find(|&(w, _)| w == b).map(|(_, e)| e)
    }

    /// `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// Sum of all degrees (`2m`).
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// A 64-bit fingerprint of the graph's topology: FNV-1a over the vertex
    /// count, the edge count, and every edge's endpoint pair in id order.
    ///
    /// Two graphs share a fingerprint exactly when they have the same
    /// vertex/edge spaces and the same endpoints for every edge id — the
    /// property query ids depend on. The network protocol's hello handshake
    /// exchanges this value so a client replaying a workload against a
    /// server is guaranteed to be naming vertices and edges of the *same*
    /// graph (up to 64-bit collision odds).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |value: u32| {
            for byte in value.to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.num_vertices() as u32);
        eat(self.num_edges() as u32);
        for edge in &self.edges {
            eat(edge.u.0);
            eat(edge.v.0);
        }
        hash
    }

    /// Total memory footprint of the CSR arrays in bytes (approximate).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.neighbors.len() * 4
            + self.slot_edges.len() * 4
            + self.edges.len() * std::mem::size_of::<Edge>()
    }
}

impl ftb_io::Store for Graph {
    /// The four CSR arrays as flat little-endian `u32` arrays; edge
    /// endpoints are flattened to `2m` interleaved `u` / `v` values.
    fn store(&self, w: &mut ftb_io::Writer) {
        w.put_u32_slice(&self.offsets);
        w.put_u32_slice(&self.neighbors);
        w.put_u32_slice(&self.slot_edges);
        let mut flat = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            flat.push(e.u.0);
            flat.push(e.v.0);
        }
        w.put_u32_slice(&flat);
    }
}

impl ftb_io::Load for Graph {
    /// Rebuilds the CSR, revalidating every structural invariant the query
    /// layers rely on: offsets are monotone and bound the adjacency arrays,
    /// every neighbour/edge id is in range, endpoints are canonical
    /// (`u <= v`), and every adjacency slot names an edge whose endpoints
    /// are exactly `{vertex, neighbour}`.
    fn load(r: &mut ftb_io::Reader<'_>) -> Result<Self, ftb_io::SnapshotError> {
        use ftb_io::SnapshotError::Malformed;
        const SECTION: &str = "graph";
        let bad = |detail: &'static str| Malformed {
            section: SECTION,
            detail,
        };
        let offsets = r.get_u32_vec()?;
        let neighbors = r.get_u32_vec()?;
        let slot_edges = r.get_u32_vec()?;
        let flat = r.get_u32_vec()?;
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(bad("offsets must start with 0"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad("offsets not monotone"));
        }
        if *offsets.last().unwrap() as usize != neighbors.len() {
            return Err(bad("offsets do not cover the adjacency array"));
        }
        if neighbors.len() != slot_edges.len() {
            return Err(bad("neighbor/slot-edge length mismatch"));
        }
        if flat.len() % 2 != 0 {
            return Err(bad("odd endpoint array length"));
        }
        let n = offsets.len() - 1;
        let m = flat.len() / 2;
        let edges: Vec<Edge> = flat
            .chunks_exact(2)
            .map(|c| Edge {
                u: VertexId(c[0]),
                v: VertexId(c[1]),
            })
            .collect();
        if edges.iter().any(|e| e.u > e.v || e.v.index() >= n) {
            return Err(bad("edge endpoints out of range or not canonical"));
        }
        if neighbors.iter().any(|&w| w as usize >= n) {
            return Err(bad("neighbor id out of range"));
        }
        if slot_edges.iter().any(|&e| e as usize >= m) {
            return Err(bad("slot edge id out of range"));
        }
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            for slot in lo..hi {
                let edge = edges[slot_edges[slot] as usize];
                let expect = Edge::new(VertexId(v as u32), VertexId(neighbors[slot]));
                if edge != expect {
                    return Err(bad("adjacency slot names an unrelated edge"));
                }
            }
        }
        Ok(Graph::from_parts(offsets, neighbors, slot_edges, edges))
    }
}

/// Iterator over the `(neighbor, edge_id)` adjacency of a vertex.
#[derive(Clone)]
pub struct NeighborIter<'a> {
    neighbors: &'a [u32],
    slot_edges: &'a [u32],
    pos: usize,
}

impl Iterator for NeighborIter<'_> {
    type Item = (VertexId, EdgeId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.neighbors.len() {
            let out = (
                VertexId(self.neighbors[self.pos]),
                EdgeId(self.slot_edges[self.pos]),
            );
            self.pos += 1;
            Some(out)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.neighbors.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 0-2, 2-3
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(0), VertexId(2));
        b.add_edge(VertexId(2), VertexId(3));
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree_sum(), 8);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_pendant();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.degree(VertexId(3)), 1);
        let nbrs: Vec<u32> = g.neighbors(VertexId(2)).map(|(v, _)| v.0).collect();
        assert_eq!(nbrs.len(), 3);
        assert!(nbrs.contains(&0) && nbrs.contains(&1) && nbrs.contains(&3));
    }

    #[test]
    fn find_edge_and_has_edge() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        let e = g.find_edge(VertexId(2), VertexId(3)).unwrap();
        let edge = g.edge(e);
        assert_eq!(edge, Edge::new(VertexId(3), VertexId(2)));
        assert_eq!(edge.other(VertexId(2)), VertexId(3));
        assert!(edge.is_incident(VertexId(3)));
        assert!(!edge.is_incident(VertexId(0)));
    }

    #[test]
    fn edge_ids_are_shared_between_directions() {
        let g = triangle_plus_pendant();
        for (eid, edge) in g.edges() {
            let from_u = g
                .neighbors(edge.u)
                .find(|&(w, _)| w == edge.v)
                .map(|(_, e)| e)
                .unwrap();
            let from_v = g
                .neighbors(edge.v)
                .find(|&(w, _)| w == edge.u)
                .map(|(_, e)| e)
                .unwrap();
            assert_eq!(from_u, eid);
            assert_eq!(from_v, eid);
        }
    }

    #[test]
    fn fingerprints_separate_topologies() {
        let g = triangle_plus_pendant();
        assert_eq!(g.fingerprint(), triangle_plus_pendant().fingerprint());
        // One fewer edge: a different graph, a different fingerprint.
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(0), VertexId(2));
        assert_ne!(g.fingerprint(), b.build().fingerprint());
        // Same counts, different wiring: still distinguished.
        let mut c = GraphBuilder::new(4);
        c.add_edge(VertexId(0), VertexId(1));
        c.add_edge(VertexId(1), VertexId(2));
        c.add_edge(VertexId(2), VertexId(3));
        c.add_edge(VertexId(0), VertexId(3));
        assert_ne!(g.fingerprint(), c.build().fingerprint());
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_on_non_endpoint() {
        let e = Edge::new(VertexId(1), VertexId(2));
        e.other(VertexId(5));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn vertices_iterator_is_dense() {
        let g = triangle_plus_pendant();
        let ids: Vec<u32> = g.vertices().map(|v| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
