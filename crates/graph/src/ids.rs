//! Compact identifier newtypes for vertices and edges.
//!
//! Identifiers are `u32`-backed: the experiments in this suite use graphs of
//! at most a few million vertices/edges, and 32-bit ids halve the memory
//! footprint of the adjacency structure compared to `usize`.

use std::fmt;

/// Identifier of a vertex in a [`crate::Graph`].
///
/// Vertices are numbered densely `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

/// Identifier of an **undirected** edge in a [`crate::Graph`].
///
/// Edges are numbered densely `0..m`; both CSR directions of an undirected
/// edge share the same [`EdgeId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn new(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "vertex index overflows u32");
        VertexId(idx as u32)
    }
}

impl EdgeId {
    /// Convert to a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn new(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(idx as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

impl From<VertexId> for usize {
    fn from(v: VertexId) -> Self {
        v.index()
    }
}

impl From<EdgeId> for usize {
    fn from(e: EdgeId) -> Self {
        e.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert_eq!(usize::from(v), 42);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e, EdgeId::from(7u32));
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VertexId(3) < VertexId(5));
        assert!(EdgeId(0) < EdgeId(1));
    }

    #[test]
    fn debug_formatting_is_compact() {
        assert_eq!(format!("{:?}", VertexId(9)), "v9");
        assert_eq!(format!("{:?}", EdgeId(4)), "e4");
        assert_eq!(format!("{}", VertexId(9)), "9");
    }
}
