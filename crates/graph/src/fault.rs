//! First-class fault model: [`Fault`] and [`FaultSet`].
//!
//! The original engine answered single-edge failures only; the successors of
//! the reproduced paper (Parter–Peleg 2013, Parter 2015) target richer fault
//! models — several simultaneous failures, vertex as well as edge faults.
//! This module gives those models a shared vocabulary: a [`Fault`] is one
//! failed element, a [`FaultSet`] is a small canonicalised set of them
//! suitable both as a query argument and as a cache key.
//!
//! `FaultSet` keeps its faults **sorted and deduplicated** (edges before
//! vertices, each ascending by id), so two sets built from the same faults in
//! any order compare, hash and sort identically. Sets up to
//! [`FaultSet::INLINE_CAPACITY`] faults are stored inline (no heap
//! allocation) — the common single- and dual-fault queries never allocate.

use crate::csr::Graph;
use crate::ids::{EdgeId, VertexId};
use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};

/// One failed element of a graph: an edge or a vertex.
///
/// The derived ordering (edges first, then vertices, each ascending by id) is
/// the canonical order [`FaultSet`] maintains.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fault {
    /// Failure of an undirected edge: the edge disappears from the graph.
    Edge(EdgeId),
    /// Failure of a vertex: the vertex and all incident edges disappear.
    Vertex(VertexId),
}

impl Fault {
    /// The failed edge, if this is an edge fault.
    #[inline]
    pub fn as_edge(self) -> Option<EdgeId> {
        match self {
            Fault::Edge(e) => Some(e),
            Fault::Vertex(_) => None,
        }
    }

    /// The failed vertex, if this is a vertex fault.
    #[inline]
    pub fn as_vertex(self) -> Option<VertexId> {
        match self {
            Fault::Vertex(v) => Some(v),
            Fault::Edge(_) => None,
        }
    }
}

impl fmt::Debug for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Edge(e) => write!(f, "{e:?}"),
            Fault::Vertex(v) => write!(f, "{v:?}"),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Edge(e) => write!(f, "e{e}"),
            Fault::Vertex(v) => write!(f, "v{v}"),
        }
    }
}

impl From<EdgeId> for Fault {
    fn from(e: EdgeId) -> Self {
        Fault::Edge(e)
    }
}

impl From<VertexId> for Fault {
    fn from(v: VertexId) -> Self {
        Fault::Vertex(v)
    }
}

/// Unused inline slots hold this filler; it never escapes through the public
/// API (every accessor goes through the live prefix).
const FILLER: Fault = Fault::Edge(EdgeId(u32::MAX));

#[derive(Clone)]
enum Repr {
    /// Up to [`FaultSet::INLINE_CAPACITY`] faults, live prefix `0..len`.
    Inline {
        len: u8,
        slots: [Fault; FaultSet::INLINE_CAPACITY],
    },
    /// Larger sets spill to the heap.
    Spilled(Vec<Fault>),
}

/// A small canonical set of simultaneous faults.
///
/// Always sorted (edges before vertices, ascending ids) and deduplicated, so
/// equality, hashing and ordering are structural regardless of insertion
/// order. Sets of at most [`FaultSet::INLINE_CAPACITY`] faults are stored
/// inline; in particular `FaultSet::from(edge)` is allocation-free, which
/// keeps the engines' single-failure fast path cheap.
///
/// `FaultSet` implements `Borrow<[Fault]>`, so hashed containers keyed by
/// `FaultSet` can be probed with a plain fault slice without building a set.
#[derive(Clone)]
pub struct FaultSet {
    repr: Repr,
}

impl FaultSet {
    /// Number of faults stored without heap allocation. Matches the engines'
    /// default fault cap, so default-configured queries never allocate.
    pub const INLINE_CAPACITY: usize = 2;

    /// The empty fault set (a fault-free query).
    pub fn new() -> Self {
        FaultSet {
            repr: Repr::Inline {
                len: 0,
                slots: [FILLER; Self::INLINE_CAPACITY],
            },
        }
    }

    /// A singleton edge-fault set. Allocation-free.
    pub fn single_edge(e: EdgeId) -> Self {
        Self::from(Fault::Edge(e))
    }

    /// A singleton vertex-fault set. Allocation-free.
    pub fn single_vertex(v: VertexId) -> Self {
        Self::from(Fault::Vertex(v))
    }

    /// The canonical (sorted, deduplicated) faults as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Fault] {
        match &self.repr {
            Repr::Inline { len, slots } => &slots[..*len as usize],
            Repr::Spilled(v) => v,
        }
    }

    /// Number of distinct faults.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` for the empty (fault-free) set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if `fault` is a member.
    #[inline]
    pub fn contains(&self, fault: Fault) -> bool {
        self.as_slice().binary_search(&fault).is_ok()
    }

    /// `true` if the set contains the vertex fault `v`.
    #[inline]
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.contains(Fault::Vertex(v))
    }

    /// `true` if the set contains the edge fault `e`.
    #[inline]
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.contains(Fault::Edge(e))
    }

    /// Iterate over the faults in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Fault> + '_ {
        self.as_slice().iter().copied()
    }

    /// The failed edges, ascending.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.iter().filter_map(Fault::as_edge)
    }

    /// The failed vertices, ascending.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.iter().filter_map(Fault::as_vertex)
    }

    /// `true` if no vertex fault is present (pure edge-failure set).
    pub fn is_edges_only(&self) -> bool {
        self.iter().all(|f| matches!(f, Fault::Edge(_)))
    }

    /// The single failed edge, if the set is exactly one edge fault — the
    /// engines' fast path, where the original single-failure guarantees of
    /// the paper apply.
    #[inline]
    pub fn as_single_edge(&self) -> Option<EdgeId> {
        match self.as_slice() {
            [Fault::Edge(e)] => Some(*e),
            _ => None,
        }
    }

    /// Insert a fault, keeping the canonical order. Returns `true` if the
    /// fault was new.
    pub fn insert(&mut self, fault: Fault) -> bool {
        let slice = self.as_slice();
        let pos = match slice.binary_search(&fault) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                let n = *len as usize;
                if n < Self::INLINE_CAPACITY {
                    slots.copy_within(pos..n, pos + 1);
                    slots[pos] = fault;
                    *len += 1;
                } else {
                    let mut v = slots[..n].to_vec();
                    v.insert(pos, fault);
                    self.repr = Repr::Spilled(v);
                }
            }
            Repr::Spilled(v) => v.insert(pos, fault),
        }
        true
    }

    /// Validate every member against `graph`: edge ids must be `< m`, vertex
    /// ids `< n`. Returns the first out-of-range fault, if any.
    pub fn first_invalid(&self, graph: &Graph) -> Option<Fault> {
        self.iter().find(|f| match *f {
            Fault::Edge(e) => e.index() >= graph.num_edges(),
            Fault::Vertex(v) => v.index() >= graph.num_vertices(),
        })
    }
}

impl Default for FaultSet {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Fault> for FaultSet {
    fn from(fault: Fault) -> Self {
        let mut slots = [FILLER; Self::INLINE_CAPACITY];
        slots[0] = fault;
        FaultSet {
            repr: Repr::Inline { len: 1, slots },
        }
    }
}

impl From<EdgeId> for FaultSet {
    fn from(e: EdgeId) -> Self {
        Self::from(Fault::Edge(e))
    }
}

impl From<VertexId> for FaultSet {
    fn from(v: VertexId) -> Self {
        Self::from(Fault::Vertex(v))
    }
}

impl FromIterator<Fault> for FaultSet {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        let mut set = FaultSet::new();
        for f in iter {
            set.insert(f);
        }
        set
    }
}

impl<'a> IntoIterator for &'a FaultSet {
    type Item = Fault;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Fault>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

impl PartialEq for FaultSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FaultSet {}

impl PartialOrd for FaultSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FaultSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for FaultSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the canonical slice so `Borrow<[Fault]>` probes agree.
        self.as_slice().hash(state);
    }
}

impl Borrow<[Fault]> for FaultSet {
    fn borrow(&self) -> &[Fault] {
        self.as_slice()
    }
}

impl fmt::Debug for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fault) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fault}")?;
        }
        write!(f, "}}")
    }
}

/// Every fault set of size `1..=max_size` over the elements of `graph`, in
/// lexicographic canonical order.
///
/// Intended for exhaustive brute-force cross-checks on **small** graphs: the
/// count grows as `binom(n + m, max_size)`, so keep `max_size ≤ 2` and
/// `n + m` in the hundreds.
pub fn enumerate_fault_sets(graph: &Graph, max_size: usize) -> Vec<FaultSet> {
    let mut elements: Vec<Fault> = graph.edge_ids().map(Fault::Edge).collect();
    elements.extend(graph.vertices().map(Fault::Vertex));
    let mut out = Vec::new();
    let mut stack: Vec<Fault> = Vec::new();
    fn recurse(
        elements: &[Fault],
        from: usize,
        max_size: usize,
        stack: &mut Vec<Fault>,
        out: &mut Vec<FaultSet>,
    ) {
        if !stack.is_empty() {
            out.push(stack.iter().copied().collect());
        }
        if stack.len() == max_size {
            return;
        }
        for i in from..elements.len() {
            stack.push(elements[i]);
            recurse(elements, i + 1, max_size, stack, out);
            stack.pop();
        }
    }
    recurse(&elements, 0, max_size, &mut stack, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn canonical_order_is_insertion_independent() {
        let a: FaultSet = [Fault::Vertex(VertexId(3)), Fault::Edge(EdgeId(7))]
            .into_iter()
            .collect();
        let b: FaultSet = [Fault::Edge(EdgeId(7)), Fault::Vertex(VertexId(3))]
            .into_iter()
            .collect();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_eq!(
            a.as_slice(),
            &[Fault::Edge(EdgeId(7)), Fault::Vertex(VertexId(3))],
            "edges sort before vertices"
        );
    }

    #[test]
    fn duplicates_are_collapsed() {
        let mut s = FaultSet::new();
        assert!(s.insert(Fault::Edge(EdgeId(1))));
        assert!(!s.insert(Fault::Edge(EdgeId(1))));
        assert_eq!(s.len(), 1);
        let t: FaultSet = [
            Fault::Vertex(VertexId(2)),
            Fault::Vertex(VertexId(2)),
            Fault::Edge(EdgeId(0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn inline_sets_spill_to_the_heap_transparently() {
        let mut s = FaultSet::new();
        for i in 0..(FaultSet::INLINE_CAPACITY + 3) {
            s.insert(Fault::Edge(EdgeId(i as u32)));
        }
        assert_eq!(s.len(), FaultSet::INLINE_CAPACITY + 3);
        assert!(matches!(s.repr, Repr::Spilled(_)));
        // canonical order survives the spill
        let ids: Vec<u32> = s.edges().map(|e| e.0).collect();
        assert_eq!(
            ids,
            (0..(FaultSet::INLINE_CAPACITY as u32 + 3)).collect::<Vec<_>>()
        );
        // and a spilled set equals (and hashes like) an inline-built twin
        let twin: FaultSet = (0..(FaultSet::INLINE_CAPACITY + 3))
            .map(|i| Fault::Edge(EdgeId(i as u32)))
            .collect();
        assert_eq!(s, twin);
        assert_eq!(hash_of(&s), hash_of(&twin));
    }

    #[test]
    fn singletons_and_accessors() {
        let e = FaultSet::single_edge(EdgeId(4));
        assert_eq!(e.as_single_edge(), Some(EdgeId(4)));
        assert!(e.is_edges_only());
        assert!(e.contains_edge(EdgeId(4)));
        assert!(!e.contains_vertex(VertexId(4)));

        let v = FaultSet::single_vertex(VertexId(9));
        assert_eq!(v.as_single_edge(), None);
        assert!(!v.is_edges_only());
        assert!(v.contains_vertex(VertexId(9)));
        assert_eq!(v.vertices().collect::<Vec<_>>(), vec![VertexId(9)]);

        let empty = FaultSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.as_single_edge(), None);
        assert!(empty.is_edges_only());
    }

    #[test]
    fn borrow_as_slice_probes_hashed_maps() {
        use std::collections::HashMap;
        let mut map: HashMap<FaultSet, u32> = HashMap::new();
        let key: FaultSet = [Fault::Edge(EdgeId(1)), Fault::Vertex(VertexId(2))]
            .into_iter()
            .collect();
        map.insert(key, 42);
        let probe: &[Fault] = &[Fault::Edge(EdgeId(1)), Fault::Vertex(VertexId(2))];
        assert_eq!(map.get(probe), Some(&42));
    }

    #[test]
    fn ordering_is_lexicographic_on_the_canonical_slice() {
        let a = FaultSet::single_edge(EdgeId(0));
        let b = FaultSet::single_edge(EdgeId(1));
        let c: FaultSet = [Fault::Edge(EdgeId(0)), Fault::Edge(EdgeId(1))]
            .into_iter()
            .collect();
        let mut sets = vec![c.clone(), b.clone(), a.clone()];
        sets.sort();
        assert_eq!(sets, vec![a, c, b]);
    }

    #[test]
    fn validation_finds_out_of_range_faults() {
        let g = generators::cycle(5); // n = 5, m = 5
        let ok: FaultSet = [Fault::Edge(EdgeId(4)), Fault::Vertex(VertexId(4))]
            .into_iter()
            .collect();
        assert_eq!(ok.first_invalid(&g), None);
        let bad_edge = FaultSet::single_edge(EdgeId(5));
        assert_eq!(bad_edge.first_invalid(&g), Some(Fault::Edge(EdgeId(5))));
        let bad_vertex = FaultSet::single_vertex(VertexId(99));
        assert_eq!(
            bad_vertex.first_invalid(&g),
            Some(Fault::Vertex(VertexId(99)))
        );
    }

    #[test]
    fn enumeration_counts_match_binomials() {
        let g = generators::path(4); // n = 4, m = 3 → 7 elements
        let singles = enumerate_fault_sets(&g, 1);
        assert_eq!(singles.len(), 7);
        let up_to_two = enumerate_fault_sets(&g, 2);
        assert_eq!(up_to_two.len(), 7 + 21);
        assert!(up_to_two.iter().all(|s| !s.is_empty() && s.len() <= 2));
        // all distinct
        let mut sorted = up_to_two.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), up_to_two.len());
    }

    #[test]
    fn display_formats_compactly() {
        let s: FaultSet = [Fault::Edge(EdgeId(3)), Fault::Vertex(VertexId(1))]
            .into_iter()
            .collect();
        assert_eq!(s.to_string(), "{e3, v1}");
        assert_eq!(format!("{s:?}"), "{e3, v1}");
        assert_eq!(FaultSet::new().to_string(), "{}");
    }
}
