//! The metric [`Registry`]: named families of counters, gauges, and
//! histograms, each family holding one series per label set. Registration
//! takes a mutex once (typically at startup) and hands back an `Arc`
//! handle; recording through the handle is lock-free. Rendering walks the
//! registry under the same mutex — scrapes are rare, records are not.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Scrape-time gauge callback: evaluated at render, not recorded.
/// Used to mirror externally-aggregated values (engine tier counters
/// merged from per-worker cells) into the same exposition payload.
pub type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;

/// Scrape-time histogram callback: evaluated at render, not recorded.
/// This is how per-thread histogram *cells* join the snapshot — the
/// callback merges the cells' [`HistogramSnapshot`]s
/// ([`HistogramSnapshot::merge`] is associative with
/// [`HistogramSnapshot::empty`] as identity, so merge order is free) and
/// the result renders exactly like a directly-registered histogram.
pub type HistogramFn = Box<dyn Fn() -> HistogramSnapshot + Send + Sync>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    GaugeFn(GaugeFn),
    HistogramFn(HistogramFn),
}

struct Series {
    /// Rendered label block including braces (`{tier="sparse_h_bfs"}`),
    /// or empty for an unlabelled series.
    labels: String,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    type_name: &'static str,
    series: Vec<Series>,
}

/// A named collection of metric families. Cheap to clone (`Arc` inside);
/// all clones see the same metrics.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Family>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a label set as a Prometheus label block; empty set → empty
/// string. Values are escaped per the text exposition format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Splice an extra label (`le="..."`) into an already-rendered block.
fn with_extra_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

fn render_histogram_text(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (upper, count) in snap.nonzero_buckets() {
        cumulative += count;
        let le = upper as f64 / 1e9;
        let block = with_extra_label(labels, &format!("le=\"{le}\""));
        let _ = writeln!(out, "{name}_bucket{block} {cumulative}");
    }
    let inf = with_extra_label(labels, "le=\"+Inf\"");
    let _ = writeln!(out, "{name}_bucket{inf} {}", snap.count());
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum() as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{labels} {}", snap.count());
}

fn render_histogram_json(s: &HistogramSnapshot) -> String {
    let secs = |ns: u64| ns as f64 / 1e9;
    format!(
        "{{\"count\":{},\"sum_seconds\":{},\"mean_seconds\":{},\
         \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max_seconds\":{}}}",
        s.count(),
        secs(s.sum()),
        s.mean() / 1e9,
        secs(s.value_at_quantile(0.50)),
        secs(s.value_at_quantile(0.90)),
        secs(s.value_at_quantile(0.99)),
        secs(s.value_at_quantile(0.999)),
        secs(s.max()),
    )
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        type_name: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Option<Metric> {
        let mut families = self.inner.lock().expect("registry poisoned");
        let rendered = render_labels(labels);
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.type_name, type_name,
                    "metric {name} re-registered with a different type"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    type_name,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == rendered) {
            // Get-or-register: hand back the existing handle.
            return Some(match &existing.metric {
                Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
                Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
                Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
                Metric::GaugeFn(_) | Metric::HistogramFn(_) => {
                    panic!("metric {name}{rendered} re-registered as callback")
                }
            });
        }
        family.series.push(Series {
            labels: rendered,
            metric: make(),
        });
        None
    }

    /// Get or register a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let fresh = Arc::new(Counter::new());
        let handle = Arc::clone(&fresh);
        match self.register(name, help, "counter", labels, move || {
            Metric::Counter(handle)
        }) {
            Some(Metric::Counter(c)) => c,
            Some(_) => panic!("metric {name} is not a counter"),
            None => fresh,
        }
    }

    /// Get or register a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let fresh = Arc::new(Gauge::new());
        let handle = Arc::clone(&fresh);
        match self.register(name, help, "gauge", labels, move || Metric::Gauge(handle)) {
            Some(Metric::Gauge(g)) => g,
            Some(_) => panic!("metric {name} is not a gauge"),
            None => fresh,
        }
    }

    /// Get or register a histogram series (nanosecond samples, rendered in
    /// seconds).
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let fresh = Arc::new(Histogram::new());
        let handle = Arc::clone(&fresh);
        match self.register(name, help, "histogram", labels, move || {
            Metric::Histogram(handle)
        }) {
            Some(Metric::Histogram(h)) => h,
            Some(_) => panic!("metric {name} is not a histogram"),
            None => fresh,
        }
    }

    /// Register an externally-computed gauge, evaluated at scrape time.
    /// Registering the same `(name, labels)` twice replaces the callback.
    pub fn gauge_fn(&self, name: &str, help: &str, labels: &[(&str, &str)], f: GaugeFn) {
        let mut families = self.inner.lock().expect("registry poisoned");
        let rendered = render_labels(labels);
        let family = match families.iter_mut().find(|fam| fam.name == name) {
            Some(fam) => fam,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    type_name: "gauge",
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter_mut().find(|s| s.labels == rendered) {
            existing.metric = Metric::GaugeFn(f);
        } else {
            family.series.push(Series {
                labels: rendered,
                metric: Metric::GaugeFn(f),
            });
        }
    }

    /// Register an externally-merged histogram, evaluated at scrape time:
    /// the callback returns the merged snapshot of per-thread cells.
    /// Registering the same `(name, labels)` twice replaces the callback.
    pub fn histogram_fn(&self, name: &str, help: &str, labels: &[(&str, &str)], f: HistogramFn) {
        let mut families = self.inner.lock().expect("registry poisoned");
        let rendered = render_labels(labels);
        let family = match families.iter_mut().find(|fam| fam.name == name) {
            Some(fam) => fam,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    type_name: "histogram",
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter_mut().find(|s| s.labels == rendered) {
            existing.metric = Metric::HistogramFn(f);
        } else {
            family.series.push(Series {
                labels: rendered,
                metric: Metric::HistogramFn(f),
            });
        }
    }

    /// Render everything in the Prometheus text exposition format.
    /// Histogram samples are nanoseconds internally; bucket bounds, sums,
    /// and quantile-free aggregates are emitted in **seconds** per the
    /// Prometheus base-unit convention. Only non-empty buckets are
    /// emitted (plus the mandatory `+Inf`), keeping payloads proportional
    /// to observed spread rather than the 1000+-cell layout.
    pub fn render_prometheus(&self) -> String {
        let families = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.type_name);
            for series in &family.series {
                let name = &family.name;
                let labels = &series.labels;
                match &series.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Metric::GaugeFn(f) => {
                        let _ = writeln!(out, "{name}{labels} {}", f());
                    }
                    Metric::Histogram(h) => {
                        render_histogram_text(&mut out, name, labels, &h.snapshot());
                    }
                    Metric::HistogramFn(f) => {
                        render_histogram_text(&mut out, name, labels, &f());
                    }
                }
            }
        }
        out
    }

    /// Render everything as a single JSON object keyed by
    /// `name{labels}`. Counters and gauges map to numbers; histograms map
    /// to `{count, sum_seconds, mean_seconds, p50..p999, max_seconds}` —
    /// the shape `ftb-loadgen --metrics-out` writes for trajectory
    /// tooling.
    pub fn render_json(&self) -> String {
        let families = self.inner.lock().expect("registry poisoned");
        // BTreeMap for deterministic key order in the output.
        let mut entries: BTreeMap<String, String> = BTreeMap::new();
        for family in families.iter() {
            for series in &family.series {
                let key = format!("{}{}", family.name, series.labels);
                let value = match &series.metric {
                    Metric::Counter(c) => format!("{}", c.get()),
                    Metric::Gauge(g) => format!("{}", g.get()),
                    Metric::GaugeFn(f) => {
                        let v = f();
                        if v.is_finite() {
                            format!("{v}")
                        } else {
                            "null".to_string()
                        }
                    }
                    Metric::Histogram(h) => render_histogram_json(&h.snapshot()),
                    Metric::HistogramFn(f) => render_histogram_json(&f()),
                };
                entries.insert(key, value);
            }
        }
        let mut out = String::from("{");
        for (i, (key, value)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let escaped = key.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, "\n  \"{escaped}\": {value}");
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("ftb_test_total", "test", &[("op", "dist")]);
        let b = r.counter("ftb_test_total", "test", &[("op", "dist")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let other = r.counter("ftb_test_total", "test", &[("op", "path")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("ftb_requests_total", "requests", &[("op", "dist")])
            .add(3);
        r.gauge("ftb_active", "active", &[]).set(2);
        let h = r.histogram("ftb_latency_seconds", "latency", &[("tier", "sparse")]);
        h.record(1_000_000); // 1ms
        h.record(2_000_000);
        r.gauge_fn("ftb_mirror", "mirror", &[], Box::new(|| 7.5));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE ftb_requests_total counter"));
        assert!(text.contains("ftb_requests_total{op=\"dist\"} 3"));
        assert!(text.contains("ftb_active 2"));
        assert!(text.contains("# TYPE ftb_latency_seconds histogram"));
        assert!(text.contains("ftb_latency_seconds_bucket{tier=\"sparse\",le=\"+Inf\"} 2"));
        assert!(text.contains("ftb_latency_seconds_count{tier=\"sparse\"} 2"));
        assert!(text.contains("ftb_mirror 7.5"));
        // Cumulative bucket counts end at the total.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("ftb_latency_seconds_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 2"));
    }

    #[test]
    fn histogram_fn_renders_merged_cells() {
        use crate::metrics::HistogramSnapshot;
        let r = Registry::new();
        let cell_a = Arc::new(Histogram::new());
        let cell_b = Arc::new(Histogram::new());
        cell_a.record(1_000);
        cell_b.record(2_000);
        cell_b.record(3_000);
        let (a, b) = (Arc::clone(&cell_a), Arc::clone(&cell_b));
        r.histogram_fn(
            "ftb_cells_seconds",
            "merged per-thread cells",
            &[],
            Box::new(move || {
                let mut merged = HistogramSnapshot::empty();
                merged.merge(&a.snapshot());
                merged.merge(&b.snapshot());
                merged
            }),
        );
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE ftb_cells_seconds histogram"));
        assert!(text.contains("ftb_cells_seconds_count 3"));
        // Cells keep recording after registration; scrapes see the updates.
        cell_a.record(10_000);
        assert!(r.render_prometheus().contains("ftb_cells_seconds_count 4"));
        assert!(r.render_json().contains("\"ftb_cells_seconds\""));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("a_total", "a", &[]).add(1);
        let h = r.histogram("b_seconds", "b", &[("stage", "handle")]);
        h.record(5_000);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"a_total\": 1"));
        assert!(json.contains("\"b_seconds{stage=\\\"handle\\\"}\""));
        assert!(json.contains("\"count\":1"));
    }
}
