//! A bounded top-K slow-query log: keeps the `capacity` entries with the
//! largest keys (handle nanoseconds by convention) seen so far. The
//! common case — a fast request on a warm server — is rejected by a
//! single relaxed atomic load against the current admission threshold,
//! so the mutex is only taken by requests that would actually make the
//! board.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

struct Ranked<T> {
    key: u64,
    /// Admission order, used to break key ties deterministically
    /// (later entries lose).
    seq: u64,
    entry: T,
}

/// Top-K ranked buffer. `T` is the caller's trace record (fault set,
/// stage breakdown, …); this type only orders by the `u64` key.
pub struct SlowLog<T> {
    capacity: usize,
    /// Keys strictly below this cannot enter; updated to the current
    /// minimum whenever the buffer is full. Starts at 0 so everything is
    /// admitted until the board fills.
    floor: AtomicU64,
    seq: AtomicU64,
    inner: Mutex<Vec<Ranked<T>>>,
}

impl<T: Clone> SlowLog<T> {
    /// A log keeping the top `capacity` entries (0 disables admission).
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            capacity,
            floor: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            inner: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer an entry; it is kept only if its key ranks in the current
    /// top K. Returns whether it was admitted.
    pub fn offer(&self, key: u64, entry: T) -> bool {
        if self.capacity == 0 {
            return false;
        }
        // Fast path: a full board with a higher floor rejects without
        // locking. The floor only rises, so a stale read can at worst
        // admit a borderline entry, never wrongly reject one that the
        // locked re-check below would keep.
        if key < self.floor.load(Relaxed) {
            return false;
        }
        let seq = self.seq.fetch_add(1, Relaxed);
        let mut board = self.inner.lock().expect("slow log poisoned");
        if board.len() < self.capacity {
            board.push(Ranked { key, seq, entry });
        } else {
            // Evict the current minimum if we beat it (ties lose).
            let (min_idx, min_key) = board
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.key, std::cmp::Reverse(r.seq)))
                .map(|(i, r)| (i, r.key))
                .expect("full board is non-empty");
            if key <= min_key {
                return false;
            }
            board[min_idx] = Ranked { key, seq, entry };
        }
        if board.len() == self.capacity {
            let floor = board.iter().map(|r| r.key).min().expect("non-empty");
            self.floor.store(floor, Relaxed);
        }
        true
    }

    /// The current board, sorted by key descending (slowest first), with
    /// each entry's key.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        let board = self.inner.lock().expect("slow log poisoned");
        let mut out: Vec<(u64, u64, T)> = board
            .iter()
            .map(|r| (r.key, r.seq, r.entry.clone()))
            .collect();
        drop(board);
        out.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        out.into_iter().map(|(k, _, e)| (k, e)).collect()
    }

    /// Drop all entries and reset the admission floor.
    pub fn clear(&self) {
        let mut board = self.inner.lock().expect("slow log poisoned");
        board.clear();
        self.floor.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_k_sorted_descending() {
        let log = SlowLog::new(3);
        for key in [5u64, 1, 9, 3, 7, 2, 8] {
            log.offer(key, format!("q{key}"));
        }
        let snap = log.snapshot();
        let keys: Vec<u64> = snap.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![9, 8, 7]);
        assert_eq!(snap[0].1, "q9");
    }

    #[test]
    fn floor_rejects_below_minimum() {
        let log = SlowLog::new(2);
        assert!(log.offer(10, ()));
        assert!(log.offer(20, ()));
        assert!(!log.offer(5, ()));
        assert!(!log.offer(10, ())); // ties lose
        assert!(log.offer(15, ()));
        let keys: Vec<u64> = log.snapshot().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![20, 15]);
    }

    #[test]
    fn zero_capacity_never_admits() {
        let log = SlowLog::new(0);
        assert!(!log.offer(u64::MAX, ()));
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn clear_resets_admission() {
        let log = SlowLog::new(1);
        log.offer(100, ());
        assert!(!log.offer(50, ()));
        log.clear();
        assert!(log.offer(50, ()));
    }
}
