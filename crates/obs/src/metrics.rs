//! The three metric primitives: [`Counter`], [`Gauge`], and the atomic
//! log-bucketed [`Histogram`]. All record paths are single relaxed atomic
//! operations — no locks, no allocation — so they can sit on query hot
//! paths. Reads (`snapshot`) are racy-consistent: each cell is read
//! atomically but the set of cells is not a point-in-time cut, which is
//! the standard contract for scrape-based metrics.

use crate::buckets;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (queue depth, active
/// connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// A lock-free log-bucketed histogram over `u64` values (nanoseconds by
/// convention), sharing its bucket layout with `ftb_bench` via
/// [`crate::buckets`]. `record` is two relaxed `fetch_add`s plus a
/// `fetch_max`; there is no mutex anywhere on the write path.
///
/// The exact sum is kept in nanoseconds in a `u64`: it saturates only
/// after ~584 years of accumulated latency, far past any process
/// lifetime this serves.
#[derive(Debug)]
pub struct Histogram {
    cells: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub fn new() -> Self {
        let cells: Vec<AtomicU64> = (0..buckets::NUM_CELLS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            cells: cells.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` samples of the same `value` in one shot — the batched
    /// entry points (`dist_many`) amortise instrumentation this way so a
    /// 4096-target frame costs the same four atomics as a single query.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.cells[buckets::index(value)].fetch_add(n, Relaxed);
        self.total.fetch_add(n, Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Relaxed)
    }

    /// Racy-consistent copy of the current cell counts and aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.cells.iter().map(|c| c.load(Relaxed)).collect(),
            total: self.total.load(Relaxed),
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain (non-atomic) copy of a [`Histogram`]'s state: quantile lookups,
/// merging, and rendering all happen here, off the hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot — the identity element of [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; buckets::NUM_CELLS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values (nanoseconds by convention).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The value at quantile `q` (in `[0, 1]`): the upper bound of the
    /// first cell whose cumulative count reaches `q·total`, capped at the
    /// exact max. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return buckets::upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one. Associative and commutative,
    /// with [`empty`](Self::empty) as identity — per-thread cells merge in
    /// any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty cells as `(inclusive_upper_bound, count)` pairs in
    /// ascending bucket order — the input for Prometheus bucket lines.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (buckets::upper_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.inc();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn record_n_equals_n_records() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..7 {
            a.record(1234);
        }
        b.record_n(1234, 7);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn quantiles_never_understate() {
        let h = Histogram::new();
        for v in [10u64, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.max(), 100_000);
        assert!(s.value_at_quantile(1.0) == 100_000);
        assert!(s.value_at_quantile(0.2) >= 10);
        assert!((s.mean() - 22222.0).abs() < 1.0);
    }

    #[test]
    fn merge_identity_and_associativity() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[1, 50, 999]);
        let b = mk(&[32, 64]);
        let c = mk(&[7, 7, 7, 1 << 30]);

        // identity
        let mut ai = a.clone();
        ai.merge(&HistogramSnapshot::empty());
        assert_eq!(ai, a);

        // associativity: (a+b)+c == a+(b+c)
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab, a_bc);
    }
}
