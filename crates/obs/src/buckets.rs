//! The shared log-bucket layout: powers of two split into [`SUB_BUCKETS`]
//! linear sub-buckets, HdrHistogram-style, giving `1/32 ≈ 3%` relative
//! value error with constant memory over the full `u64` range.
//!
//! Both the atomic [`Histogram`](crate::Histogram) (production metrics)
//! and `ftb_bench::LatencyHistogram` (load-generator reporting) index
//! through these functions, so their bucket boundaries are identical and
//! their snapshots can be compared cell-for-cell.

/// Number of linear sub-buckets per power-of-two bucket.
pub const SUB_BUCKETS: usize = 32;
/// `log2(SUB_BUCKETS)`.
pub const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total number of cells covering the full `u64` range.
pub const NUM_CELLS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Index of the (bucket, sub-bucket) cell holding `value`.
#[inline]
pub fn index(value: u64) -> usize {
    // Values below SUB_BUCKETS land in the linear range one-to-one.
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let bucket = 63 - value.leading_zeros(); // highest set bit, >= SUB_BITS
    let shift = bucket - SUB_BITS;
    let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
    ((bucket - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
}

/// Upper bound (inclusive) of the values mapping to cell `index`.
#[inline]
pub fn upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let bucket = (index / SUB_BUCKETS - 1) as u32 + SUB_BITS;
    let sub = (index % SUB_BUCKETS) as u64;
    let shift = bucket - SUB_BITS;
    ((1u64 << SUB_BITS) + sub)
        .checked_shl(shift)
        .map(|v| v + ((1u64 << shift) - 1))
        .unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_is_contained_by_its_cell() {
        let probes = [
            0u64,
            1,
            31,
            32,
            33,
            100,
            1023,
            1024,
            4096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ];
        for &v in &probes {
            let i = index(v);
            assert!(i < NUM_CELLS, "cell out of range for {v}");
            assert!(upper_bound(i) >= v, "upper bound below its value at {v}");
            if i > 0 {
                assert!(upper_bound(i - 1) < v, "value {v} below its cell's floor");
            }
        }
    }

    #[test]
    fn upper_bounds_are_strictly_monotone() {
        let mut prev = None;
        for i in 0..NUM_CELLS {
            let ub = upper_bound(i);
            if let Some(p) = prev {
                assert!(ub > p, "non-monotone at cell {i}");
            }
            prev = Some(ub);
        }
        assert_eq!(upper_bound(NUM_CELLS - 1), u64::MAX);
    }
}
