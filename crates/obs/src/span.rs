//! Stage spans: measure a lexical scope on the monotonic clock and record
//! the elapsed nanoseconds into a [`Histogram`] on drop. The process-wide
//! sampling switch makes the off state near-free — `Span::enter` is one
//! relaxed atomic load and no `Instant::now()` call when sampling is
//! disabled, so instrumented hot paths cost nothing measurable unless
//! someone is looking.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

static SAMPLING: AtomicBool = AtomicBool::new(false);

/// Turn stage-timing sampling on or off process-wide. Metrics that are
/// plain counters/gauges keep recording regardless; only clock-reading
/// spans honour this switch.
pub fn set_sampling(on: bool) {
    SAMPLING.store(on, Relaxed);
}

/// Whether stage-timing spans currently read the clock.
pub fn sampling_enabled() -> bool {
    SAMPLING.load(Relaxed)
}

/// An RAII stage timer: created by [`Span::enter`], records into its
/// histogram when dropped. When sampling is off the span is inert.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing"]
pub struct Span {
    armed: Option<(Instant, Arc<Histogram>)>,
}

impl Span {
    /// Start timing a stage. One atomic load when sampling is off.
    #[inline]
    pub fn enter(histogram: &Arc<Histogram>) -> Span {
        if !sampling_enabled() {
            return Span { armed: None };
        }
        Span {
            armed: Some((Instant::now(), Arc::clone(histogram))),
        }
    }

    /// Stop timing early and return the elapsed nanoseconds (also
    /// recorded). Returns `None` when sampling was off at entry.
    pub fn finish(mut self) -> Option<u64> {
        let (start, histogram) = self.armed.take()?;
        let ns = start.elapsed().as_nanos() as u64;
        histogram.record(ns);
        Some(ns)
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((start, histogram)) = self.armed.take() {
            histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_only_when_sampling() {
        let h = Arc::new(Histogram::new());
        set_sampling(false);
        drop(Span::enter(&h));
        assert_eq!(h.count(), 0);
        set_sampling(true);
        drop(Span::enter(&h));
        assert_eq!(h.count(), 1);
        let ns = Span::enter(&h).finish();
        assert!(ns.is_some());
        assert_eq!(h.count(), 2);
        set_sampling(false);
        assert_eq!(Span::enter(&h).finish(), None);
        assert_eq!(h.count(), 2);
    }
}
