//! `ftb_obs` — lock-free, zero-dependency observability primitives for
//! the FT-BFS serving stack.
//!
//! Four pieces, each usable alone:
//!
//! - [`buckets`]: the HdrHistogram-style log-bucket layout (32 linear
//!   sub-buckets per power of two, ≈3% relative error) shared with
//!   `ftb_bench::LatencyHistogram`, so client-side and server-side
//!   histograms are comparable cell-for-cell.
//! - Metric primitives — [`Counter`], [`Gauge`], [`Histogram`] — whose
//!   record paths are a handful of relaxed atomics: safe on query hot
//!   paths, merged racy-consistently at scrape time.
//! - The [`Registry`]: named, labelled metric families rendered in the
//!   Prometheus text exposition format or as JSON. Registration locks a
//!   mutex once; recording through the returned `Arc` handles never does.
//! - [`Span`] + the process-wide sampling switch
//!   ([`set_sampling`]/[`sampling_enabled`]): RAII stage timers that are
//!   one atomic load — no clock read — when sampling is off.
//!
//! Plus the [`SlowLog`], a bounded top-K board for slow-query traces
//! with a lock-free admission fast path.
//!
//! Everything is plain `std`: no external crates, no unsafe.

#![forbid(unsafe_code)]

pub mod buckets;
mod metrics;
mod registry;
mod slowlog;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{GaugeFn, HistogramFn, Registry};
pub use slowlog::SlowLog;
pub use span::{sampling_enabled, set_sampling, Span};
