//! Explicit lower-bound constructions for `(b, r)` FT-BFS structures.
//!
//! The paper's Section 5 exhibits graph families on which **every** ε FT-BFS
//! structure with a bounded reinforcement budget must contain many backup
//! edges:
//!
//! * [`single_source`] — the Theorem 5.1 family: with at most `⌊n^{1-ε}/6⌋`
//!   reinforced edges, `Ω(min{n^{1+ε}, n^{3/2}})` backup edges are forced,
//! * [`multi_source`] — the Theorem 5.4 family for `σ` sources: with
//!   `⌊σ·n^{1-ε}/6⌋` reinforced edges, `Ω(σ^{1-ε}·n^{1+ε})` backup edges are
//!   forced,
//! * [`certify`] — routines that count the forced edges (Claims 5.3 / 5.6)
//!   and empirically confirm the forcing argument on concrete instances.
//!
//! The `ε = 1/2` instantiation of the single-source family recovers the
//! `Ω(n^{3/2})` ESA'13 lower bound used as the `ε = 1` baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod multi_source;
pub mod single_source;

pub use certify::{certified_backup_lower_bound, verify_forcing, ForcingCheck};
pub use multi_source::{multi_source_lower_bound, MultiSourceLowerBound};
pub use single_source::{esa13_lower_bound, single_source_lower_bound, SingleSourceLowerBound};
