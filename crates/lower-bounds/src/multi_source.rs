//! The Theorem 5.4 multi-source lower-bound family.
//!
//! For `σ` sources the construction uses `σ · k` blocks (`k = ⌊(n/σ)^{1-2ε}⌋`
//! blocks per source) of the same path/connector/landing shape as the
//! single-source family, with the crucial twist that the expensive vertex
//! blocks `X_j` are **shared** between the sources: `X_j` hangs off a hub
//! `ṽ_j` adjacent to the path terminals `v*_{i,j}` of every source `i`, and
//! is fully connected to the union `Z_j = ⋃_i Z_{i,j}` of the landing sets.
//! Failing the `ℓ`-th path edge of block `(i, j)` forces, from the viewpoint
//! of source `s_i`, all bipartite edges `{(x, z^{i,j}_ℓ) : x ∈ X_j}`
//! (Claim 5.6).

use ftb_graph::{EdgeId, Graph, GraphBuilder, VertexId};

/// A generated Theorem 5.4 instance.
#[derive(Clone, Debug)]
pub struct MultiSourceLowerBound {
    /// The graph.
    pub graph: Graph,
    /// The σ sources `s_1, …, s_σ`.
    pub sources: Vec<VertexId>,
    /// The ε the instance targets.
    pub eps: f64,
    /// Blocks per source (`k`).
    pub copies_per_source: usize,
    /// Path length per block (`d`).
    pub path_len: usize,
    /// `|X_j|` (shared vertex-block size).
    pub x_size: usize,
    /// `pi_edges[i][j]` — the costly path edges of block `(i, j)`.
    pub pi_edges: Vec<Vec<Vec<EdgeId>>>,
}

impl MultiSourceLowerBound {
    /// Number of sources σ.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Total number of costly path edges `|Π| = σ · k · d`.
    pub fn num_pi_edges(&self) -> usize {
        self.pi_edges
            .iter()
            .flat_map(|per_source| per_source.iter())
            .map(|block| block.len())
            .sum()
    }

    /// The paper's reinforcement budget `⌊σ · n^{1-ε} / 6⌋`.
    pub fn reinforcement_budget(&self) -> usize {
        let n = self.graph.num_vertices() as f64;
        (self.num_sources() as f64 * n.powf(1.0 - self.eps) / 6.0).floor() as usize
    }

    /// The Claim 5.6 certified backup lower bound for a reinforcement budget:
    /// every unreinforced π edge forces `|X_j|` bipartite edges.
    pub fn certified_backup_lower_bound(&self, r_budget: usize) -> usize {
        self.num_pi_edges().saturating_sub(r_budget) * self.x_size
    }
}

/// Build the Theorem 5.4 instance targeting ≈ `n` vertices, `σ` sources and
/// `ε ∈ (0, 1/2]`.
pub fn multi_source_lower_bound(n: usize, sigma: usize, eps: f64) -> MultiSourceLowerBound {
    assert!(
        eps > 0.0 && eps <= 0.5,
        "theorem 5.4 covers eps in (0, 1/2]"
    );
    assert!(sigma >= 1, "need at least one source");
    assert!(
        n >= 64 * sigma,
        "n too small for the requested number of sources"
    );
    let per_source_n = n as f64 / sigma as f64;
    let d = ((per_source_n / 4.0).powf(eps).floor() as usize).max(1);
    let k = (per_source_n.powf(1.0 - 2.0 * eps).floor() as usize).max(1);
    let block_fixed = d * d + 6 * d + 1;
    let fixed = sigma + sigma * k * block_fixed + k; // sources + blocks + hubs
    let x_size = (n.saturating_sub(fixed) / k).max(1);

    // Start from an empty vertex set: every vertex is allocated explicitly.
    let mut b = GraphBuilder::with_capacity(0, sigma * k * (d * d + d * x_size) + k * x_size);
    let sources: Vec<VertexId> = b.add_vertices(sigma);
    // Shared per-j hubs and X blocks.
    let hubs: Vec<VertexId> = b.add_vertices(k);
    let x_blocks: Vec<Vec<VertexId>> = (0..k).map(|_| b.add_vertices(x_size)).collect();
    for j in 0..k {
        for &x in &x_blocks[j] {
            b.add_edge(hubs[j], x);
        }
    }

    let mut pi_names: Vec<Vec<Vec<(VertexId, VertexId)>>> = vec![Vec::new(); sigma];
    for i in 0..sigma {
        for j in 0..k {
            // path of block (i, j)
            let path: Vec<VertexId> = b.add_vertices(d + 1);
            b.add_edge(sources[i], path[0]);
            b.add_path(&path);
            let v_star = *path.last().unwrap();
            b.add_edge(v_star, hubs[j]);
            // landing vertices and connectors
            let z: Vec<VertexId> = b.add_vertices(d);
            for ell in 1..=d {
                let t = 6 + 2 * (d - ell);
                let interior = b.add_vertices(t - 1);
                let mut chain = Vec::with_capacity(t + 1);
                chain.push(path[ell - 1]);
                chain.extend(interior);
                chain.push(z[ell - 1]);
                b.add_path(&chain);
            }
            // bipartite X_j × Z_{i,j}
            for &zv in &z {
                for &x in &x_blocks[j] {
                    b.add_edge(x, zv);
                }
            }
            pi_names[i].push(path.windows(2).map(|w| (w[0], w[1])).collect());
        }
    }

    let graph = b.build();
    let resolve = |(a, c): (VertexId, VertexId)| graph.find_edge(a, c).expect("edge exists");
    let pi_edges: Vec<Vec<Vec<EdgeId>>> = pi_names
        .iter()
        .map(|per_source| {
            per_source
                .iter()
                .map(|block| block.iter().map(|&p| resolve(p)).collect())
                .collect()
        })
        .collect();

    MultiSourceLowerBound {
        graph,
        sources,
        eps,
        copies_per_source: k,
        path_len: d,
        x_size,
        pi_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftb_graph::stats::is_connected;
    use ftb_graph::SubgraphView;
    use ftb_sp::{bfs_distances, bfs_distances_view};

    #[test]
    fn construction_is_connected_and_roughly_sized() {
        for (n, sigma, eps) in [(800usize, 2usize, 0.25), (1000, 4, 0.3), (600, 1, 0.3)] {
            let lb = multi_source_lower_bound(n, sigma, eps);
            assert!(is_connected(&lb.graph), "n={n}, sigma={sigma}");
            assert_eq!(lb.num_sources(), sigma);
            assert_eq!(
                lb.num_pi_edges(),
                sigma * lb.copies_per_source * lb.path_len
            );
            let got = lb.graph.num_vertices();
            assert!(got >= n / 2, "n={n}: got only {got} vertices");
        }
    }

    #[test]
    fn every_source_reaches_every_vertex() {
        let lb = multi_source_lower_bound(600, 3, 0.25);
        for &s in &lb.sources {
            let dist = bfs_distances(&lb.graph, s);
            assert!(dist.iter().all(|&d| d != ftb_sp::UNREACHABLE));
        }
    }

    #[test]
    fn failing_a_pi_edge_forces_the_connector_route_per_source() {
        let lb = multi_source_lower_bound(700, 2, 0.3);
        let d = lb.path_len;
        let i = 1usize; // second source
        let j = 0usize; // first block
        for ell in 0..lb.pi_edges[i][j].len().min(2) {
            let e = lb.pi_edges[i][j][ell];
            let view = SubgraphView::full(&lb.graph).without_edge(e);
            let dist = bfs_distances_view(&view, lb.sources[i]);
            let expected = (2 * d - (ell + 1) + 7) as u32;
            // the forced route length is attained for X_j vertices
            // (identified by their fault-free distance d + 3 from s_i)
            let fault_free = bfs_distances(&lb.graph, lb.sources[i]);
            let mut found_x = 0usize;
            for v in lb.graph.vertices() {
                if fault_free[v.index()] == (d + 3) as u32 && lb.graph.degree(v) > 2 * d {
                    // X vertices are adjacent to every landing set, so their
                    // degree is large
                    assert_eq!(dist[v.index()], expected, "vertex {v:?}");
                    found_x += 1;
                    if found_x >= 3 {
                        break;
                    }
                }
            }
            assert!(found_x > 0, "no X vertex identified");
        }
    }

    #[test]
    fn certified_bound_and_budget() {
        let lb = multi_source_lower_bound(900, 3, 0.3);
        let full = lb.certified_backup_lower_bound(0);
        assert_eq!(full, lb.num_pi_edges() * lb.x_size);
        assert!(lb.certified_backup_lower_bound(lb.num_pi_edges()) == 0);
        assert!(lb.reinforcement_budget() > 0);
    }

    #[test]
    #[should_panic]
    fn too_many_sources_for_n_is_rejected() {
        multi_source_lower_bound(100, 10, 0.3);
    }
}
